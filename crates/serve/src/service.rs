//! The solve service proper: jobs, workers, deadlines, artifacts.
//!
//! One worker thread per pool lane pops tickets off the
//! [`AdmissionQueue`], re-checks cancellation/deadline **before**
//! leasing a slot (a past-deadline job never touches a device lane),
//! then drives [`tsp::Solver::run_on`] on the leased `(device, stream)`
//! pair. Terminal states credit the tenant's quota back and, when an
//! artifacts directory is configured, leave a `tsp-inspect`-readable
//! manifest (`manifest.json` + `journal.jsonl` + `run.folded` +
//! `memory.json`) keyed by the run's deterministic `run_id`.

use crate::admission::{AdmissionQueue, Ticket};
use crate::api::{
    ApiError, ErrorCode, FromRequest, JobState, JobStatus, SolveRequest, SolveResponse,
};
use crate::pool::SlotPool;
use gpu_sim::{DeviceSpec, SimError, StreamReport};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tsp::{Solution, SolverBuilder, TelemetryOptions};
use tsp_core::CancelToken;
use tsp_prof::{Manifest, Profiler};
use tsp_telemetry::{Histogram, Journal, JournalWriter, Telemetry, SECONDS_BUCKETS};

/// Boot-time service configuration.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Device spec for every pooled device.
    pub spec: DeviceSpec,
    /// Simulated devices in the pool.
    pub devices: usize,
    /// Streams per device; `devices × streams` lanes = concurrent solves.
    pub streams: usize,
    /// Arena bytes budgeted per lane.
    pub slot_bytes: u64,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Live (queued + running) jobs allowed per tenant.
    pub per_tenant_quota: usize,
    /// Largest instance accepted.
    pub max_cities: usize,
    /// Per-job artifact directory (`<dir>/<job_id>/manifest.json`…);
    /// `None` keeps everything in memory.
    pub artifacts_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            spec: gpu_sim::spec::gtx_680_cuda(),
            devices: 2,
            streams: 2,
            slot_bytes: 32 << 20,
            queue_capacity: 256,
            per_tenant_quota: 16,
            max_cities: 4096,
            artifacts_dir: None,
        }
    }
}

impl ServiceConfig {
    /// Set the device spec used for every pooled device.
    pub fn with_spec(mut self, spec: DeviceSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Set the simulated device count.
    pub fn with_devices(mut self, devices: usize) -> Self {
        self.devices = devices;
        self
    }

    /// Set the streams per device.
    pub fn with_streams(mut self, streams: usize) -> Self {
        self.streams = streams;
        self
    }

    /// Set the arena bytes budgeted per lane.
    pub fn with_slot_bytes(mut self, bytes: u64) -> Self {
        self.slot_bytes = bytes;
        self
    }

    /// Set the admission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Set the per-tenant live-job quota.
    pub fn with_per_tenant_quota(mut self, quota: usize) -> Self {
        self.per_tenant_quota = quota;
        self
    }

    /// Set the largest accepted instance size.
    pub fn with_max_cities(mut self, max_cities: usize) -> Self {
        self.max_cities = max_cities;
        self
    }

    /// Write per-job artifacts (manifest, journal, flamegraph, ledger)
    /// under `dir/<job_id>/`.
    pub fn with_artifacts_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.artifacts_dir = Some(dir.into());
        self
    }
}

struct JobEntry {
    status: JobStatus,
    request: SolveRequest,
    /// Base token; `DELETE` arms the shared flag, workers derive the
    /// deadline-carrying copy from it.
    cancel: CancelToken,
    deadline: Option<Instant>,
}

struct Inner {
    queue: AdmissionQueue,
    slots: SlotPool,
    jobs: Mutex<HashMap<String, JobEntry>>,
    telemetry: Telemetry,
    prof: Profiler,
    latency: Option<Histogram>,
    artifacts_dir: Option<PathBuf>,
    max_cities: usize,
}

/// A running multi-tenant solve service. Submit with
/// [`SolveService::submit`], poll with [`SolveService::status`],
/// cancel with [`SolveService::cancel`]; mount it over HTTP with
/// [`crate::server::ServeServer`].
pub struct SolveService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    seq: AtomicU64,
    reports: Mutex<Vec<StreamReport>>,
}

impl std::fmt::Debug for SolveService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveService")
            .field("lanes", &self.inner.slots.lanes())
            .field("queue_depth", &self.inner.queue.depth())
            .finish()
    }
}

impl SolveService {
    /// Boot the service: warm the slot pool (arena per device), then
    /// start one worker per lane. `telemetry` receives the service
    /// gauges/histograms and every job's solver metrics; `prof` owns
    /// the device-memory ledger the arena guarantee is audited with.
    pub fn start(
        cfg: ServiceConfig,
        telemetry: Telemetry,
        prof: Profiler,
    ) -> Result<SolveService, SimError> {
        let slots = SlotPool::new(
            cfg.spec.clone(),
            cfg.devices,
            cfg.streams,
            cfg.slot_bytes,
            &telemetry,
            &prof,
        )?;
        let latency = telemetry.registry().map(|r| {
            r.histogram(
                "tsp_serve_solve_seconds",
                "End-to-end solve latency (slot acquired to terminal state)",
                SECONDS_BUCKETS,
            )
        });
        let inner = Arc::new(Inner {
            queue: AdmissionQueue::new(cfg.queue_capacity, cfg.per_tenant_quota, &telemetry),
            slots,
            jobs: Mutex::new(HashMap::new()),
            telemetry,
            prof,
            latency,
            artifacts_dir: cfg.artifacts_dir,
            max_cities: cfg.max_cities,
        });
        let workers = (0..inner.slots.lanes())
            .map(|lane| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("tsp-serve-worker-{lane}"))
                    .spawn(move || worker(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(SolveService {
            inner,
            workers: Mutex::new(workers),
            seq: AtomicU64::new(0),
            reports: Mutex::new(Vec::new()),
        })
    }

    /// Validate and admit a request. Typed rejections: 400 on a bad
    /// payload, 400 on an oversized instance, 503 on an already-past
    /// deadline, 429/503 from admission — none of which ever reach a
    /// device lane.
    pub fn submit(&self, request: SolveRequest) -> Result<SolveResponse, ApiError> {
        let inst = request.instance()?;
        if inst.len() > self.inner.max_cities {
            return Err(ApiError::new(
                ErrorCode::Unsupported,
                format!(
                    "instance has {} cities; this service accepts at most {}",
                    inst.len(),
                    self.inner.max_cities
                ),
            ));
        }
        // A deadline of zero is already past: reject it here, before
        // admission, so it provably never occupies a queue slot or lane.
        if request.deadline_ms == Some(0) {
            return Err(ApiError::new(
                ErrorCode::DeadlineExceeded,
                "the deadline expired before the job could be admitted",
            ));
        }
        let job_id = format!("job-{:08x}", self.seq.fetch_add(1, Ordering::Relaxed));
        let ticket = Ticket {
            job_id: job_id.clone(),
            tenant: request.tenant.clone(),
        };
        let deadline = request
            .deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let entry = JobEntry {
            status: JobStatus::queued(&job_id, &request.tenant),
            request,
            cancel: CancelToken::new(),
            deadline,
        };
        // Insert before admitting so a worker popping the ticket
        // always finds the entry; remove again if admission refuses.
        self.inner
            .jobs
            .lock()
            .unwrap()
            .insert(job_id.clone(), entry);
        if let Err(err) = self.inner.queue.submit(ticket) {
            self.inner.jobs.lock().unwrap().remove(&job_id);
            return Err(err);
        }
        Ok(SolveResponse::queued(job_id))
    }

    /// Current status of a job.
    pub fn status(&self, job_id: &str) -> Result<JobStatus, ApiError> {
        self.inner
            .jobs
            .lock()
            .unwrap()
            .get(job_id)
            .map(|e| e.status.clone())
            .ok_or_else(|| ApiError::new(ErrorCode::NotFound, format!("no job {job_id:?}")))
    }

    /// Request cancellation. A queued job turns terminal immediately;
    /// a running job's solver observes the token at its next ILS
    /// iteration and lands in [`JobState::Cancelled`]. Idempotent on
    /// terminal jobs.
    pub fn cancel(&self, job_id: &str) -> Result<JobStatus, ApiError> {
        let mut jobs = self.inner.jobs.lock().unwrap();
        let entry = jobs
            .get_mut(job_id)
            .ok_or_else(|| ApiError::new(ErrorCode::NotFound, format!("no job {job_id:?}")))?;
        if !entry.status.state.is_terminal() {
            entry.cancel.cancel();
            if entry.status.state == JobState::Queued {
                // The worker that later pops the ticket sees the
                // terminal state and only credits the quota back.
                entry.status.state = JobState::Cancelled;
            }
        }
        Ok(entry.status.clone())
    }

    /// The telemetry handle the service publishes into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// The profiler owning the device-memory ledger.
    pub fn profiler(&self) -> &Profiler {
        &self.inner.prof
    }

    /// Live slot-pool occupancy.
    pub fn occupancy(&self) -> usize {
        self.inner.slots.occupancy()
    }

    /// Admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// Drain the queue, join the workers, collect the per-stream
    /// modeled schedules, and tear the arenas down (balancing the
    /// ledger). Idempotent; also runs on drop.
    pub fn shutdown(&self) -> Vec<StreamReport> {
        self.inner.queue.close();
        for worker in self.workers.lock().unwrap().drain(..) {
            let _ = worker.join();
        }
        let mut reports = self.reports.lock().unwrap();
        if reports.is_empty() {
            *reports = self.inner.slots.synchronize();
            self.inner.slots.release_arenas();
        }
        reports.clone()
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker(inner: &Inner) {
    while let Some(ticket) = inner.queue.pop() {
        run_ticket(inner, &ticket);
        inner.queue.finish(&ticket.tenant);
    }
}

fn run_ticket(inner: &Inner, ticket: &Ticket) {
    let Some((request, base_token, deadline)) = ({
        let jobs = inner.jobs.lock().unwrap();
        jobs.get(&ticket.job_id).and_then(|entry| {
            if entry.status.state.is_terminal() {
                None // cancelled while queued; quota credit only
            } else {
                Some((entry.request.clone(), entry.cancel.clone(), entry.deadline))
            }
        })
    }) else {
        return;
    };
    let token = match deadline {
        Some(deadline) => base_token.clone().with_deadline(deadline),
        None => base_token.clone(),
    };
    // Deadline/cancel re-check BEFORE leasing a slot: an expired job
    // must never reach a device lane.
    if token.is_cancelled() {
        finish_job(
            inner,
            ticket,
            expired_or_cancelled(&base_token),
            None,
            None,
            None,
        );
        return;
    }

    let lease = inner.slots.acquire();
    set_state(inner, &ticket.job_id, JobState::Running);
    let journal = Journal::attached();
    let job_prof = Profiler::attached();
    let started = Instant::now();
    let outcome = solve(inner, &request, &journal, &job_prof, &token, &lease);
    if let Some(latency) = &inner.latency {
        latency.observe(started.elapsed().as_secs_f64());
    }
    drop(lease);

    match outcome {
        Ok(solution) => {
            let state = if token.is_cancelled() {
                expired_or_cancelled(&base_token)
            } else {
                (JobState::Done, None)
            };
            finish_job(
                inner,
                ticket,
                state,
                Some(&solution),
                Some(&journal),
                Some(&job_prof),
            );
        }
        Err(err) => {
            finish_job(
                inner,
                ticket,
                (JobState::Failed, Some(err)),
                None,
                Some(&journal),
                Some(&job_prof),
            );
        }
    }
}

fn solve(
    inner: &Inner,
    request: &SolveRequest,
    journal: &Journal,
    job_prof: &Profiler,
    token: &CancelToken,
    lease: &crate::pool::SlotLease<'_>,
) -> Result<Solution, ApiError> {
    let inst = request.instance()?;
    let solver = SolverBuilder::from_request(request)?
        .telemetry(
            TelemetryOptions::new()
                .with_registry(inner.telemetry.clone())
                .with_journal(journal.clone()),
        )
        .profiler(job_prof.clone())
        .cancel(token.clone())
        .build();
    solver
        .run_on(&inst, lease.device(), lease.stream())
        .map_err(|e| ApiError::new(ErrorCode::Internal, e.to_string()))
}

/// A tripped token means either an explicit `DELETE` (the shared flag
/// is armed) or a passed deadline (it is not).
fn expired_or_cancelled(base_token: &CancelToken) -> (JobState, Option<ApiError>) {
    if base_token.is_cancelled() {
        (JobState::Cancelled, None)
    } else {
        (
            JobState::Expired,
            Some(ApiError::new(
                ErrorCode::DeadlineExceeded,
                "the deadline passed before the solve completed",
            )),
        )
    }
}

fn set_state(inner: &Inner, job_id: &str, state: JobState) {
    if let Some(entry) = inner.jobs.lock().unwrap().get_mut(job_id) {
        entry.status.state = state;
    }
}

fn finish_job(
    inner: &Inner,
    ticket: &Ticket,
    (state, error): (JobState, Option<ApiError>),
    solution: Option<&Solution>,
    journal: Option<&Journal>,
    job_prof: Option<&Profiler>,
) {
    let run_id = solution.map(|s| s.run_id.clone());
    {
        let mut jobs = inner.jobs.lock().unwrap();
        if let Some(entry) = jobs.get_mut(&ticket.job_id) {
            entry.status.state = state;
            entry.status.error = error;
            if let Some(solution) = solution {
                entry.status.run_id = Some(solution.run_id.clone());
                entry.status.tour = Some(solution.tour.as_slice().to_vec());
                entry.status.length = Some(solution.length);
                entry.status.initial_length = Some(solution.initial_length);
                entry.status.chains = Some(solution.chains);
                entry.status.modeled_seconds = Some(solution.modeled_seconds());
            }
        }
    }
    if let (Some(dir), Some(journal), Some(job_prof)) = (&inner.artifacts_dir, journal, job_prof) {
        write_artifacts(
            inner,
            dir,
            &ticket.job_id,
            run_id.as_deref(),
            journal,
            job_prof,
        );
    }
}

/// Leave a `tsp-inspect`-compatible artifact set for the job. Uses
/// the flush-on-drop [`JournalWriter`] so even an interrupted process
/// never leaves a truncated JSONL line behind.
fn write_artifacts(
    inner: &Inner,
    dir: &std::path::Path,
    job_id: &str,
    run_id: Option<&str>,
    journal: &Journal,
    job_prof: &Profiler,
) {
    let job_dir = dir.join(job_id);
    if std::fs::create_dir_all(&job_dir).is_err() {
        return;
    }
    if let Ok(mut writer) = JournalWriter::create(job_dir.join("journal.jsonl")) {
        let _ = writer.append_all(journal);
    }
    let report = job_prof.report();
    let folded = match report.flamegraph() {
        f if f.is_empty() => report.flamegraph_wall(),
        f => f,
    };
    let _ = std::fs::write(job_dir.join("run.folded"), folded);
    let _ = std::fs::write(
        job_dir.join("memory.json"),
        inner.prof.memory_report().to_json_string(),
    );
    let mut manifest = Manifest::new(run_id.unwrap_or(job_id));
    manifest
        .push("journal", "journal.jsonl")
        .push("flamegraph", "run.folded")
        .push("memory", "memory.json");
    let _ = std::fs::write(job_dir.join("manifest.json"), manifest.to_json_string());
}
