//! The solve service proper: jobs, workers, deadlines, artifacts.
//!
//! One worker thread per pool lane pops tickets off the
//! [`AdmissionQueue`], re-checks cancellation/deadline **before**
//! leasing a slot (a past-deadline job never touches a device lane),
//! then drives [`tsp::Solver::run_on`] on the leased `(device, stream)`
//! pair. Terminal states credit the tenant's quota back and, when an
//! artifacts directory is configured, leave a `tsp-inspect`-readable
//! manifest (`manifest.json` + `journal.jsonl` + `run.folded` +
//! `memory.json`) keyed by the run's deterministic `run_id`.

use crate::admission::{AdmissionQueue, Ticket};
use crate::api::{
    ApiError, ErrorCode, FromRequest, JobState, JobStatus, OpsJob, OpsLatency, OpsSnapshot,
    SolveRequest, SolveResponse,
};
use crate::pool::SlotPool;
use crate::span::{RequestSpan, Stage};
use gpu_sim::{DeviceSpec, SimError, StreamReport};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tsp::{Solution, SolverBuilder, TelemetryOptions};
use tsp_core::CancelToken;
use tsp_prof::{Manifest, Profiler};
use tsp_telemetry::{
    Histogram, Journal, JournalWriter, RollingQuantiles, Telemetry, SECONDS_BUCKETS,
};
use tsp_trace::{chrome_trace_with_ids, Recorder};

/// Boot-time service configuration.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Device spec for every pooled device.
    pub spec: DeviceSpec,
    /// Simulated devices in the pool.
    pub devices: usize,
    /// Streams per device; `devices × streams` lanes = concurrent solves.
    pub streams: usize,
    /// Arena bytes budgeted per lane.
    pub slot_bytes: u64,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Live (queued + running) jobs allowed per tenant.
    pub per_tenant_quota: usize,
    /// Largest instance accepted.
    pub max_cities: usize,
    /// Per-job artifact directory (`<dir>/<job_id>/manifest.json`…);
    /// `None` keeps everything in memory.
    pub artifacts_dir: Option<PathBuf>,
    /// Stamp a [`RequestSpan`] lifecycle timeline on every job (and,
    /// with an artifacts dir, persist it as `request.json` plus a
    /// trace-tagged `trace.json`). Observational only: turning this
    /// off changes neither tour bytes nor modeled seconds.
    pub request_spans: bool,
    /// Append one structured JSONL access-log line per HTTP request to
    /// this file (served by [`crate::server::ServeServer`]).
    pub access_log: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            spec: gpu_sim::spec::gtx_680_cuda(),
            devices: 2,
            streams: 2,
            slot_bytes: 32 << 20,
            queue_capacity: 256,
            per_tenant_quota: 16,
            max_cities: 4096,
            artifacts_dir: None,
            request_spans: true,
            access_log: None,
        }
    }
}

impl ServiceConfig {
    /// Set the device spec used for every pooled device.
    pub fn with_spec(mut self, spec: DeviceSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Set the simulated device count.
    pub fn with_devices(mut self, devices: usize) -> Self {
        self.devices = devices;
        self
    }

    /// Set the streams per device.
    pub fn with_streams(mut self, streams: usize) -> Self {
        self.streams = streams;
        self
    }

    /// Set the arena bytes budgeted per lane.
    pub fn with_slot_bytes(mut self, bytes: u64) -> Self {
        self.slot_bytes = bytes;
        self
    }

    /// Set the admission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Set the per-tenant live-job quota.
    pub fn with_per_tenant_quota(mut self, quota: usize) -> Self {
        self.per_tenant_quota = quota;
        self
    }

    /// Set the largest accepted instance size.
    pub fn with_max_cities(mut self, max_cities: usize) -> Self {
        self.max_cities = max_cities;
        self
    }

    /// Write per-job artifacts (manifest, journal, flamegraph, ledger)
    /// under `dir/<job_id>/`.
    pub fn with_artifacts_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.artifacts_dir = Some(dir.into());
        self
    }

    /// Enable or disable per-request lifecycle spans (on by default).
    pub fn with_request_spans(mut self, enabled: bool) -> Self {
        self.request_spans = enabled;
        self
    }

    /// Append one JSONL access-log line per HTTP request to `path`.
    pub fn with_access_log(mut self, path: impl Into<PathBuf>) -> Self {
        self.access_log = Some(path.into());
        self
    }
}

struct JobEntry {
    status: JobStatus,
    request: SolveRequest,
    /// Base token; `DELETE` arms the shared flag, workers derive the
    /// deadline-carrying copy from it.
    cancel: CancelToken,
    deadline: Option<Instant>,
    /// When the request reached the service; every span stamp is wall
    /// time relative to this.
    received: Instant,
    /// The lifecycle timeline (`None` when spans are configured off).
    span: Option<RequestSpan>,
}

/// The stage names fed into the rolling latency estimators, in the
/// order they are exported.
const LATENCY_STAGES: [&str; 4] = ["queue_wait", "lease_wait", "solve", "end_to_end"];

const LATENCY_HELP: &str = "Rolling latency quantile estimates per request stage";

struct Inner {
    queue: AdmissionQueue,
    slots: SlotPool,
    jobs: Mutex<HashMap<String, JobEntry>>,
    telemetry: Telemetry,
    prof: Profiler,
    latency: Option<Histogram>,
    artifacts_dir: Option<PathBuf>,
    max_cities: usize,
    request_spans: bool,
    access_log: Option<PathBuf>,
    /// One P² estimator set per [`LATENCY_STAGES`] entry.
    stage_latency: Mutex<Vec<(&'static str, RollingQuantiles)>>,
    /// Rejection totals per typed error code, ascending by code.
    rejections: Mutex<BTreeMap<&'static str, u64>>,
}

impl Inner {
    /// Count one typed rejection: the `BTreeMap` backs `/v1/ops`, the
    /// labeled counter backs `/metrics`.
    fn count_rejection(&self, code: ErrorCode) {
        let name = code.as_str();
        *self.rejections.lock().unwrap().entry(name).or_insert(0) += 1;
        if let Some(registry) = self.telemetry.registry() {
            registry
                .counter_with(
                    "tsp_serve_rejections_total",
                    "Requests rejected, by typed error code",
                    &[("code", name)],
                )
                .inc();
        }
    }

    /// Fold one finished span into the rolling estimators and mirror
    /// the fresh p50/p95/p99 estimates onto the labeled gauges.
    fn observe_latency(&self, span: &RequestSpan) {
        let samples = [
            span.queue_wait_seconds(),
            span.lease_wait_seconds(),
            span.solve_seconds(),
            span.end_to_end_seconds(),
        ];
        let mut stages = self.stage_latency.lock().unwrap();
        for ((name, rolling), sample) in stages.iter_mut().zip(samples) {
            let Some(sample) = sample else { continue };
            rolling.observe(sample);
            if let Some(registry) = self.telemetry.registry() {
                for (q, estimate) in rolling.estimates() {
                    let label = quantile_label(q);
                    registry
                        .gauge_with(
                            "tsp_serve_latency_seconds",
                            LATENCY_HELP,
                            &[("stage", name), ("quantile", label)],
                        )
                        .set(estimate);
                }
            }
        }
    }
}

/// `0.5 → "p50"`; the label spelling for a quantile gauge.
fn quantile_label(q: f64) -> &'static str {
    match (q * 100.0).round() as u32 {
        50 => "p50",
        95 => "p95",
        99 => "p99",
        _ => "p",
    }
}

/// A running multi-tenant solve service. Submit with
/// [`SolveService::submit`], poll with [`SolveService::status`],
/// cancel with [`SolveService::cancel`]; mount it over HTTP with
/// [`crate::server::ServeServer`].
pub struct SolveService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    seq: AtomicU64,
    reports: Mutex<Vec<StreamReport>>,
}

impl std::fmt::Debug for SolveService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveService")
            .field("lanes", &self.inner.slots.lanes())
            .field("queue_depth", &self.inner.queue.depth())
            .finish()
    }
}

impl SolveService {
    /// Boot the service: warm the slot pool (arena per device), then
    /// start one worker per lane. `telemetry` receives the service
    /// gauges/histograms and every job's solver metrics; `prof` owns
    /// the device-memory ledger the arena guarantee is audited with.
    pub fn start(
        cfg: ServiceConfig,
        telemetry: Telemetry,
        prof: Profiler,
    ) -> Result<SolveService, SimError> {
        let slots = SlotPool::new(
            cfg.spec.clone(),
            cfg.devices,
            cfg.streams,
            cfg.slot_bytes,
            &telemetry,
            &prof,
        )?;
        let latency = telemetry.registry().map(|r| {
            r.histogram(
                "tsp_serve_solve_seconds",
                "End-to-end solve latency (slot acquired to terminal state)",
                SECONDS_BUCKETS,
            )
        });
        let inner = Arc::new(Inner {
            queue: AdmissionQueue::new(cfg.queue_capacity, cfg.per_tenant_quota, &telemetry),
            slots,
            jobs: Mutex::new(HashMap::new()),
            telemetry,
            prof,
            latency,
            artifacts_dir: cfg.artifacts_dir,
            max_cities: cfg.max_cities,
            request_spans: cfg.request_spans,
            access_log: cfg.access_log,
            stage_latency: Mutex::new(
                LATENCY_STAGES
                    .iter()
                    .map(|&stage| (stage, RollingQuantiles::new()))
                    .collect(),
            ),
            rejections: Mutex::new(BTreeMap::new()),
        });
        let workers = (0..inner.slots.lanes())
            .map(|lane| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("tsp-serve-worker-{lane}"))
                    .spawn(move || worker(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(SolveService {
            inner,
            workers: Mutex::new(workers),
            seq: AtomicU64::new(0),
            reports: Mutex::new(Vec::new()),
        })
    }

    /// Validate and admit a request. Typed rejections: 400 on a bad
    /// payload, 400 on an oversized instance, 503 on an already-past
    /// deadline, 429/503 from admission — none of which ever reach a
    /// device lane.
    pub fn submit(&self, request: SolveRequest) -> Result<SolveResponse, ApiError> {
        self.submit_traced(request, "")
    }

    /// [`SolveService::submit`] with a correlating W3C trace id: the
    /// id is echoed on the response and every later status, stamped
    /// into the job's journal lines and span, and tagged onto its
    /// Chrome trace. An empty `trace_id` means "uncorrelated".
    pub fn submit_traced(
        &self,
        request: SolveRequest,
        trace_id: &str,
    ) -> Result<SolveResponse, ApiError> {
        let received = Instant::now();
        let inst = request.instance().map_err(|err| self.reject(err))?;
        if inst.len() > self.inner.max_cities {
            return Err(self.reject(ApiError::new(
                ErrorCode::Unsupported,
                format!(
                    "instance has {} cities; this service accepts at most {}",
                    inst.len(),
                    self.inner.max_cities
                ),
            )));
        }
        // A deadline of zero is already past: reject it here, before
        // admission, so it provably never occupies a queue slot or lane.
        if request.deadline_ms == Some(0) {
            return Err(self.reject(ApiError::new(
                ErrorCode::DeadlineExceeded,
                "the deadline expired before the job could be admitted",
            )));
        }
        let job_id = format!("job-{:08x}", self.seq.fetch_add(1, Ordering::Relaxed));
        let ticket = Ticket {
            job_id: job_id.clone(),
            tenant: request.tenant.clone(),
        };
        let deadline = request
            .deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let span = self.inner.request_spans.then(|| {
            let mut span = RequestSpan::new(&job_id, &request.tenant);
            span.trace_id = trace_id.to_string();
            span.stamp(Stage::Received, 0.0, 0.0);
            // Stamp the admission transitions *before* the ticket hits
            // the queue: a worker may dequeue the job the instant
            // `submit` returns, and its stamps must land after these.
            // If admission refuses, the whole entry (and span) is
            // removed, so the optimistic stamps never escape. Both
            // carry the same clock read — admission *is* the enqueue.
            let wall = received.elapsed().as_secs_f64();
            span.stamp(Stage::Admitted, wall, 0.0);
            span.stamp(Stage::Queued, wall, 0.0);
            span
        });
        let mut status = JobStatus::queued(&job_id, &request.tenant);
        if !trace_id.is_empty() {
            status = status.with_trace_id(trace_id);
        }
        let entry = JobEntry {
            status,
            request,
            cancel: CancelToken::new(),
            deadline,
            received,
            span,
        };
        // Insert before admitting so a worker popping the ticket
        // always finds the entry; remove again if admission refuses.
        self.inner
            .jobs
            .lock()
            .unwrap()
            .insert(job_id.clone(), entry);
        if let Err(err) = self.inner.queue.submit(ticket) {
            self.inner.jobs.lock().unwrap().remove(&job_id);
            return Err(self.reject(err));
        }
        let mut response = SolveResponse::queued(job_id);
        if !trace_id.is_empty() {
            response = response.with_trace_id(trace_id);
        }
        Ok(response)
    }

    /// Count a typed rejection and hand the error back.
    fn reject(&self, err: ApiError) -> ApiError {
        self.inner.count_rejection(err.code);
        err
    }

    /// Current status of a job.
    pub fn status(&self, job_id: &str) -> Result<JobStatus, ApiError> {
        self.inner
            .jobs
            .lock()
            .unwrap()
            .get(job_id)
            .map(|e| e.status.clone())
            .ok_or_else(|| ApiError::new(ErrorCode::NotFound, format!("no job {job_id:?}")))
    }

    /// Request cancellation. A queued job turns terminal immediately;
    /// a running job's solver observes the token at its next ILS
    /// iteration and lands in [`JobState::Cancelled`]. Idempotent on
    /// terminal jobs.
    pub fn cancel(&self, job_id: &str) -> Result<JobStatus, ApiError> {
        let mut jobs = self.inner.jobs.lock().unwrap();
        let entry = jobs
            .get_mut(job_id)
            .ok_or_else(|| ApiError::new(ErrorCode::NotFound, format!("no job {job_id:?}")))?;
        if !entry.status.state.is_terminal() {
            entry.cancel.cancel();
            if entry.status.state == JobState::Queued {
                // The worker that later pops the ticket sees the
                // terminal state and only credits the quota back.
                entry.status.state = JobState::Cancelled;
                if let Some(span) = entry.span.as_mut() {
                    span.stamp(
                        Stage::Cancelled,
                        entry.received.elapsed().as_secs_f64(),
                        0.0,
                    );
                }
            }
        }
        Ok(entry.status.clone())
    }

    /// The telemetry handle the service publishes into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// The profiler owning the device-memory ledger.
    pub fn profiler(&self) -> &Profiler {
        &self.inner.prof
    }

    /// Live slot-pool occupancy.
    pub fn occupancy(&self) -> usize {
        self.inner.slots.occupancy()
    }

    /// Admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// Count a typed rejection that never reached [`SolveService::submit`]
    /// (the HTTP layer's parse failures and unknown-job 404s).
    pub fn count_rejection(&self, code: ErrorCode) {
        self.inner.count_rejection(code);
    }

    /// The configured access-log path, if any (the HTTP server wires
    /// it into [`tsp_telemetry::AccessLog`]).
    pub fn access_log_path(&self) -> Option<&std::path::Path> {
        self.inner.access_log.as_deref()
    }

    /// A live operational snapshot: pool pressure, every known job
    /// with its lane and trace id, rolling latency quantiles per
    /// lifecycle stage, and rejection totals per error code. Purely
    /// observational — building it takes the bookkeeping locks but
    /// never touches a device lane.
    pub fn ops_snapshot(&self) -> OpsSnapshot {
        let mut snap = OpsSnapshot::new(self.inner.slots.lanes() as u64);
        snap.queue_depth = self.inner.queue.depth() as u64;
        snap.slot_occupancy = self.inner.slots.occupancy() as u64;
        {
            let jobs = self.inner.jobs.lock().unwrap();
            let mut ids: Vec<&String> = jobs.keys().collect();
            ids.sort();
            for id in ids {
                let entry = &jobs[id];
                let mut job = OpsJob::new(id, &entry.status.tenant, entry.status.state);
                job.trace_id = entry.status.trace_id.clone();
                if let Some(span) = &entry.span {
                    if let Some(lease) = span.stage(Stage::Leased) {
                        job.device = lease.device;
                        job.stream = lease.stream;
                    }
                    job.end_to_end_seconds = span.end_to_end_seconds();
                }
                snap.jobs.push(job);
            }
        }
        for (stage, rolling) in self.inner.stage_latency.lock().unwrap().iter() {
            snap.latency.push(OpsLatency::new(
                *stage,
                rolling.count(),
                rolling.estimates(),
            ));
        }
        snap.rejections = self
            .inner
            .rejections
            .lock()
            .unwrap()
            .iter()
            .map(|(&code, &n)| (code.to_string(), n))
            .collect();
        snap
    }

    /// Drain the queue, join the workers, collect the per-stream
    /// modeled schedules, and tear the arenas down (balancing the
    /// ledger). Idempotent; also runs on drop.
    pub fn shutdown(&self) -> Vec<StreamReport> {
        self.inner.queue.close();
        for worker in self.workers.lock().unwrap().drain(..) {
            let _ = worker.join();
        }
        let mut reports = self.reports.lock().unwrap();
        if reports.is_empty() {
            *reports = self.inner.slots.synchronize();
            self.inner.slots.release_arenas();
        }
        reports.clone()
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker(inner: &Inner) {
    while let Some(ticket) = inner.queue.pop() {
        run_ticket(inner, &ticket);
        inner.queue.finish(&ticket.tenant);
    }
}

fn run_ticket(inner: &Inner, ticket: &Ticket) {
    let Some((request, base_token, deadline, trace_id)) = ({
        let jobs = inner.jobs.lock().unwrap();
        jobs.get(&ticket.job_id).and_then(|entry| {
            if entry.status.state.is_terminal() {
                None // cancelled while queued; quota credit only
            } else {
                Some((
                    entry.request.clone(),
                    entry.cancel.clone(),
                    entry.deadline,
                    entry.status.trace_id.clone().unwrap_or_default(),
                ))
            }
        })
    }) else {
        return;
    };
    stamp_stage(inner, &ticket.job_id, Stage::Dequeued);
    let token = match deadline {
        Some(deadline) => base_token.clone().with_deadline(deadline),
        None => base_token.clone(),
    };
    // Deadline/cancel re-check BEFORE leasing a slot: an expired job
    // must never reach a device lane.
    if token.is_cancelled() {
        finish_job(
            inner,
            ticket,
            expired_or_cancelled(&base_token),
            None,
            None,
            None,
            None,
        );
        return;
    }

    let lease = inner.slots.acquire();
    if let Some(entry) = inner.jobs.lock().unwrap().get_mut(&ticket.job_id) {
        if let Some(span) = entry.span.as_mut() {
            span.stamp_lease(
                entry.received.elapsed().as_secs_f64(),
                lease.device_index() as u64,
                lease.stream().index() as u64,
            );
        }
    }
    set_state(inner, &ticket.job_id, JobState::Running);
    let mut journal = Journal::attached();
    if !trace_id.is_empty() {
        journal = journal.with_trace_id(&trace_id);
    }
    let job_prof = Profiler::attached();
    // A per-job event recorder feeds the trace-tagged `trace.json`
    // artifact; it only records when spans will actually be persisted.
    let recorder = if inner.request_spans && inner.artifacts_dir.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    stamp_stage(inner, &ticket.job_id, Stage::Solving);
    let started = Instant::now();
    let outcome = solve(
        inner, &request, &journal, &job_prof, &recorder, &token, &lease,
    );
    if let Some(latency) = &inner.latency {
        latency.observe(started.elapsed().as_secs_f64());
    }
    drop(lease);

    match outcome {
        Ok(solution) => {
            let state = if token.is_cancelled() {
                expired_or_cancelled(&base_token)
            } else {
                (JobState::Done, None)
            };
            finish_job(
                inner,
                ticket,
                state,
                Some(&solution),
                Some(&journal),
                Some(&job_prof),
                Some(&recorder),
            );
        }
        Err(err) => {
            finish_job(
                inner,
                ticket,
                (JobState::Failed, Some(err)),
                None,
                Some(&journal),
                Some(&job_prof),
                Some(&recorder),
            );
        }
    }
}

/// Stamp `stage` on the job's span at the current wall offset (no-op
/// when spans are off or the job is gone).
fn stamp_stage(inner: &Inner, job_id: &str, stage: Stage) {
    if let Some(entry) = inner.jobs.lock().unwrap().get_mut(job_id) {
        if let Some(span) = entry.span.as_mut() {
            span.stamp(stage, entry.received.elapsed().as_secs_f64(), 0.0);
        }
    }
}

fn solve(
    inner: &Inner,
    request: &SolveRequest,
    journal: &Journal,
    job_prof: &Profiler,
    recorder: &Recorder,
    token: &CancelToken,
    lease: &crate::pool::SlotLease<'_>,
) -> Result<Solution, ApiError> {
    let inst = request.instance()?;
    let solver = SolverBuilder::from_request(request)?
        .telemetry(
            TelemetryOptions::new()
                .with_registry(inner.telemetry.clone())
                .with_journal(journal.clone()),
        )
        .profiler(job_prof.clone())
        .recorder(recorder.clone())
        .cancel(token.clone())
        .build();
    solver
        .run_on(&inst, lease.device(), lease.stream())
        .map_err(|e| ApiError::new(ErrorCode::Internal, e.to_string()))
}

/// A tripped token means either an explicit `DELETE` (the shared flag
/// is armed) or a passed deadline (it is not).
fn expired_or_cancelled(base_token: &CancelToken) -> (JobState, Option<ApiError>) {
    if base_token.is_cancelled() {
        (JobState::Cancelled, None)
    } else {
        (
            JobState::Expired,
            Some(ApiError::new(
                ErrorCode::DeadlineExceeded,
                "the deadline passed before the solve completed",
            )),
        )
    }
}

fn set_state(inner: &Inner, job_id: &str, state: JobState) {
    if let Some(entry) = inner.jobs.lock().unwrap().get_mut(job_id) {
        entry.status.state = state;
    }
}

fn finish_job(
    inner: &Inner,
    ticket: &Ticket,
    (state, error): (JobState, Option<ApiError>),
    solution: Option<&Solution>,
    journal: Option<&Journal>,
    job_prof: Option<&Profiler>,
    recorder: Option<&Recorder>,
) {
    let run_id = solution.map(|s| s.run_id.clone());
    let modeled = solution.map(|s| s.modeled_seconds()).unwrap_or(0.0);
    let writing = inner.artifacts_dir.is_some() && journal.is_some() && job_prof.is_some();
    let trace_id = {
        let mut jobs = inner.jobs.lock().unwrap();
        let mut trace_id = String::new();
        if let Some(entry) = jobs.get_mut(&ticket.job_id) {
            trace_id = entry.status.trace_id.clone().unwrap_or_default();
            if let Some(span) = entry.span.as_mut() {
                if let Some(run_id) = &run_id {
                    span.run_id = run_id.clone();
                }
                if writing {
                    // The artifacts→terminal window below covers the
                    // actual writes.
                    span.stamp(
                        Stage::Artifacts,
                        entry.received.elapsed().as_secs_f64(),
                        modeled,
                    );
                }
            }
        }
        trace_id
    };
    if let (Some(dir), Some(journal), Some(job_prof)) = (&inner.artifacts_dir, journal, job_prof) {
        write_artifacts(
            inner,
            dir,
            &ticket.job_id,
            run_id.as_deref(),
            &trace_id,
            journal,
            job_prof,
            recorder,
        );
    }
    // Terminal span stamp, then persist the completed span before the
    // status flips terminal: a client that polls a terminal state must
    // find every artifact — request.json included — already durable.
    let span = {
        let mut jobs = inner.jobs.lock().unwrap();
        jobs.get_mut(&ticket.job_id).and_then(|entry| {
            let span = entry.span.as_mut()?;
            let stage = Stage::terminal_for(state)?;
            span.stamp(stage, entry.received.elapsed().as_secs_f64(), modeled);
            Some(span.clone())
        })
    };
    if let Some(span) = &span {
        if let Some(dir) = &inner.artifacts_dir {
            let job_dir = dir.join(&ticket.job_id);
            if std::fs::create_dir_all(&job_dir).is_ok() {
                let _ = std::fs::write(job_dir.join("request.json"), span.to_json().to_string());
            }
        }
    }
    {
        let mut jobs = inner.jobs.lock().unwrap();
        if let Some(entry) = jobs.get_mut(&ticket.job_id) {
            entry.status.state = state;
            entry.status.error = error;
            if let Some(solution) = solution {
                entry.status.run_id = Some(solution.run_id.clone());
                entry.status.tour = Some(solution.tour.as_slice().to_vec());
                entry.status.length = Some(solution.length);
                entry.status.initial_length = Some(solution.initial_length);
                entry.status.chains = Some(solution.chains);
                entry.status.modeled_seconds = Some(solution.modeled_seconds());
            }
        }
    }
    if let Some(span) = span {
        inner.observe_latency(&span);
    }
}

/// Leave a `tsp-inspect`-compatible artifact set for the job. Uses
/// the flush-on-drop [`JournalWriter`] so even an interrupted process
/// never leaves a truncated JSONL line behind.
#[allow(clippy::too_many_arguments)]
fn write_artifacts(
    inner: &Inner,
    dir: &std::path::Path,
    job_id: &str,
    run_id: Option<&str>,
    trace_id: &str,
    journal: &Journal,
    job_prof: &Profiler,
    recorder: Option<&Recorder>,
) {
    let job_dir = dir.join(job_id);
    if std::fs::create_dir_all(&job_dir).is_err() {
        return;
    }
    if let Ok(mut writer) = JournalWriter::create(job_dir.join("journal.jsonl")) {
        let _ = writer.append_all(journal);
    }
    let report = job_prof.report();
    let folded = match report.flamegraph() {
        f if f.is_empty() => report.flamegraph_wall(),
        f => f,
    };
    let _ = std::fs::write(job_dir.join("run.folded"), folded);
    let _ = std::fs::write(
        job_dir.join("memory.json"),
        inner.prof.memory_report().to_json_string(),
    );
    let mut manifest = Manifest::new(run_id.unwrap_or(job_id));
    manifest
        .push("journal", "journal.jsonl")
        .push("flamegraph", "run.folded")
        .push("memory", "memory.json");
    if inner.request_spans {
        // The trace-tagged Chrome trace of the solve's recorded events.
        if let Some(recorder) = recorder {
            let trace =
                chrome_trace_with_ids(&recorder.events(), run_id.unwrap_or(job_id), trace_id);
            if std::fs::write(job_dir.join("trace.json"), trace).is_ok() {
                manifest.push("trace", "trace.json");
            }
        }
        // request.json is written by `finish_job` right after the
        // terminal stamp; index it here so the manifest is complete.
        manifest.push("request", "request.json");
    }
    let _ = std::fs::write(job_dir.join("manifest.json"), manifest.to_json_string());
}
