//! Request-scoped spans: the lifecycle timeline every served job
//! carries from the first byte of its HTTP request to its terminal
//! state.
//!
//! A [`RequestSpan`] is a list of [`StageStamp`]s —
//! `received → admitted → queued → dequeued → leased(device,stream) →
//! solving → artifacts → terminal` (or `received → rejected` for jobs
//! the admission layer turns away). Every stamp carries a *wall*
//! timestamp relative to `received` and the *modeled* device seconds
//! consumed so far, so the serving-side breakdown (queue wait, lease
//! wait, solve, artifact write) reads off the same artifact as the
//! solver-side one.
//!
//! Spans are observational only: the bit-inertness contract of the
//! workspace extends here, and `crates/serve/tests/request_span.rs`
//! pins that solving with spans enabled or disabled yields
//! byte-identical tours and modeled seconds.
//!
//! Persisted as `request.json` next to the job's other artifacts and
//! indexed by the run manifest under kind `request`.

use crate::api::JobState;
use tsp_trace::json::{self, Json};

/// Format tag written to (and required from) `request.json`.
pub const REQUEST_SPAN_FORMAT: &str = "tsp-request-span/v1";

/// One point in the request lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The HTTP request reached the service.
    Received,
    /// Admission accepted the job (quota + queue capacity).
    Admitted,
    /// Admission turned the job away (terminal; the span ends here).
    Rejected,
    /// The job entered the admission queue.
    Queued,
    /// A worker popped the job off the queue.
    Dequeued,
    /// The job holds a `(device, stream)` lane lease.
    Leased,
    /// The solver started.
    Solving,
    /// The solver finished; artifacts are being written.
    Artifacts,
    /// Terminal: the solve succeeded.
    Done,
    /// Terminal: the solver failed.
    Failed,
    /// Terminal: cancelled via `DELETE /v1/jobs/{id}`.
    Cancelled,
    /// Terminal: the deadline passed first.
    Expired,
}

impl Stage {
    /// Stable wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Received => "received",
            Stage::Admitted => "admitted",
            Stage::Rejected => "rejected",
            Stage::Queued => "queued",
            Stage::Dequeued => "dequeued",
            Stage::Leased => "leased",
            Stage::Solving => "solving",
            Stage::Artifacts => "artifacts",
            Stage::Done => "done",
            Stage::Failed => "failed",
            Stage::Cancelled => "cancelled",
            Stage::Expired => "expired",
        }
    }

    /// Parse the wire spelling.
    pub fn parse(s: &str) -> Option<Stage> {
        Some(match s {
            "received" => Stage::Received,
            "admitted" => Stage::Admitted,
            "rejected" => Stage::Rejected,
            "queued" => Stage::Queued,
            "dequeued" => Stage::Dequeued,
            "leased" => Stage::Leased,
            "solving" => Stage::Solving,
            "artifacts" => Stage::Artifacts,
            "done" => Stage::Done,
            "failed" => Stage::Failed,
            "cancelled" => Stage::Cancelled,
            "expired" => Stage::Expired,
            _ => return None,
        })
    }

    /// `true` for stages that end the span.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            Stage::Rejected | Stage::Done | Stage::Failed | Stage::Cancelled | Stage::Expired
        )
    }

    /// The terminal stage for a terminal [`JobState`].
    pub fn terminal_for(state: JobState) -> Option<Stage> {
        Some(match state {
            JobState::Done => Stage::Done,
            JobState::Failed => Stage::Failed,
            JobState::Cancelled => Stage::Cancelled,
            JobState::Expired => Stage::Expired,
            JobState::Queued | JobState::Running => return None,
        })
    }
}

/// One stamped lifecycle point: when (wall, relative to `received`)
/// and how much modeled device time the job had consumed by then.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStamp {
    /// Which lifecycle point.
    pub stage: Stage,
    /// Host wall seconds since the `received` stamp.
    pub wall_seconds: f64,
    /// Modeled device seconds consumed so far (0 until the solve
    /// contributes).
    pub modeled_seconds: f64,
    /// Device pool index (stamped on [`Stage::Leased`]).
    pub device: Option<u64>,
    /// Stream index on that device (stamped on [`Stage::Leased`]).
    pub stream: Option<u64>,
}

impl StageStamp {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("stage", Json::from(self.stage.as_str()))
            .set("wall_seconds", Json::from(self.wall_seconds))
            .set("modeled_seconds", Json::from(self.modeled_seconds));
        if let Some(d) = self.device {
            o.set("device", Json::from(d as f64));
        }
        if let Some(s) = self.stream {
            o.set("stream", Json::from(s as f64));
        }
        o
    }

    fn from_json(j: &Json) -> Result<StageStamp, String> {
        let stage = j
            .get("stage")
            .and_then(Json::as_str)
            .and_then(Stage::parse)
            .ok_or("stage stamp missing a known stage")?;
        let num = |key: &str| {
            j.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("stage stamp missing numeric {key:?}"))
        };
        Ok(StageStamp {
            stage,
            wall_seconds: num("wall_seconds")?,
            modeled_seconds: num("modeled_seconds")?,
            device: j.get("device").and_then(Json::as_f64).map(|d| d as u64),
            stream: j.get("stream").and_then(Json::as_f64).map(|s| s as u64),
        })
    }
}

/// The full request timeline of one served job.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpan {
    /// The service-minted job id.
    pub job_id: String,
    /// Submitting tenant.
    pub tenant: String,
    /// W3C trace id correlating the span with the distributed trace
    /// (empty when the caller sent no `traceparent` and generation was
    /// off).
    pub trace_id: String,
    /// Deterministic solver run id (empty until the solve ran).
    pub run_id: String,
    /// The stamped lifecycle points, in stamp order.
    pub stages: Vec<StageStamp>,
}

impl RequestSpan {
    /// A span holding only its identity; the service stamps stages as
    /// the job progresses.
    pub fn new(job_id: impl Into<String>, tenant: impl Into<String>) -> RequestSpan {
        RequestSpan {
            job_id: job_id.into(),
            tenant: tenant.into(),
            trace_id: String::new(),
            run_id: String::new(),
            stages: Vec::new(),
        }
    }

    /// Append a stamp without lane info.
    pub fn stamp(&mut self, stage: Stage, wall_seconds: f64, modeled_seconds: f64) {
        self.stages.push(StageStamp {
            stage,
            wall_seconds,
            modeled_seconds,
            device: None,
            stream: None,
        });
    }

    /// Append the [`Stage::Leased`] stamp with its `(device, stream)`
    /// lane.
    pub fn stamp_lease(&mut self, wall_seconds: f64, device: u64, stream: u64) {
        self.stages.push(StageStamp {
            stage: Stage::Leased,
            wall_seconds,
            modeled_seconds: 0.0,
            device: Some(device),
            stream: Some(stream),
        });
    }

    /// The stamp for `stage`, if present.
    pub fn stage(&self, stage: Stage) -> Option<&StageStamp> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// The terminal stamp, if the span has ended.
    pub fn terminal(&self) -> Option<&StageStamp> {
        self.stages.iter().find(|s| s.stage.is_terminal())
    }

    /// Wall seconds between two stamped stages (`to - from`), if both
    /// are present.
    pub fn wall_between(&self, from: Stage, to: Stage) -> Option<f64> {
        Some(self.stage(to)?.wall_seconds - self.stage(from)?.wall_seconds)
    }

    /// Time spent waiting in the admission queue
    /// (`queued → dequeued`).
    pub fn queue_wait_seconds(&self) -> Option<f64> {
        self.wall_between(Stage::Queued, Stage::Dequeued)
    }

    /// Time spent waiting for a device lane (`dequeued → leased`).
    pub fn lease_wait_seconds(&self) -> Option<f64> {
        self.wall_between(Stage::Dequeued, Stage::Leased)
    }

    /// Wall time of the solve itself (`solving → artifacts`, falling
    /// back to the terminal stamp for jobs killed mid-solve).
    pub fn solve_seconds(&self) -> Option<f64> {
        let end = self
            .stage(Stage::Artifacts)
            .or_else(|| self.terminal())?
            .wall_seconds;
        Some(end - self.stage(Stage::Solving)?.wall_seconds)
    }

    /// End-to-end wall seconds (`received → terminal`).
    pub fn end_to_end_seconds(&self) -> Option<f64> {
        Some(self.terminal()?.wall_seconds - self.stage(Stage::Received)?.wall_seconds)
    }

    /// Modeled device seconds the job consumed (read off the terminal
    /// stamp).
    pub fn modeled_seconds(&self) -> Option<f64> {
        Some(self.terminal()?.modeled_seconds)
    }

    /// The per-stage wall durations: one `(stage, seconds)` entry per
    /// adjacent stamp pair, labeled by the stage the interval *ends*
    /// at. By construction they telescope: their sum is the
    /// end-to-end span, which [`RequestSpan::validate`] checks.
    pub fn stage_durations(&self) -> Vec<(Stage, f64)> {
        self.stages
            .windows(2)
            .map(|w| (w[1].stage, w[1].wall_seconds - w[0].wall_seconds))
            .collect()
    }

    /// Check the span invariants:
    ///
    /// * the first stamp is `received` at wall 0;
    /// * wall and modeled timestamps are monotone non-decreasing;
    /// * exactly one terminal stamp, and it is last;
    /// * the per-stage durations sum to the end-to-end span.
    pub fn validate(&self) -> Result<(), String> {
        let first = self.stages.first().ok_or("span has no stamps")?;
        if first.stage != Stage::Received || first.wall_seconds != 0.0 {
            return Err(format!(
                "span must start with received at wall 0, got {} at {}",
                first.stage.as_str(),
                first.wall_seconds
            ));
        }
        for w in self.stages.windows(2) {
            if w[1].wall_seconds < w[0].wall_seconds {
                return Err(format!(
                    "wall time regressed: {} at {} after {} at {}",
                    w[1].stage.as_str(),
                    w[1].wall_seconds,
                    w[0].stage.as_str(),
                    w[0].wall_seconds
                ));
            }
            if w[1].modeled_seconds < w[0].modeled_seconds {
                return Err(format!("modeled time regressed at {}", w[1].stage.as_str()));
            }
        }
        let terminals = self.stages.iter().filter(|s| s.stage.is_terminal()).count();
        if terminals != 1 {
            return Err(format!("span has {terminals} terminal stamps, want 1"));
        }
        let last = self.stages.last().expect("non-empty");
        if !last.stage.is_terminal() {
            return Err(format!(
                "span must end on a terminal stage, ends on {}",
                last.stage.as_str()
            ));
        }
        let sum: f64 = self.stage_durations().iter().map(|(_, d)| d).sum();
        let end_to_end = self.end_to_end_seconds().expect("terminal present");
        if (sum - end_to_end).abs() > 1e-9 {
            return Err(format!(
                "stage durations sum to {sum}, end-to-end is {end_to_end}"
            ));
        }
        Ok(())
    }

    /// The span as its `request.json` document.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("format", Json::from(REQUEST_SPAN_FORMAT))
            .set("job_id", Json::from(self.job_id.as_str()))
            .set("tenant", Json::from(self.tenant.as_str()));
        if !self.trace_id.is_empty() {
            o.set("trace_id", Json::from(self.trace_id.as_str()));
        }
        if !self.run_id.is_empty() {
            o.set("run_id", Json::from(self.run_id.as_str()));
        }
        o.set(
            "stages",
            Json::Arr(self.stages.iter().map(StageStamp::to_json).collect()),
        );
        o
    }

    /// Parse a `request.json` document (unknown members are ignored,
    /// as everywhere on the v1 surface).
    pub fn from_json(j: &Json) -> Result<RequestSpan, String> {
        match j.get("format").and_then(Json::as_str) {
            Some(f) if f == REQUEST_SPAN_FORMAT => {}
            Some(f) => return Err(format!("unsupported request span format {f:?}")),
            None => return Err("request span missing format tag".to_string()),
        }
        let field = |key: &str| {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("request span missing {key:?}"))
        };
        Ok(RequestSpan {
            job_id: field("job_id")?,
            tenant: field("tenant")?,
            trace_id: j
                .get("trace_id")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            run_id: j
                .get("run_id")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            stages: j
                .get("stages")
                .and_then(Json::as_array)
                .ok_or("request span missing stages")?
                .iter()
                .map(StageStamp::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }

    /// Parse from text.
    pub fn parse(text: &str) -> Result<RequestSpan, String> {
        let j = json::parse(text).map_err(|e| format!("request span: {e:?}"))?;
        RequestSpan::from_json(&j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_span() -> RequestSpan {
        let mut span = RequestSpan::new("job-00000001", "dispatch");
        span.trace_id = "0af7651916cd43dd8448eb211c80319c".into();
        span.run_id = "00ff00ff00ff00ff".into();
        span.stamp(Stage::Received, 0.0, 0.0);
        span.stamp(Stage::Admitted, 0.001, 0.0);
        span.stamp(Stage::Queued, 0.001, 0.0);
        span.stamp(Stage::Dequeued, 0.011, 0.0);
        span.stamp_lease(0.012, 1, 0);
        span.stamp(Stage::Solving, 0.013, 0.0);
        span.stamp(Stage::Artifacts, 0.063, 0.004);
        span.stamp(Stage::Done, 0.064, 0.004);
        span
    }

    #[test]
    fn a_full_lifecycle_validates_and_round_trips() {
        let span = full_span();
        span.validate().expect("full lifecycle is valid");
        let parsed = RequestSpan::parse(&span.to_json().to_string()).expect("round trip");
        assert_eq!(parsed, span);
        let lease = parsed.stage(Stage::Leased).unwrap();
        assert_eq!((lease.device, lease.stream), (Some(1), Some(0)));
    }

    #[test]
    fn stage_durations_telescope_to_the_end_to_end_span() {
        let span = full_span();
        let sum: f64 = span.stage_durations().iter().map(|(_, d)| d).sum();
        assert!((sum - span.end_to_end_seconds().unwrap()).abs() < 1e-12);
        assert!((span.queue_wait_seconds().unwrap() - 0.010).abs() < 1e-12);
        assert!((span.lease_wait_seconds().unwrap() - 0.001).abs() < 1e-12);
        assert!((span.solve_seconds().unwrap() - 0.050).abs() < 1e-12);
        assert_eq!(span.modeled_seconds(), Some(0.004));
    }

    #[test]
    fn a_rejection_is_a_two_stamp_terminal_span() {
        let mut span = RequestSpan::new("job-00000002", "burst");
        span.stamp(Stage::Received, 0.0, 0.0);
        span.stamp(Stage::Rejected, 0.0005, 0.0);
        span.validate().expect("rejection span is valid");
        assert_eq!(span.terminal().unwrap().stage, Stage::Rejected);
        assert_eq!(span.queue_wait_seconds(), None);
    }

    #[test]
    fn validation_rejects_broken_timelines() {
        // Wall regression.
        let mut span = RequestSpan::new("j", "t");
        span.stamp(Stage::Received, 0.0, 0.0);
        span.stamp(Stage::Admitted, 0.5, 0.0);
        span.stamp(Stage::Done, 0.2, 0.0);
        assert!(span.validate().unwrap_err().contains("regressed"));

        // Missing terminal.
        let mut span = RequestSpan::new("j", "t");
        span.stamp(Stage::Received, 0.0, 0.0);
        span.stamp(Stage::Solving, 0.1, 0.0);
        assert!(span.validate().is_err());

        // Does not start at received.
        let mut span = RequestSpan::new("j", "t");
        span.stamp(Stage::Queued, 0.0, 0.0);
        span.stamp(Stage::Done, 0.1, 0.0);
        assert!(span.validate().unwrap_err().contains("received"));

        // Empty.
        assert!(RequestSpan::new("j", "t").validate().is_err());
    }

    #[test]
    fn terminal_stage_maps_from_job_state() {
        assert_eq!(Stage::terminal_for(JobState::Done), Some(Stage::Done));
        assert_eq!(Stage::terminal_for(JobState::Failed), Some(Stage::Failed));
        assert_eq!(
            Stage::terminal_for(JobState::Cancelled),
            Some(Stage::Cancelled)
        );
        assert_eq!(Stage::terminal_for(JobState::Expired), Some(Stage::Expired));
        assert_eq!(Stage::terminal_for(JobState::Queued), None);
        assert_eq!(Stage::terminal_for(JobState::Running), None);
    }

    #[test]
    fn readers_ignore_unknown_members() {
        let mut doc = full_span().to_json();
        doc.set("coming_in_v2", Json::from("ignored"));
        let parsed = RequestSpan::from_json(&doc).expect("future documents parse");
        assert_eq!(parsed, full_span());
        // Wrong format tag is refused (`Json::set` appends, so build a
        // fresh document carrying the wrong tag).
        let mut doc = Json::obj();
        doc.set("format", Json::from("tsp-request-span/v9"));
        assert!(RequestSpan::from_json(&doc).is_err());
    }

    #[test]
    fn stage_names_round_trip() {
        for stage in [
            Stage::Received,
            Stage::Admitted,
            Stage::Rejected,
            Stage::Queued,
            Stage::Dequeued,
            Stage::Leased,
            Stage::Solving,
            Stage::Artifacts,
            Stage::Done,
            Stage::Failed,
            Stage::Cancelled,
            Stage::Expired,
        ] {
            assert_eq!(Stage::parse(stage.as_str()), Some(stage));
        }
        assert_eq!(Stage::parse("warp"), None);
    }
}
