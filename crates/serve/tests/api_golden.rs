//! Golden-file round-trips for every `v1` wire type.
//!
//! Each golden file under `tests/golden/` is the canonical serialized
//! form of a representative value. The test asserts (a) serializing
//! the value reproduces the file byte-for-byte, and (b) parsing the
//! file reproduces the value — so any accidental wire change (rename,
//! re-type, reorder) fails loudly. Regenerate intentionally with
//! `REGEN_GOLDEN=1 cargo test -p tsp-serve --test api_golden`.

use std::path::PathBuf;
use tsp_serve::api::{
    AlertsSnapshot, ApiError, ErrorCode, JobState, JobStatus, OpsAlert, OpsJob, OpsLane,
    OpsLatency, OpsSnapshot, SolveRequest, SolveResponse,
};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, serialized: &str) {
    let path = golden_path(name);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, serialized).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        serialized, golden,
        "{name} drifted from its golden file; if intentional, REGEN_GOLDEN=1"
    );
}

fn sample_tsplib_request() -> SolveRequest {
    SolveRequest::tsplib(
        "NAME: tri\nTYPE: TSP\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\n2 3 0\n3 0 4\nEOF\n",
    )
    .with_tenant("dispatch")
    .with_restarts(2)
    .with_ils_iterations(5)
    .with_seed(42)
    .with_deadline_ms(30_000)
}

fn sample_coords_request() -> SolveRequest {
    SolveRequest::coords(
        "grid4",
        vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)],
    )
    .with_seed(7)
}

fn sample_response() -> SolveResponse {
    SolveResponse::queued("job-0000002a")
}

fn sample_status() -> JobStatus {
    let mut status = JobStatus::queued("job-0000002a", "dispatch").with_state(JobState::Done);
    status.run_id = Some("a1b2c3d4e5f60718".to_string());
    status.tour = Some(vec![0, 2, 1, 3]);
    status.length = Some(1234);
    status.initial_length = Some(2345);
    status.chains = Some(2);
    status.modeled_seconds = Some(0.0625);
    status
}

fn sample_error() -> ApiError {
    ApiError::new(
        ErrorCode::QuotaExceeded,
        "tenant \"dispatch\" has 16 live jobs (quota 16)",
    )
    .with_retry_after_ms(1500)
}

#[test]
fn golden_solve_request_tsplib() {
    let value = sample_tsplib_request();
    let text = value.to_json().to_string();
    check("solve_request_tsplib.json", &text);
    assert_eq!(SolveRequest::parse(&text).unwrap(), value);
}

#[test]
fn golden_solve_request_coords() {
    let value = sample_coords_request();
    let text = value.to_json().to_string();
    check("solve_request_coords.json", &text);
    assert_eq!(SolveRequest::parse(&text).unwrap(), value);
}

#[test]
fn golden_solve_response() {
    let value = sample_response();
    let text = value.to_json().to_string();
    check("solve_response.json", &text);
    assert_eq!(SolveResponse::parse(&text).unwrap(), value);
}

#[test]
fn golden_job_status_done() {
    let value = sample_status();
    let text = value.to_json().to_string();
    check("job_status_done.json", &text);
    assert_eq!(JobStatus::parse(&text).unwrap(), value);
}

#[test]
fn golden_api_error_quota() {
    let value = sample_error();
    let text = value.to_json().to_string();
    check("api_error_quota.json", &text);
    let doc = tsp_trace::json::parse(&text).unwrap();
    assert_eq!(ApiError::from_json(&doc).unwrap(), value);
}

fn sample_ops_snapshot() -> OpsSnapshot {
    let mut snap = OpsSnapshot::new(4);
    snap.queue_depth = 2;
    snap.slot_occupancy = 3;
    let mut running = OpsJob::new("job-00000001", "dispatch", JobState::Running);
    running.trace_id = Some("4bf92f3577b34da6a3ce929d0e0e4736".to_string());
    running.device = Some(1);
    running.stream = Some(0);
    snap.jobs.push(running);
    let mut done = OpsJob::new("job-00000002", "batch", JobState::Done);
    done.end_to_end_seconds = Some(0.125);
    snap.jobs.push(done);
    snap.latency.push(OpsLatency::new(
        "end_to_end",
        50,
        vec![(0.5, 0.03125), (0.95, 0.0625), (0.99, 0.09375)],
    ));
    snap.rejections.push(("queue_full".to_string(), 3));
    snap.rejections.push(("quota_exceeded".to_string(), 7));
    let mut stuck = OpsLane::new(0);
    stuck.busy = true;
    stuck.job_id = Some("job-00000001".to_string());
    stuck.stall_seconds = 4.25;
    snap.lane_health.push(stuck);
    snap.lane_health.push(OpsLane::new(1));
    snap.alerts_firing = 1;
    snap
}

fn sample_alerts_snapshot() -> AlertsSnapshot {
    let mut snap = AlertsSnapshot::new(5);
    let mut stalled = OpsAlert::new("LaneStalled", "critical", "firing");
    stalled.labels.push(("lane".to_string(), "0".to_string()));
    stalled.since_seconds = 12.5;
    stalled.value = 4.25;
    snap.alerts.push(stalled);
    let mut queue = OpsAlert::new("QueueAgeSlo", "warning", "pending");
    queue.since_seconds = 14.0;
    queue.value = 31.5;
    snap.alerts.push(queue);
    snap.firing = 1;
    snap.transitions_total = 3;
    snap.evaluations_total = 56;
    snap
}

#[test]
fn golden_ops_snapshot() {
    let value = sample_ops_snapshot();
    let text = value.to_json().to_string();
    check("ops_snapshot.json", &text);
    assert_eq!(OpsSnapshot::parse(&text).unwrap(), value);
}

#[test]
fn golden_alerts_snapshot() {
    let value = sample_alerts_snapshot();
    let text = value.to_json().to_string();
    check("alerts_snapshot.json", &text);
    assert_eq!(AlertsSnapshot::parse(&text).unwrap(), value);
}

#[test]
fn v1_readers_tolerate_documents_from_the_future() {
    // Adding members is the only permitted v1 evolution; a reader
    // must take a superset document in stride.
    let text = std::fs::read_to_string(golden_path("job_status_done.json")).unwrap();
    let mut doc = tsp_trace::json::parse(&text).unwrap();
    doc.set("added_in_v1_7", tsp_trace::json::Json::from(true));
    let parsed = JobStatus::from_json(&doc).unwrap();
    assert_eq!(parsed, sample_status());
}
