//! Request-scoped observability acceptance: span inertness, span
//! invariants, trace propagation, and the ops snapshot — over real
//! HTTP against a live service.
//!
//! The load-bearing guarantee is **bit-inertness**: running the exact
//! same jobs with request spans enabled (plus artifact persistence)
//! and disabled must produce byte-identical tours, lengths, run ids
//! and modeled seconds. Observability is a tap on the pipeline, never
//! a hand on the wheel.

use std::time::Duration;
use tsp::prelude::*;
use tsp_serve::api::{JobState, JobStatus, OpsSnapshot, SolveRequest, SolveResponse};
use tsp_serve::{RequestSpan, ServeServer, ServiceConfig, SolveService, Stage};
use tsp_telemetry::{
    http_request, http_request_with_headers, parse_jsonl, TraceContext, TRACEPARENT,
};

fn start_server(cfg: ServiceConfig) -> ServeServer {
    let service = SolveService::start(cfg, Telemetry::attached(), Profiler::attached()).unwrap();
    ServeServer::spawn("127.0.0.1:0", service).unwrap()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tsp-span-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn job_request(i: usize) -> SolveRequest {
    let inst = tsp::tsplib::generate(
        &format!("span-{i}"),
        72,
        tsp::tsplib::Style::Clustered { clusters: 4 },
        400 + i as u64,
    );
    SolveRequest::tsplib(tsp::tsplib::writer::write(&inst))
        .with_tenant(format!("tenant-{}", i % 2))
        .with_ils_iterations(2 + (i % 2) as u64)
        .with_seed(i as u64)
}

fn await_terminal(server: &ServeServer, job_id: &str) -> JobStatus {
    for _ in 0..600 {
        let (status, _, body) =
            http_request(server.addr(), "GET", &format!("/v1/jobs/{job_id}"), "", "").unwrap();
        assert_eq!(status, 200, "{body}");
        let job = JobStatus::parse(&body).unwrap();
        if job.state.is_terminal() {
            return job;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("job {job_id} never reached a terminal state");
}

/// Submit `n` jobs sequentially and return their terminal statuses.
fn run_batch(server: &ServeServer, n: usize) -> Vec<JobStatus> {
    (0..n)
        .map(|i| {
            let body = job_request(i).to_json().to_string();
            let (status, _, body) = http_request(
                server.addr(),
                "POST",
                "/v1/solve",
                "application/json",
                &body,
            )
            .unwrap();
            assert_eq!(status, 202, "{body}");
            let resp = SolveResponse::parse(&body).unwrap();
            let job = await_terminal(server, &resp.job_id);
            assert_eq!(job.state, JobState::Done, "{:?}", job.error);
            job
        })
        .collect()
}

/// The tentpole differential: spans (and their artifact persistence)
/// enabled vs disabled, same jobs, bitwise-identical solve results.
#[test]
fn request_spans_are_bit_inert() {
    let dir = temp_dir("inert");
    let with_spans = start_server(
        ServiceConfig::default()
            .with_artifacts_dir(&dir)
            .with_request_spans(true),
    );
    let without = start_server(ServiceConfig::default().with_request_spans(false));

    let observed = run_batch(&with_spans, 4);
    let plain = run_batch(&without, 4);
    for (a, b) in observed.iter().zip(&plain) {
        assert_eq!(a.tour, b.tour, "tours must be byte-identical");
        assert_eq!(a.length, b.length);
        assert_eq!(a.initial_length, b.initial_length);
        assert_eq!(a.run_id, b.run_id, "derived run ids must agree");
        assert_eq!(
            a.modeled_seconds, b.modeled_seconds,
            "modeled clocks must agree to the bit"
        );
    }
    // The observed run actually produced spans; the plain one must not
    // have (no artifacts dir, spans off). The watchdog also touches
    // `alerts.jsonl` at boot — count only the per-job directories.
    let span_count = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| e.as_ref().unwrap().file_type().unwrap().is_dir())
        .count();
    assert_eq!(span_count, 4, "one artifact dir per observed job");

    with_spans.shutdown();
    without.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every persisted `request.json` satisfies the span invariants:
/// starts at `received` with wall 0, stamps are monotone on both
/// clocks, exactly one terminal stage, and the stage durations sum to
/// the end-to-end wall time.
#[test]
fn persisted_spans_satisfy_the_span_invariants() {
    let dir = temp_dir("invariants");
    let server = start_server(ServiceConfig::default().with_artifacts_dir(&dir));
    let jobs = run_batch(&server, 3);

    for job in &jobs {
        let path = dir.join(job.job_id.as_str()).join("request.json");
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let span = RequestSpan::parse(&text).unwrap();
        span.validate().unwrap();
        assert_eq!(span.job_id, job.job_id);
        assert_eq!(span.run_id, job.run_id.clone().unwrap());
        assert_eq!(span.terminal().map(|s| s.stage), Some(Stage::Done));
        assert_eq!(span.modeled_seconds(), job.modeled_seconds);
        // The lease stamp names the lane the job actually ran on.
        let leased = span.stage(Stage::Leased).unwrap();
        assert!(leased.device.is_some() && leased.stream.is_some());
        // Stage waits are all present and non-negative.
        for wait in [
            span.queue_wait_seconds(),
            span.lease_wait_seconds(),
            span.solve_seconds(),
            span.end_to_end_seconds(),
        ] {
            assert!(wait.unwrap() >= 0.0);
        }
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client `traceparent` flows end to end: echoed in the response
/// header and body, stamped on every journal line, and tagged onto
/// the job's Chrome trace and request span.
#[test]
fn client_traceparent_reaches_every_artifact() {
    let dir = temp_dir("traceparent");
    let server = start_server(ServiceConfig::default().with_artifacts_dir(&dir));

    let ctx = TraceContext::generate(&[0xfeed, 0xbeef]);
    let body = job_request(0).to_json().to_string();
    let (status, head, body) = http_request_with_headers(
        server.addr(),
        "POST",
        "/v1/solve",
        "application/json",
        &body,
        &[(TRACEPARENT, &ctx.to_header())],
    )
    .unwrap();
    assert_eq!(status, 202, "{body}");
    // Echoed in the response header (as a traceparent) and body.
    let echoed = head
        .lines()
        .find_map(|l| l.strip_prefix("traceparent: "))
        .expect("traceparent response header");
    assert!(echoed.contains(&ctx.trace_id), "{echoed}");
    let resp = SolveResponse::parse(&body).unwrap();
    assert_eq!(resp.trace_id.as_deref(), Some(ctx.trace_id.as_str()));

    let job = await_terminal(&server, &resp.job_id);
    assert_eq!(job.state, JobState::Done);
    assert_eq!(job.trace_id.as_deref(), Some(ctx.trace_id.as_str()));

    let job_dir = dir.join(resp.job_id.as_str());
    // Every journal line carries the trace id.
    let journal = std::fs::read_to_string(job_dir.join("journal.jsonl")).unwrap();
    let records = parse_jsonl(&journal).unwrap();
    assert!(!records.is_empty());
    assert!(records.iter().all(|r| r.trace_id == ctx.trace_id));
    // The Chrome trace is tagged with it.
    let trace = std::fs::read_to_string(job_dir.join("trace.json")).unwrap();
    assert!(trace.contains(&ctx.trace_id));
    // And the span carries it.
    let span = RequestSpan::parse(&std::fs::read_to_string(job_dir.join("request.json")).unwrap())
        .unwrap();
    assert_eq!(span.trace_id, ctx.trace_id);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A malformed `traceparent` is ignored: the service mints its own
/// well-formed context instead of failing or echoing garbage.
#[test]
fn malformed_traceparent_gets_a_generated_context() {
    let server = start_server(ServiceConfig::default());
    let body = job_request(1).to_json().to_string();
    let (status, _, body) = http_request_with_headers(
        server.addr(),
        "POST",
        "/v1/solve",
        "application/json",
        &body,
        &[(TRACEPARENT, "99-not-a-trace-zz")],
    )
    .unwrap();
    assert_eq!(status, 202, "{body}");
    let resp = SolveResponse::parse(&body).unwrap();
    let trace_id = resp.trace_id.expect("a generated trace id");
    assert_eq!(trace_id.len(), 32);
    assert!(trace_id.chars().all(|c| c.is_ascii_hexdigit()));
    assert_ne!(trace_id, "0".repeat(32));
    await_terminal(&server, &resp.job_id);
    server.shutdown();
}

/// `GET /v1/ops` snapshots every job with its lane, trace id and
/// end-to-end latency, plus the rolling stage estimators.
#[test]
fn ops_endpoint_snapshots_jobs_and_latency() {
    let dir = temp_dir("ops");
    let server = start_server(ServiceConfig::default().with_artifacts_dir(&dir));
    let jobs = run_batch(&server, 3);

    let (status, _, body) = http_request(server.addr(), "GET", "/v1/ops", "", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let ops = OpsSnapshot::parse(&body).unwrap();
    assert_eq!(ops.queue_depth, 0);
    assert_eq!(ops.slot_occupancy, 0);
    assert_eq!(ops.jobs.len(), jobs.len());
    for (row, job) in ops.jobs.iter().zip(&jobs) {
        assert_eq!(row.job_id, job.job_id);
        assert_eq!(row.state, JobState::Done);
        assert!(row.trace_id.is_some());
        assert!(row.device.is_some() && row.stream.is_some());
        assert!(row.end_to_end_seconds.unwrap() > 0.0);
    }
    // All four stage estimators saw all three jobs.
    assert_eq!(ops.latency.len(), 4);
    for stage in &ops.latency {
        assert_eq!(stage.count, jobs.len() as u64, "{}", stage.stage);
        assert_eq!(stage.quantiles.len(), 3);
    }
    assert!(ops.rejections.is_empty());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Rejected submissions show up as typed rejection counters in the
/// ops snapshot (and never as jobs).
#[test]
fn rejections_are_counted_by_error_code() {
    let server = start_server(ServiceConfig::default());
    let (status, _, body) = http_request(
        server.addr(),
        "POST",
        "/v1/solve",
        "application/json",
        "{\"api_version\":1}",
    )
    .unwrap();
    assert_eq!(status, 400, "{body}");
    let (_, _, body) = http_request(server.addr(), "GET", "/v1/ops", "", "").unwrap();
    let ops = OpsSnapshot::parse(&body).unwrap();
    assert!(ops.jobs.is_empty());
    assert_eq!(
        ops.rejections,
        vec![("bad_request".to_string(), 1)],
        "the parse failure is counted under its typed code"
    );
    server.shutdown();
}
