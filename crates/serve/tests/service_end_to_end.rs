//! End-to-end acceptance for the solve service, over real HTTP.
//!
//! * `POST /v1/solve` → `GET /v1/jobs/{id}` round-trips a TSPLIB and
//!   a JSON-coords instance with a tour **bit-identical** to the same
//!   request run through `Solver::builder()` directly.
//! * Quota-exceeded and past-deadline submissions get typed 429/503
//!   `ApiError`s and never reach a device lane.
//! * The ledger records exactly one allocation per device (the arena)
//!   no matter how many jobs ran, and balances at shutdown.
//! * A job killed mid-solve by its deadline still leaves a journal
//!   file that parses line-for-line (flush-on-drop writers).

use std::sync::Arc;
use std::time::Duration;
use tsp::prelude::*;
use tsp_serve::api::{ErrorCode, FromRequest, JobState, JobStatus, SolveRequest, SolveResponse};
use tsp_serve::{ServeServer, ServiceConfig, SolveService};
use tsp_telemetry::http_request;

fn start_server(cfg: ServiceConfig) -> ServeServer {
    let service = SolveService::start(cfg, Telemetry::attached(), Profiler::attached()).unwrap();
    ServeServer::spawn("127.0.0.1:0", service).unwrap()
}

fn post_solve(server: &ServeServer, req: &SolveRequest) -> (u16, String) {
    let body = req.to_json().to_string();
    let (status, _, body) = http_request(
        server.addr(),
        "POST",
        "/v1/solve",
        "application/json",
        &body,
    )
    .unwrap();
    (status, body)
}

fn await_terminal(server: &ServeServer, job_id: &str) -> JobStatus {
    for _ in 0..600 {
        let (status, _, body) =
            http_request(server.addr(), "GET", &format!("/v1/jobs/{job_id}"), "", "").unwrap();
        assert_eq!(status, 200, "{body}");
        let job = JobStatus::parse(&body).unwrap();
        if job.state.is_terminal() {
            return job;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("job {job_id} never reached a terminal state");
}

fn round_trip(server: &ServeServer, req: &SolveRequest) -> JobStatus {
    let (status, body) = post_solve(server, req);
    assert_eq!(status, 202, "{body}");
    let resp = SolveResponse::parse(&body).unwrap();
    assert_eq!(resp.state, JobState::Queued);
    let job = await_terminal(server, &resp.job_id);
    assert_eq!(job.state, JobState::Done, "{:?}", job.error);
    job
}

#[test]
fn alerts_route_dispatch_is_method_and_path_exact() {
    let server = start_server(ServiceConfig::default().with_devices(1).with_streams(1));

    // GET answers the typed census (zero rules firing on a healthy
    // idle service).
    let (status, _, body) = http_request(server.addr(), "GET", "/v1/alerts", "", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let snap = tsp_serve::api::AlertsSnapshot::parse(&body).unwrap();
    assert_eq!(snap.firing, 0);
    assert!(snap.rules >= 5, "built-in rules missing: {}", snap.rules);

    // Wrong method on a known path is 405, not 404.
    let (status, _, _) = http_request(server.addr(), "POST", "/v1/alerts", "", "").unwrap();
    assert_eq!(status, 405);
    let (status, _, _) = http_request(server.addr(), "DELETE", "/v1/alerts", "", "").unwrap();
    assert_eq!(status, 405);

    // Unknown subpaths stay 404.
    let (status, _, _) = http_request(server.addr(), "GET", "/v1/alerts/0", "", "").unwrap();
    assert_eq!(status, 404);

    // /v1/ops carries the lane-health rows for the same lanes.
    let (status, _, body) = http_request(server.addr(), "GET", "/v1/ops", "", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let ops = tsp_serve::api::OpsSnapshot::parse(&body).unwrap();
    assert_eq!(ops.lane_health.len() as u64, ops.lanes);
    assert!(ops.lane_health.iter().all(|l| !l.busy));

    let (_service, _reports) = server.shutdown();
}

#[test]
fn served_solves_are_bit_identical_to_direct_facade_runs() {
    let server = start_server(ServiceConfig::default());

    // TSPLIB payload, via the tsplib writer so the text is canonical.
    let inst = tsp::tsplib::generate(
        "served",
        96,
        tsp::tsplib::Style::Clustered { clusters: 6 },
        9,
    );
    let tsplib_req = SolveRequest::tsplib(tsp::tsplib::writer::write(&inst))
        .with_ils_iterations(4)
        .with_seed(23);
    let served = round_trip(&server, &tsplib_req);

    let direct = SolverBuilder::from_request(&tsplib_req)
        .unwrap()
        .build()
        .run(&tsplib_req.instance().unwrap())
        .unwrap();
    assert_eq!(served.length, Some(direct.length));
    assert_eq!(served.tour.as_deref(), Some(direct.tour.as_slice()));
    assert_eq!(served.run_id.as_deref(), Some(direct.run_id.as_str()));
    assert_eq!(served.modeled_seconds, Some(direct.modeled_seconds()));

    // JSON-coords payload, plain descent.
    let coords: Vec<(f64, f64)> = inst
        .points()
        .iter()
        .map(|p| (p.x as f64, p.y as f64))
        .collect();
    let coords_req = SolveRequest::coords("served-coords", coords);
    let served = round_trip(&server, &coords_req);
    let direct = SolverBuilder::from_request(&coords_req)
        .unwrap()
        .build()
        .run(&coords_req.instance().unwrap())
        .unwrap();
    assert_eq!(served.length, Some(direct.length));
    assert_eq!(served.tour.as_deref(), Some(direct.tour.as_slice()));

    let (_service, _reports) = server.shutdown();
}

#[test]
fn rejections_are_typed_and_never_touch_a_device_lane() {
    let server = start_server(
        ServiceConfig::default()
            .with_devices(1)
            .with_streams(1)
            .with_per_tenant_quota(1)
            .with_queue_capacity(1),
    );
    let service = server.service().clone();

    // Park the single lane on a long job.
    let slow = SolveRequest::coords(
        "slow",
        (0..64)
            .map(|i| ((i % 8) as f64, (i / 8) as f64 + 0.1 * i as f64))
            .collect(),
    )
    .with_tenant("hog")
    .with_ils_iterations(500_000);
    let (status, body) = post_solve(&server, &slow);
    assert_eq!(status, 202, "{body}");
    let slow_id = SolveResponse::parse(&body).unwrap().job_id;
    // Wait until the worker has popped the ticket (job Running) so the
    // queue-capacity probes below see a deterministic depth of zero.
    for _ in 0..600 {
        let (_, _, body) =
            http_request(server.addr(), "GET", &format!("/v1/jobs/{slow_id}"), "", "").unwrap();
        if JobStatus::parse(&body).unwrap().state == JobState::Running {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Same tenant again: over quota → 429, typed, Retry-After.
    let (status, body) = post_solve(&server, &slow);
    assert_eq!(status, 429, "{body}");
    let err = tsp_serve::ApiError::from_json(&tsp_trace::json::parse(&body).unwrap()).unwrap();
    assert_eq!(err.code, ErrorCode::QuotaExceeded);
    assert!(err.retry_after_ms.is_some());

    // Fill the queue from another tenant, then overflow it → 503.
    let quick = SolveRequest::coords("q", vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
    let (status, _) = post_solve(&server, &quick.clone().with_tenant("t2"));
    assert_eq!(status, 202);
    let (status, body) = post_solve(&server, &quick.clone().with_tenant("t3"));
    assert_eq!(status, 503, "{body}");
    let err = tsp_serve::ApiError::from_json(&tsp_trace::json::parse(&body).unwrap()).unwrap();
    assert_eq!(err.code, ErrorCode::QueueFull);

    // Already-past deadline → 503 DeadlineExceeded, no job minted.
    let (status, body) = post_solve(
        &server,
        &quick.clone().with_tenant("t4").with_deadline_ms(0),
    );
    assert_eq!(status, 503, "{body}");
    let err = tsp_serve::ApiError::from_json(&tsp_trace::json::parse(&body).unwrap()).unwrap();
    assert_eq!(err.code, ErrorCode::DeadlineExceeded);

    // Malformed body → 400 typed.
    let (status, _, body) = http_request(
        server.addr(),
        "POST",
        "/v1/solve",
        "application/json",
        r#"{"tsplib":"x","coords":[[0,0]]}"#,
    )
    .unwrap();
    assert_eq!(status, 400, "{body}");

    // Unknown job → 404.
    let (status, _, _) = http_request(server.addr(), "GET", "/v1/jobs/nope", "", "").unwrap();
    assert_eq!(status, 404);

    // Cancel the hog so shutdown doesn't wait 500k iterations.
    let (status, _, body) = http_request(
        server.addr(),
        "DELETE",
        &format!("/v1/jobs/{slow_id}"),
        "",
        "",
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let cancelled = await_terminal(&server, &slow_id);
    assert_eq!(cancelled.state, JobState::Cancelled);

    let (_svc, _) = server.shutdown();
    // The rejected submissions must not have occupied quota slots.
    assert_eq!(service.queue_depth(), 0);
}

#[test]
fn ledger_shows_only_the_arena_allocations_and_balances() {
    let telemetry = Telemetry::attached();
    let prof = Profiler::attached();
    let service = SolveService::start(
        ServiceConfig::default().with_devices(2).with_streams(2),
        telemetry,
        prof.clone(),
    )
    .unwrap();

    let req = SolveRequest::coords(
        "ledger",
        (0..48)
            .map(|i| ((i % 7) as f64 * 3.0, (i / 7) as f64 * 2.0 + 0.01 * i as f64))
            .collect(),
    )
    .with_ils_iterations(2);
    let ids: Vec<String> = (0..8)
        .map(|i| service.submit(req.clone().with_seed(i)).unwrap().job_id)
        .collect();
    for id in &ids {
        for _ in 0..600 {
            if service.status(id).unwrap().state.is_terminal() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(service.status(id).unwrap().state, JobState::Done);
    }

    // Warm pool, jobs in flight or done: exactly one alloc per device
    // (the arena install), zero per-request allocations.
    let mid = prof.memory_report();
    assert_eq!(mid.devices.len(), 2);
    for device in &mid.devices {
        assert_eq!(device.allocs, 1, "only the arena may allocate");
        assert_eq!(device.frees, 0);
    }

    service.shutdown();
    let end = prof.memory_report();
    assert!(end.balanced(), "arena teardown balances the ledger");
    for device in &end.devices {
        assert_eq!((device.allocs, device.frees), (1, 1));
    }
}

#[test]
fn deadline_killed_job_leaves_a_parseable_journal() {
    let dir = std::env::temp_dir().join(format!(
        "tsp-serve-deadline-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let service = SolveService::start(
        ServiceConfig::default()
            .with_devices(1)
            .with_streams(1)
            .with_artifacts_dir(&dir),
        Telemetry::attached(),
        Profiler::attached(),
    )
    .unwrap();

    // A deadline far shorter than the ILS budget: the token trips
    // mid-solve and the job lands in Expired with a typed error.
    let req = SolveRequest::coords(
        "deadline",
        (0..80)
            .map(|i| ((i % 9) as f64, (i / 9) as f64 + 0.05 * i as f64))
            .collect(),
    )
    .with_ils_iterations(100_000_000)
    .with_deadline_ms(150);
    let job_id = service.submit(req).unwrap().job_id;
    let status = loop {
        let status = service.status(&job_id).unwrap();
        if status.state.is_terminal() {
            break status;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(status.state, JobState::Expired);
    let err = status.error.expect("expired jobs carry a typed error");
    assert_eq!(err.code, ErrorCode::DeadlineExceeded);

    // The journal the killed job left behind parses line-for-line.
    let journal_path = dir.join(&job_id).join("journal.jsonl");
    let text = std::fs::read_to_string(&journal_path).unwrap();
    assert!(text.ends_with('\n'), "no truncated trailing line");
    let records = tsp_telemetry::parse_jsonl(&text).unwrap();
    assert!(!records.is_empty(), "the solve journaled before the kill");
    // And the manifest next to it indexes the artifact set.
    let manifest = tsp_prof::Manifest::parse(
        &std::fs::read_to_string(dir.join(&job_id).join("manifest.json")).unwrap(),
    )
    .unwrap();
    assert_eq!(manifest.path_of("journal"), Some("journal.jsonl"));

    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancelling_a_queued_job_is_immediate_and_idempotent() {
    let service = Arc::new(
        SolveService::start(
            ServiceConfig::default().with_devices(1).with_streams(1),
            Telemetry::detached(),
            Profiler::detached(),
        )
        .unwrap(),
    );
    // Occupy the lane, then queue a second job and cancel it while
    // it is still queued.
    let slow = SolveRequest::coords(
        "slow",
        (0..64)
            .map(|i| ((i % 8) as f64, (i / 8) as f64 + 0.1 * i as f64))
            .collect(),
    )
    .with_ils_iterations(300_000);
    let slow_id = service.submit(slow).unwrap().job_id;
    let quick = SolveRequest::coords("quick", vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
    let queued_id = service.submit(quick).unwrap().job_id;

    let cancelled = service.cancel(&queued_id).unwrap();
    assert_eq!(cancelled.state, JobState::Cancelled);
    // Idempotent on terminal jobs.
    assert_eq!(
        service.cancel(&queued_id).unwrap().state,
        JobState::Cancelled
    );

    service.cancel(&slow_id).unwrap();
    service.shutdown();
    assert_eq!(service.status(&slow_id).unwrap().state, JobState::Cancelled);
    assert_eq!(
        service.status(&queued_id).unwrap().state,
        JobState::Cancelled
    );
}
