//! Deterministic-interleaving stress for the slot index allocator:
//! seeded pseudo-random acquire/release schedules across real threads,
//! with external double-lease detection and conservation checks — the
//! loom-style guarantees the admission path depends on (no slot handed
//! to two jobs, no slot lost, occupancy gauge equal to live leases).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tsp_prof::Profiler;
use tsp_serve::pool::{SlotIndexAllocator, SlotPool};
use tsp_telemetry::Telemetry;

/// Each thread runs a seeded schedule of acquire → hold → release.
/// `owned[slot]` is flipped with a compare-exchange on acquisition:
/// if a second thread ever holds the same slot concurrently, the
/// exchange fails and the test dies — independent of the allocator's
/// own bookkeeping.
#[test]
fn randomized_schedules_never_double_lease_or_lose_slots() {
    const SLOTS: u32 = 4;
    const THREADS: usize = 8;
    const STEPS: usize = 400;

    for seed in 0..4u64 {
        let alloc = Arc::new(SlotIndexAllocator::new(SLOTS));
        let owned: Arc<Vec<AtomicBool>> =
            Arc::new((0..SLOTS).map(|_| AtomicBool::new(false)).collect());

        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let alloc = alloc.clone();
                let owned = owned.clone();
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(seed * 1000 + t as u64);
                    for _ in 0..STEPS {
                        let slot = if rng.gen_bool(0.5) {
                            alloc.acquire()
                        } else {
                            match alloc.try_acquire() {
                                Some(slot) => slot,
                                None => continue,
                            }
                        };
                        // External double-lease detector.
                        assert!(
                            owned[slot as usize]
                                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                                .is_ok(),
                            "slot {slot} leased to two threads at once"
                        );
                        // Hold briefly with a different interleaving each time.
                        for _ in 0..rng.gen_range(0..50u32) {
                            std::hint::spin_loop();
                        }
                        owned[slot as usize].store(false, Ordering::SeqCst);
                        alloc.release(slot).expect("release of a held lease");
                    }
                });
            }
        });

        // Conservation: every slot came home.
        assert_eq!(alloc.leased(), 0, "seed {seed}: leases leaked");
        assert_eq!(alloc.capacity(), SLOTS as usize);
        let mut drained: Vec<u32> = (0..SLOTS).map(|_| alloc.try_acquire().unwrap()).collect();
        assert_eq!(alloc.try_acquire(), None, "seed {seed}: extra slot minted");
        drained.sort_unstable();
        assert_eq!(drained, (0..SLOTS).collect::<Vec<_>>());
        for slot in drained {
            alloc.release(slot).unwrap();
        }
    }
}

/// Same schedule shape through the full [`SlotPool`], checking that
/// the occupancy gauge equals live leases at every quiescent point.
#[test]
fn occupancy_gauge_matches_live_slots_after_randomized_traffic() {
    let telemetry = Telemetry::attached();
    let prof = Profiler::detached();
    let pool = Arc::new(
        SlotPool::new(
            gpu_sim::spec::gtx_680_cuda(),
            1,
            4,
            1 << 20,
            &telemetry,
            &prof,
        )
        .unwrap(),
    );

    std::thread::scope(|scope| {
        for t in 0..6 {
            let pool = pool.clone();
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xC0FFEE + t);
                for _ in 0..200 {
                    let lease = pool.acquire();
                    assert!(lease.slot() < 4);
                    for _ in 0..rng.gen_range(0..40u32) {
                        std::hint::spin_loop();
                    }
                    drop(lease);
                }
            });
        }
    });

    assert_eq!(pool.occupancy(), 0);
    let gauge = telemetry
        .registry()
        .unwrap()
        .gauge_value("tsp_serve_slot_occupancy")
        .unwrap();
    assert_eq!(
        gauge, 0.0,
        "gauge must agree with live leases at quiescence"
    );

    // And mid-flight: with leases held, gauge == held count.
    let a = pool.acquire();
    let b = pool.acquire();
    assert_eq!(pool.occupancy(), 2);
    assert_eq!(
        telemetry
            .registry()
            .unwrap()
            .gauge_value("tsp_serve_slot_occupancy"),
        Some(2.0)
    );
    drop(a);
    drop(b);
    assert_eq!(
        telemetry
            .registry()
            .unwrap()
            .gauge_value("tsp_serve_slot_occupancy"),
        Some(0.0)
    );
}
