//! Declarative alert rules evaluated deterministically over a
//! [`Registry`] — the decision layer on top of the metrics the rest
//! of this crate collects.
//!
//! Three rule kinds cover the fleet-health questions a serving stack
//! asks:
//!
//! * **Threshold** — compare every sample of a family against a fixed
//!   bound (`tsp_serve_lane_stall_seconds > 0.5`). One alert instance
//!   per matching label set, so a single rule watches every lane or
//!   tenant at once.
//! * **Stale** — a sample stopped changing (or never appeared at all)
//!   for longer than `stale_seconds`. Absence and staleness are the
//!   same failure seen from two sides: a heartbeat that never arrives
//!   and one that froze both mean the writer is gone.
//! * **BurnRate** — the multi-window error-budget burn of an SRE-style
//!   SLO: the ratio of a numerator counter to a denominator counter
//!   over a long and a short window, each divided by the budget. The
//!   rule fires only when **both** windows burn faster than `factor`,
//!   so a brief spike (short window only) and a stale incident that
//!   already ended (long window only) both stay quiet.
//!
//! The evaluator is driven entirely by the **caller's clock**: every
//! [`AlertEngine::evaluate`] call passes `now` in seconds — modeled
//! seconds in tests (bit-reproducible), wall seconds in `tsp-serve`.
//! The engine itself never reads a clock, takes no locks beyond the
//! registry's own, and iterates rules and samples in a fixed order,
//! so the same metric history always produces byte-identical
//! transition streams.
//!
//! Alert instances walk `inactive → pending → firing → resolved →
//! inactive`; `pending` holds the condition for `for_seconds` before
//! firing (Prometheus' `for:` dwell), and `resolved` stays visible
//! for exactly one evaluation so a scraper polling `ALERTS` can
//! observe the recovery edge. Every state change is emitted as an
//! [`AlertTransition`], journaled by the caller as `alerts.jsonl` and
//! re-renderable by `tsp-inspect alerts` from the artifact alone.

use crate::registry::{Labels, Registry};
use std::collections::{BTreeMap, VecDeque};
use tsp_trace::json::Json;

/// How loudly an alert should page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; no action expected.
    Info,
    /// Degraded but serving; act soon.
    Warning,
    /// The fleet is failing its contract; act now.
    Critical,
}

impl Severity {
    /// The lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    /// Parse the wire name.
    pub fn parse(s: &str) -> Result<Severity, String> {
        match s {
            "info" => Ok(Severity::Info),
            "warning" => Ok(Severity::Warning),
            "critical" => Ok(Severity::Critical),
            other => Err(format!("unknown severity {other:?}")),
        }
    }
}

/// Lifecycle state of one alert instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition false; nothing to report.
    Inactive,
    /// Condition true, dwell (`for_seconds`) not yet served.
    Pending,
    /// Condition held for the dwell; the alert is live.
    Firing,
    /// Condition just cleared from firing; visible for one evaluation.
    Resolved,
}

impl AlertState {
    /// The lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }

    /// Parse the wire name.
    pub fn parse(s: &str) -> Result<AlertState, String> {
        match s {
            "inactive" => Ok(AlertState::Inactive),
            "pending" => Ok(AlertState::Pending),
            "firing" => Ok(AlertState::Firing),
            "resolved" => Ok(AlertState::Resolved),
            other => Err(format!("unknown alert state {other:?}")),
        }
    }
}

/// Comparison operator of a threshold rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
}

impl Cmp {
    /// The operator's wire spelling (`">"`, `">="`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
        }
    }

    /// Parse the wire spelling.
    pub fn parse(s: &str) -> Result<Cmp, String> {
        match s {
            ">" => Ok(Cmp::Gt),
            ">=" => Ok(Cmp::Ge),
            "<" => Ok(Cmp::Lt),
            "<=" => Ok(Cmp::Le),
            other => Err(format!("unknown comparison {other:?}")),
        }
    }

    /// `value <op> bound`.
    pub fn eval(self, value: f64, bound: f64) -> bool {
        match self {
            Cmp::Gt => value > bound,
            Cmp::Ge => value >= bound,
            Cmp::Lt => value < bound,
            Cmp::Le => value <= bound,
        }
    }
}

/// Which samples a rule watches: a metric family plus equality label
/// matchers. A sample matches when it carries every matcher pair;
/// extra labels on the sample are what fan the rule out into one
/// alert instance per lane/tenant/stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    /// The metric family name.
    pub metric: String,
    /// Required `(key, value)` pairs; empty matches every sample.
    pub labels: Labels,
}

impl Selector {
    /// Select every sample of `metric`.
    pub fn metric(name: impl Into<String>) -> Selector {
        Selector {
            metric: name.into(),
            labels: Vec::new(),
        }
    }

    /// Require the label `key = value`.
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Selector {
        self.labels.push((key.into(), value.into()));
        self
    }

    /// Whether `sample` carries every matcher pair.
    pub fn matches(&self, sample: &Labels) -> bool {
        self.labels.iter().all(|pair| sample.contains(pair))
    }

    fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("metric", Json::from(self.metric.as_str()));
        if !self.labels.is_empty() {
            let mut labels = Json::obj();
            for (k, v) in &self.labels {
                labels.set(k, Json::from(v.as_str()));
            }
            obj.set("labels", labels);
        }
        obj
    }

    fn from_json(json: &Json) -> Result<Selector, String> {
        let metric = json
            .get("metric")
            .and_then(Json::as_str)
            .ok_or("selector needs a \"metric\" string")?
            .to_string();
        let mut labels = Vec::new();
        if let Some(Json::Obj(pairs)) = json.get("labels") {
            for (k, v) in pairs {
                let v = v.as_str().ok_or("selector label values are strings")?;
                labels.push((k.clone(), v.to_string()));
            }
        }
        Ok(Selector { metric, labels })
    }
}

/// The condition a rule evaluates. See the module docs for semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// Sample `cmp` `value`.
    Threshold {
        /// The comparison.
        cmp: Cmp,
        /// The bound.
        value: f64,
    },
    /// Sample unchanged — or absent — for at least `stale_seconds`.
    Stale {
        /// The staleness horizon in caller-clock seconds.
        stale_seconds: f64,
    },
    /// Multi-window error-budget burn of `numerator / denominator`.
    BurnRate {
        /// The counter family whose growth is the "total" rate.
        denominator: Selector,
        /// The SLO's error budget as a ratio in `(0, 1]` (e.g. `0.01`
        /// = 1% of requests may be errors).
        budget: f64,
        /// The long window in seconds (incident confirmation).
        long_seconds: f64,
        /// The short window in seconds (fast detection + fast reset).
        short_seconds: f64,
        /// Fire when both windows burn ≥ `factor ×` budget.
        factor: f64,
    },
}

/// One declarative rule: a name, a severity, the samples it watches,
/// the condition, and a `for_seconds` dwell before `pending`
/// escalates to `firing`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// The alert name (`alertname` in the `ALERTS` exposition).
    pub name: String,
    /// How loudly to page.
    pub severity: Severity,
    /// The samples the rule watches (the numerator for burn rules).
    pub selector: Selector,
    /// The condition.
    pub kind: RuleKind,
    /// Dwell the condition must hold before firing; `0` fires on the
    /// first true evaluation.
    pub for_seconds: f64,
}

impl AlertRule {
    /// A threshold rule: fire when a matching sample `cmp value`.
    pub fn threshold(
        name: impl Into<String>,
        severity: Severity,
        selector: Selector,
        cmp: Cmp,
        value: f64,
    ) -> AlertRule {
        AlertRule {
            name: name.into(),
            severity,
            selector,
            kind: RuleKind::Threshold { cmp, value },
            for_seconds: 0.0,
        }
    }

    /// A staleness rule: fire when a matching sample is unchanged, or
    /// no sample exists at all, for `stale_seconds`.
    pub fn stale(
        name: impl Into<String>,
        severity: Severity,
        selector: Selector,
        stale_seconds: f64,
    ) -> AlertRule {
        AlertRule {
            name: name.into(),
            severity,
            selector,
            kind: RuleKind::Stale { stale_seconds },
            for_seconds: 0.0,
        }
    }

    /// A multi-window burn-rate rule over `numerator / denominator`.
    #[allow(clippy::too_many_arguments)]
    pub fn burn_rate(
        name: impl Into<String>,
        severity: Severity,
        numerator: Selector,
        denominator: Selector,
        budget: f64,
        long_seconds: f64,
        short_seconds: f64,
        factor: f64,
    ) -> AlertRule {
        AlertRule {
            name: name.into(),
            severity,
            selector: numerator,
            kind: RuleKind::BurnRate {
                denominator,
                budget,
                long_seconds,
                short_seconds,
                factor,
            },
            for_seconds: 0.0,
        }
    }

    /// Require the condition to hold `seconds` before firing.
    pub fn with_for_seconds(mut self, seconds: f64) -> AlertRule {
        self.for_seconds = seconds;
        self
    }

    /// Serialize for a config file or journal header.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("name", Json::from(self.name.as_str()));
        obj.set("severity", Json::from(self.severity.as_str()));
        obj.set("selector", self.selector.to_json());
        match &self.kind {
            RuleKind::Threshold { cmp, value } => {
                obj.set("kind", Json::from("threshold"));
                obj.set("cmp", Json::from(cmp.as_str()));
                obj.set("value", Json::from(*value));
            }
            RuleKind::Stale { stale_seconds } => {
                obj.set("kind", Json::from("stale"));
                obj.set("stale_seconds", Json::from(*stale_seconds));
            }
            RuleKind::BurnRate {
                denominator,
                budget,
                long_seconds,
                short_seconds,
                factor,
            } => {
                obj.set("kind", Json::from("burn_rate"));
                obj.set("denominator", denominator.to_json());
                obj.set("budget", Json::from(*budget));
                obj.set("long_seconds", Json::from(*long_seconds));
                obj.set("short_seconds", Json::from(*short_seconds));
                obj.set("factor", Json::from(*factor));
            }
        }
        if self.for_seconds != 0.0 {
            obj.set("for_seconds", Json::from(self.for_seconds));
        }
        obj
    }

    /// Parse what [`AlertRule::to_json`] wrote. Unknown members are
    /// ignored so rule documents can grow fields.
    pub fn from_json(json: &Json) -> Result<AlertRule, String> {
        let name = json
            .get("name")
            .and_then(Json::as_str)
            .ok_or("alert rule needs a \"name\"")?
            .to_string();
        let severity = Severity::parse(
            json.get("severity")
                .and_then(Json::as_str)
                .ok_or("alert rule needs a \"severity\"")?,
        )?;
        let selector = Selector::from_json(
            json.get("selector")
                .ok_or("alert rule needs a \"selector\"")?,
        )?;
        let num = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("alert rule needs a numeric {key:?}"))
        };
        let kind = match json.get("kind").and_then(Json::as_str) {
            Some("threshold") => RuleKind::Threshold {
                cmp: Cmp::parse(
                    json.get("cmp")
                        .and_then(Json::as_str)
                        .ok_or("threshold rule needs a \"cmp\"")?,
                )?,
                value: num("value")?,
            },
            Some("stale") => RuleKind::Stale {
                stale_seconds: num("stale_seconds")?,
            },
            Some("burn_rate") => RuleKind::BurnRate {
                denominator: Selector::from_json(
                    json.get("denominator")
                        .ok_or("burn_rate rule needs a \"denominator\"")?,
                )?,
                budget: num("budget")?,
                long_seconds: num("long_seconds")?,
                short_seconds: num("short_seconds")?,
                factor: num("factor")?,
            },
            other => return Err(format!("unknown rule kind {other:?}")),
        };
        let for_seconds = json
            .get("for_seconds")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        Ok(AlertRule {
            name,
            severity,
            selector,
            kind,
            for_seconds,
        })
    }
}

/// One state change of one alert instance — the journal unit.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Caller-clock timestamp of the evaluation that moved the state.
    pub seconds: f64,
    /// The rule name.
    pub rule: String,
    /// The rule's severity.
    pub severity: Severity,
    /// The instance's full label set.
    pub labels: Labels,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
    /// The observed value that drove the evaluation (threshold
    /// sample, staleness age, or short-window burn multiple).
    pub value: f64,
}

impl AlertTransition {
    /// One JSONL line (no trailing newline).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("seconds", Json::from(self.seconds));
        obj.set("rule", Json::from(self.rule.as_str()));
        obj.set("severity", Json::from(self.severity.as_str()));
        if !self.labels.is_empty() {
            let mut labels = Json::obj();
            for (k, v) in &self.labels {
                labels.set(k, Json::from(v.as_str()));
            }
            obj.set("labels", labels);
        }
        obj.set("from", Json::from(self.from.as_str()));
        obj.set("to", Json::from(self.to.as_str()));
        obj.set("value", Json::from(self.value));
        obj
    }

    /// Parse what [`AlertTransition::to_json`] wrote.
    pub fn from_json(json: &Json) -> Result<AlertTransition, String> {
        let s = |key: &str| -> Result<&str, String> {
            json.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("alert transition needs {key:?}"))
        };
        let mut labels = Vec::new();
        if let Some(Json::Obj(pairs)) = json.get("labels") {
            for (k, v) in pairs {
                let v = v.as_str().ok_or("transition label values are strings")?;
                labels.push((k.clone(), v.to_string()));
            }
        }
        Ok(AlertTransition {
            seconds: json
                .get("seconds")
                .and_then(Json::as_f64)
                .ok_or("alert transition needs \"seconds\"")?,
            rule: s("rule")?.to_string(),
            severity: Severity::parse(s("severity")?)?,
            labels,
            from: AlertState::parse(s("from")?)?,
            to: AlertState::parse(s("to")?)?,
            value: json.get("value").and_then(Json::as_f64).unwrap_or(0.0),
        })
    }
}

/// Parse an `alerts.jsonl` document back into transitions.
pub fn parse_alerts_jsonl(text: &str) -> Result<Vec<AlertTransition>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            let json = tsp_trace::json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            AlertTransition::from_json(&json).map_err(|e| format!("line {}: {e}", i + 1))
        })
        .collect()
}

/// A live (non-inactive) alert instance, as reported by
/// [`AlertEngine::active`].
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveAlert {
    /// The rule name.
    pub rule: String,
    /// The rule's severity.
    pub severity: Severity,
    /// The instance's full label set.
    pub labels: Labels,
    /// Current lifecycle state (never `Inactive`).
    pub state: AlertState,
    /// Caller-clock time the instance entered this state.
    pub since_seconds: f64,
    /// The most recently observed value.
    pub value: f64,
}

#[derive(Debug, Clone)]
struct Instance {
    state: AlertState,
    since: f64,
    pending_since: f64,
    /// Whether a sample has ever been observed (staleness).
    seen: bool,
    /// Last observed value (staleness change detection; reporting).
    last_value: f64,
    /// When the value last changed (staleness clock).
    last_change: f64,
    /// `(t, numerator, denominator)` history for burn windows.
    history: VecDeque<(f64, f64, f64)>,
}

impl Instance {
    fn new(now: f64) -> Instance {
        Instance {
            state: AlertState::Inactive,
            since: now,
            pending_since: now,
            seen: false,
            last_value: 0.0,
            last_change: now,
            history: VecDeque::new(),
        }
    }
}

/// The deterministic rule evaluator. Feed it a registry and a clock;
/// it hands back the state transitions since the previous call.
#[derive(Debug, Default)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    /// Instance maps, parallel to `rules`, keyed by full label set.
    instances: Vec<BTreeMap<Labels, Instance>>,
    /// First evaluation time per rule (absence baseline).
    first_eval: Vec<Option<f64>>,
}

impl AlertEngine {
    /// An engine with no rules.
    pub fn new() -> AlertEngine {
        AlertEngine::default()
    }

    /// Append a rule (builder form).
    pub fn with_rule(mut self, rule: AlertRule) -> AlertEngine {
        self.push_rule(rule);
        self
    }

    /// Append a rule.
    pub fn push_rule(&mut self, rule: AlertRule) {
        self.rules.push(rule);
        self.instances.push(BTreeMap::new());
        self.first_eval.push(None);
    }

    /// The configured rules, in evaluation order.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Evaluate every rule against `registry` at caller-clock time
    /// `now`, returning the state transitions this step produced.
    /// Rules are walked in configuration order and samples in the
    /// registry's label-sorted order, so identical metric histories
    /// yield identical transition streams.
    pub fn evaluate(&mut self, registry: &Registry, now: f64) -> Vec<AlertTransition> {
        let mut out = Vec::new();
        for (idx, rule) in self.rules.iter().enumerate() {
            let first_eval = *self.first_eval[idx].get_or_insert(now);
            let instances = &mut self.instances[idx];
            let matched: Vec<(Labels, f64)> = registry
                .samples(&rule.selector.metric)
                .into_iter()
                .filter(|(labels, _)| rule.selector.matches(labels))
                .collect();

            // Verdicts for the samples present this step, in
            // label-sorted order; existing instances whose sample
            // vanished are appended afterwards with a false verdict
            // so they can resolve.
            let mut verdicts: BTreeMap<Labels, (bool, f64)> = BTreeMap::new();
            match &rule.kind {
                RuleKind::Threshold { cmp, value } => {
                    for (labels, sample) in &matched {
                        verdicts.insert(labels.clone(), (cmp.eval(*sample, *value), *sample));
                    }
                }
                RuleKind::Stale { stale_seconds } => {
                    for (labels, sample) in &matched {
                        let inst = instances
                            .entry(labels.clone())
                            .or_insert_with(|| Instance::new(now));
                        if !inst.seen || inst.last_value.to_bits() != sample.to_bits() {
                            inst.seen = true;
                            inst.last_value = *sample;
                            inst.last_change = now;
                        }
                        let age = now - inst.last_change;
                        verdicts.insert(labels.clone(), (age >= *stale_seconds, age));
                    }
                    if matched.is_empty() {
                        // No sample at all: absence, keyed by the
                        // selector's own matchers.
                        let age = now - first_eval;
                        verdicts.insert(rule.selector.labels.clone(), (age >= *stale_seconds, age));
                    }
                }
                RuleKind::BurnRate {
                    denominator,
                    budget,
                    long_seconds,
                    short_seconds,
                    factor,
                } => {
                    let numerator: f64 = matched.iter().map(|(_, v)| v).sum();
                    let total: f64 = registry
                        .samples(&denominator.metric)
                        .into_iter()
                        .filter(|(labels, _)| denominator.matches(labels))
                        .map(|(_, v)| v)
                        .sum();
                    let inst = instances
                        .entry(rule.selector.labels.clone())
                        .or_insert_with(|| Instance::new(now));
                    inst.history.push_back((now, numerator, total));
                    // Keep one sample at or before the long-window
                    // boundary as the delta base.
                    while inst.history.len() >= 2 && inst.history[1].0 <= now - long_seconds {
                        inst.history.pop_front();
                    }
                    let burn = |window: f64| -> f64 {
                        let base = inst
                            .history
                            .iter()
                            .rev()
                            .find(|(t, _, _)| *t <= now - window)
                            .unwrap_or(&inst.history[0]);
                        let dn = numerator - base.1;
                        let dd = total - base.2;
                        if dd > 0.0 {
                            (dn / dd) / budget
                        } else {
                            0.0
                        }
                    };
                    let (long, short) = (burn(*long_seconds), burn(*short_seconds));
                    verdicts.insert(
                        rule.selector.labels.clone(),
                        (long >= *factor && short >= *factor, short),
                    );
                }
            }
            for labels in instances.keys().cloned().collect::<Vec<_>>() {
                let value = instances[&labels].last_value;
                verdicts.entry(labels).or_insert((false, value));
            }

            for (labels, (cond, value)) in verdicts {
                let inst = instances
                    .entry(labels.clone())
                    .or_insert_with(|| Instance::new(now));
                if !matches!(rule.kind, RuleKind::Stale { .. }) {
                    inst.last_value = value;
                }
                let next = match (inst.state, cond) {
                    (AlertState::Inactive | AlertState::Resolved, true) => {
                        inst.pending_since = now;
                        if rule.for_seconds <= 0.0 {
                            Some(AlertState::Firing)
                        } else {
                            Some(AlertState::Pending)
                        }
                    }
                    (AlertState::Pending, true) => {
                        (now - inst.pending_since >= rule.for_seconds).then_some(AlertState::Firing)
                    }
                    (AlertState::Pending, false) => Some(AlertState::Inactive),
                    (AlertState::Firing, false) => Some(AlertState::Resolved),
                    (AlertState::Resolved, false) => Some(AlertState::Inactive),
                    (AlertState::Inactive, false) | (AlertState::Firing, true) => None,
                };
                if let Some(to) = next {
                    out.push(AlertTransition {
                        seconds: now,
                        rule: rule.name.clone(),
                        severity: rule.severity,
                        labels,
                        from: inst.state,
                        to,
                        value,
                    });
                    inst.state = to;
                    inst.since = now;
                }
            }
        }
        out
    }

    /// Every non-inactive instance, in rule then label order.
    pub fn active(&self) -> Vec<ActiveAlert> {
        let mut out = Vec::new();
        for (rule, instances) in self.rules.iter().zip(&self.instances) {
            for (labels, inst) in instances {
                if inst.state != AlertState::Inactive {
                    out.push(ActiveAlert {
                        rule: rule.name.clone(),
                        severity: rule.severity,
                        labels: labels.clone(),
                        state: inst.state,
                        since_seconds: inst.since,
                        value: inst.last_value,
                    });
                }
            }
        }
        out
    }

    /// Number of instances currently firing.
    pub fn firing_count(&self) -> usize {
        self.instances
            .iter()
            .flat_map(|m| m.values())
            .filter(|i| i.state == AlertState::Firing)
            .count()
    }

    /// Mirror the instance census into Prometheus-convention
    /// `ALERTS{alertname,severity,state}` gauges (pending and firing
    /// counts per rule), so `/metrics` scrapers see the same truth
    /// the journal records.
    pub fn expose_into(&self, registry: &Registry) {
        for (rule, instances) in self.rules.iter().zip(&self.instances) {
            for state in [AlertState::Pending, AlertState::Firing] {
                let count = instances.values().filter(|i| i.state == state).count();
                registry
                    .gauge_with(
                        "ALERTS",
                        "Alert instances by rule and lifecycle state",
                        &[
                            ("alertname", rule.name.as_str()),
                            ("severity", rule.severity.as_str()),
                            ("state", state.as_str()),
                        ],
                    )
                    .set(count as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn threshold_walks_the_full_lifecycle() {
        let registry = Registry::new();
        let gauge = registry.gauge("tsp_test_stall_seconds", "t");
        let mut engine = AlertEngine::new().with_rule(
            AlertRule::threshold(
                "Stalled",
                Severity::Critical,
                Selector::metric("tsp_test_stall_seconds"),
                Cmp::Gt,
                0.5,
            )
            .with_for_seconds(1.0),
        );

        gauge.set(0.1);
        assert!(engine.evaluate(&registry, 0.0).is_empty());

        gauge.set(0.9);
        let t = engine.evaluate(&registry, 1.0);
        assert_eq!(t.len(), 1);
        assert_eq!(
            (t[0].from, t[0].to),
            (AlertState::Inactive, AlertState::Pending)
        );
        assert_eq!(t[0].value, 0.9);

        // Dwell not served yet.
        assert!(engine.evaluate(&registry, 1.5).is_empty());
        let t = engine.evaluate(&registry, 2.0);
        assert_eq!(
            (t[0].from, t[0].to),
            (AlertState::Pending, AlertState::Firing)
        );
        assert_eq!(engine.firing_count(), 1);

        gauge.set(0.0);
        let t = engine.evaluate(&registry, 3.0);
        assert_eq!(
            (t[0].from, t[0].to),
            (AlertState::Firing, AlertState::Resolved)
        );
        let t = engine.evaluate(&registry, 4.0);
        assert_eq!(
            (t[0].from, t[0].to),
            (AlertState::Resolved, AlertState::Inactive)
        );
        assert!(engine.active().is_empty());
    }

    #[test]
    fn zero_dwell_fires_immediately_and_pending_can_clear() {
        let registry = Registry::new();
        let gauge = registry.gauge("tsp_test_depth", "t");
        let mut engine = AlertEngine::new()
            .with_rule(AlertRule::threshold(
                "DeepNow",
                Severity::Info,
                Selector::metric("tsp_test_depth"),
                Cmp::Ge,
                4.0,
            ))
            .with_rule(
                AlertRule::threshold(
                    "DeepLong",
                    Severity::Warning,
                    Selector::metric("tsp_test_depth"),
                    Cmp::Ge,
                    4.0,
                )
                .with_for_seconds(5.0),
            );
        gauge.set(4.0);
        let t = engine.evaluate(&registry, 0.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].to, AlertState::Firing); // zero dwell
        assert_eq!(t[1].to, AlertState::Pending);
        // The blip clears before the dwell: pending goes straight
        // back to inactive, never firing, never resolved.
        gauge.set(0.0);
        let t = engine.evaluate(&registry, 1.0);
        assert_eq!(t.len(), 2);
        assert_eq!(
            (t[0].from, t[0].to),
            (AlertState::Firing, AlertState::Resolved)
        );
        assert_eq!(
            (t[1].from, t[1].to),
            (AlertState::Pending, AlertState::Inactive)
        );
    }

    #[test]
    fn labeled_samples_fan_out_into_per_instance_alerts() {
        let registry = Registry::new();
        let lane0 = registry.gauge_with("tsp_test_lane_stall", "t", &[("lane", "0")]);
        let lane1 = registry.gauge_with("tsp_test_lane_stall", "t", &[("lane", "1")]);
        let mut engine = AlertEngine::new().with_rule(AlertRule::threshold(
            "LaneStalled",
            Severity::Critical,
            Selector::metric("tsp_test_lane_stall"),
            Cmp::Gt,
            1.0,
        ));
        lane0.set(0.0);
        lane1.set(5.0);
        let t = engine.evaluate(&registry, 0.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].labels, labels(&[("lane", "1")]));
        let active = engine.active();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].state, AlertState::Firing);
        assert_eq!(active[0].labels, labels(&[("lane", "1")]));
        lane0.set(9.0);
        let t = engine.evaluate(&registry, 1.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].labels, labels(&[("lane", "0")]));
        assert_eq!(engine.firing_count(), 2);
    }

    #[test]
    fn selector_matchers_restrict_the_fan_out() {
        let registry = Registry::new();
        registry
            .gauge_with(
                "tsp_test_q",
                "t",
                &[("stage", "solve"), ("quantile", "p99")],
            )
            .set(10.0);
        registry
            .gauge_with(
                "tsp_test_q",
                "t",
                &[("stage", "queue"), ("quantile", "p99")],
            )
            .set(10.0);
        let mut engine = AlertEngine::new().with_rule(AlertRule::threshold(
            "SolveSlow",
            Severity::Warning,
            Selector::metric("tsp_test_q").with_label("stage", "solve"),
            Cmp::Gt,
            1.0,
        ));
        let t = engine.evaluate(&registry, 0.0);
        assert_eq!(t.len(), 1);
        assert!(t[0]
            .labels
            .contains(&("stage".to_string(), "solve".to_string())));
    }

    #[test]
    fn stale_fires_on_a_frozen_sample_and_resolves_on_change() {
        let registry = Registry::new();
        let beats = registry.counter("tsp_test_beats_total", "t");
        let mut engine = AlertEngine::new().with_rule(AlertRule::stale(
            "HeartbeatLost",
            Severity::Critical,
            Selector::metric("tsp_test_beats_total"),
            2.0,
        ));
        beats.inc();
        assert!(engine.evaluate(&registry, 0.0).is_empty());
        beats.inc();
        assert!(engine.evaluate(&registry, 1.0).is_empty());
        // Frozen from t=1; stale at t=3.
        assert!(engine.evaluate(&registry, 2.0).is_empty());
        let t = engine.evaluate(&registry, 3.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, AlertState::Firing);
        assert_eq!(t[0].value, 2.0); // the staleness age
        beats.inc();
        let t = engine.evaluate(&registry, 4.0);
        assert_eq!(t[0].to, AlertState::Resolved);
    }

    #[test]
    fn stale_detects_total_absence() {
        let registry = Registry::new();
        let mut engine = AlertEngine::new().with_rule(AlertRule::stale(
            "NeverCameUp",
            Severity::Critical,
            Selector::metric("tsp_test_missing_total"),
            5.0,
        ));
        assert!(engine.evaluate(&registry, 0.0).is_empty());
        assert!(engine.evaluate(&registry, 4.0).is_empty());
        let t = engine.evaluate(&registry, 5.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, AlertState::Firing);
        // The metric finally appears: the absence instance resolves.
        registry.counter("tsp_test_missing_total", "t").inc();
        let t = engine.evaluate(&registry, 6.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, AlertState::Resolved);
    }

    #[test]
    fn burn_rate_needs_both_windows_hot_and_resets_via_the_short_one() {
        let registry = Registry::new();
        let errors = registry.counter("tsp_test_errors_total", "t");
        let total = registry.counter("tsp_test_requests_total", "t");
        let mut engine = AlertEngine::new().with_rule(AlertRule::burn_rate(
            "ErrorBudgetBurn",
            Severity::Critical,
            Selector::metric("tsp_test_errors_total"),
            Selector::metric("tsp_test_requests_total"),
            0.1, // 10% budget
            10.0,
            2.0,
            1.0,
        ));

        // Healthy baseline: 100 requests, 1 error over 4 ticks.
        for t in 0..4 {
            total.add(25.0);
            if t == 0 {
                errors.inc();
            }
            assert!(engine.evaluate(&registry, t as f64).is_empty(), "tick {t}");
        }

        // Burst: half the new requests error. Both windows heat up.
        total.add(20.0);
        errors.add(10.0);
        let t = engine.evaluate(&registry, 4.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, AlertState::Firing);
        assert!(t[0].value >= 1.0, "short-window burn was {}", t[0].value);

        // Recovery: clean traffic. The short window cools first and
        // resolves the alert even though the long window still burns.
        total.add(25.0);
        let t = engine.evaluate(&registry, 6.0);
        total.add(25.0);
        assert_eq!(t[0].to, AlertState::Resolved);
        let t = engine.evaluate(&registry, 7.0);
        assert_eq!(t[0].to, AlertState::Inactive);
    }

    #[test]
    fn transitions_round_trip_through_jsonl() {
        let registry = Registry::new();
        let gauge = registry.gauge_with("tsp_test_age", "t", &[("tenant", "acme")]);
        let mut engine = AlertEngine::new().with_rule(
            AlertRule::threshold(
                "QueueAge",
                Severity::Warning,
                Selector::metric("tsp_test_age"),
                Cmp::Gt,
                1.0,
            )
            .with_for_seconds(0.5),
        );
        let mut journal = String::new();
        for (time, value) in [(0.0, 2.25), (0.5, 2.5), (1.0, 0.5), (1.5, 0.5)] {
            gauge.set(value);
            for tr in engine.evaluate(&registry, time) {
                journal.push_str(&tr.to_json().to_string());
                journal.push('\n');
            }
        }
        let parsed = parse_alerts_jsonl(&journal).unwrap();
        assert_eq!(parsed.len(), 4);
        let states: Vec<AlertState> = parsed.iter().map(|t| t.to).collect();
        assert_eq!(
            states,
            vec![
                AlertState::Pending,
                AlertState::Firing,
                AlertState::Resolved,
                AlertState::Inactive
            ]
        );
        for (line, tr) in journal.lines().zip(&parsed) {
            assert_eq!(tr.labels, labels(&[("tenant", "acme")]));
            // Re-serializing the parsed transition reproduces the
            // journal line byte for byte.
            assert_eq!(tr.to_json().to_string(), line);
        }
        assert_eq!(parsed[0].value, 2.25);
    }

    #[test]
    fn identical_histories_give_identical_transition_streams() {
        let run = || {
            let registry = Registry::new();
            let gauge = registry.gauge("tsp_test_det", "t");
            let err = registry.counter("tsp_test_det_err", "t");
            let tot = registry.counter("tsp_test_det_tot", "t");
            let mut engine = AlertEngine::new()
                .with_rule(
                    AlertRule::threshold(
                        "G",
                        Severity::Warning,
                        Selector::metric("tsp_test_det"),
                        Cmp::Gt,
                        0.5,
                    )
                    .with_for_seconds(0.25),
                )
                .with_rule(AlertRule::stale(
                    "S",
                    Severity::Info,
                    Selector::metric("tsp_test_det_tot"),
                    1.0,
                ))
                .with_rule(AlertRule::burn_rate(
                    "B",
                    Severity::Critical,
                    Selector::metric("tsp_test_det_err"),
                    Selector::metric("tsp_test_det_tot"),
                    0.2,
                    4.0,
                    1.0,
                    1.0,
                ));
            let mut lines = Vec::new();
            for i in 0..32u32 {
                let t = f64::from(i) * 0.125;
                gauge.set(if i % 7 < 3 { 1.0 } else { 0.0 });
                tot.add(if i % 5 == 0 { 0.0 } else { 3.0 });
                err.add(if i % 4 == 0 { 2.0 } else { 0.0 });
                for tr in engine.evaluate(&registry, t) {
                    lines.push(tr.to_json().to_string());
                }
            }
            lines
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn alerts_gauges_mirror_the_census() {
        let registry = Registry::new();
        let gauge = registry.gauge_with("tsp_test_x", "t", &[("lane", "0")]);
        registry
            .gauge_with("tsp_test_x", "t", &[("lane", "1")])
            .set(9.0);
        gauge.set(9.0);
        let mut engine = AlertEngine::new().with_rule(AlertRule::threshold(
            "X",
            Severity::Critical,
            Selector::metric("tsp_test_x"),
            Cmp::Gt,
            1.0,
        ));
        engine.evaluate(&registry, 0.0);
        engine.expose_into(&registry);
        assert_eq!(
            registry.gauge_value_with(
                "ALERTS",
                &[
                    ("alertname", "X"),
                    ("severity", "critical"),
                    ("state", "firing")
                ]
            ),
            Some(2.0)
        );
        assert_eq!(
            registry.gauge_value_with(
                "ALERTS",
                &[
                    ("alertname", "X"),
                    ("severity", "critical"),
                    ("state", "pending")
                ]
            ),
            Some(0.0)
        );
        let exposition = registry.expose();
        assert!(
            exposition.contains("ALERTS{alertname=\"X\",severity=\"critical\",state=\"firing\"} 2")
        );
    }

    #[test]
    fn rules_round_trip_through_json() {
        let rules = vec![
            AlertRule::threshold(
                "LaneStalled",
                Severity::Critical,
                Selector::metric("tsp_serve_lane_stall_seconds").with_label("lane", "0"),
                Cmp::Gt,
                0.5,
            )
            .with_for_seconds(1.5),
            AlertRule::stale(
                "HeartbeatLost",
                Severity::Warning,
                Selector::metric("tsp_serve_watchdog_ticks_total"),
                30.0,
            ),
            AlertRule::burn_rate(
                "RejectionSpike",
                Severity::Critical,
                Selector::metric("tsp_serve_rejections_total"),
                Selector::metric("tsp_serve_requests_total"),
                0.25,
                60.0,
                15.0,
                1.0,
            ),
        ];
        for rule in rules {
            let text = rule.to_json().to_string();
            let back = AlertRule::from_json(&tsp_trace::json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, rule);
        }
    }
}
