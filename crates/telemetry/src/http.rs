//! A minimal shared HTTP/1.1 core for the embedded servers.
//!
//! The metrics endpoint and the solve service both speak just enough
//! HTTP for a local scraper or `curl`: one request per connection,
//! bounded reads, typed status/reason mapping, and a method+path
//! routing table with single-segment `{param}` captures. This module
//! factors that plumbing out of [`MetricsServer`] so both servers share
//! one parser, one responder and one hardening story (400 on malformed
//! or oversized input, 405 on a known path with the wrong method, 404
//! otherwise).
//!
//! [`MetricsServer`]: crate::server::MetricsServer

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard cap on the request head; anything longer is answered with 400
/// rather than buffered further.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Hard cap on a request body (a TSPLIB payload comfortably fits).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request: the line, lower-cased headers, and the body
/// (read iff the head declared a `Content-Length`).
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method verb exactly as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Absolute request target (always starts with `/`).
    pub path: String,
    /// `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body bytes (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Every variant is answered with a
/// 400 — distinguishing them only changes the body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The head or body exceeded its byte cap.
    TooLarge(&'static str),
    /// The request line/headers/body did not parse as HTTP.
    Malformed(&'static str),
}

impl RequestError {
    /// Human-readable body for the 400 response.
    pub fn message(&self) -> &'static str {
        match self {
            RequestError::TooLarge(m) | RequestError::Malformed(m) => m,
        }
    }
}

/// Read one request off `stream` with bounded head and body sizes.
///
/// The request line must be `METHOD SP /path SP HTTP/x.y` with nothing
/// extra; garbage bytes, truncated lines and non-HTTP preambles are
/// [`RequestError::Malformed`]. A body is read only when the head
/// carries `Content-Length`, and only up to `max_body` bytes.
pub fn read_request(
    stream: &mut impl Read,
    max_head: usize,
    max_body: usize,
) -> Result<Request, RequestError> {
    let mut buf = [0u8; 4096];
    let mut bytes = Vec::new();
    let mut head_end = None;
    loop {
        if let Some(pos) = bytes.windows(4).position(|w| w == b"\r\n\r\n") {
            head_end = Some(pos);
            break;
        }
        if bytes.len() > max_head {
            return Err(RequestError::TooLarge("request head too large\n"));
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let Some(head_end) = head_end else {
        return Err(RequestError::Malformed("malformed request line\n"));
    };
    let head = String::from_utf8_lossy(&bytes[..head_end]).into_owned();
    let mut lines = head.lines();
    let mut parts = lines.next().unwrap_or_default().split_whitespace();
    let (method, path, version) = (parts.next(), parts.next(), parts.next());
    let (Some(method), Some(path), Some(version)) = (method, path, version) else {
        return Err(RequestError::Malformed("malformed request line\n"));
    };
    if !version.starts_with("HTTP/") || !path.starts_with('/') || parts.next().is_some() {
        return Err(RequestError::Malformed("malformed request line\n"));
    }
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();

    let mut body: Vec<u8> = bytes[head_end + 4..].to_vec();
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>());
    match content_length {
        None => body.clear(),
        Some(Err(_)) => return Err(RequestError::Malformed("invalid Content-Length\n")),
        Some(Ok(len)) => {
            if len > max_body {
                return Err(RequestError::TooLarge("request body too large\n"));
            }
            while body.len() < len {
                match stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => body.extend_from_slice(&buf[..n]),
                    Err(_) => break,
                }
            }
            if body.len() < len {
                return Err(RequestError::Malformed("truncated request body\n"));
            }
            body.truncate(len);
        }
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// The canonical reason phrase for a status code.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One response: status, content type, body, extra headers.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code (reason phrase derived via [`reason`]).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
    /// Extra headers appended verbatim (e.g. `Retry-After`).
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A response with an explicit content type.
    pub fn new(status: u16, content_type: &str, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: content_type.to_string(),
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(status, "text/plain; charset=utf-8", body)
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response::new(status, "application/json", body)
    }

    /// Append an extra header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serialize the response (status line, headers, body).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(self.body.as_bytes());
        bytes
    }

    /// Write the response to `stream`. A peer that hung up mid-response
    /// is its own problem.
    pub fn write(&self, stream: &mut impl Write) {
        let _ = stream.write_all(&self.to_bytes());
    }
}

/// One segment of a route pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Literal(String),
    Param(String),
}

/// Path parameters captured by `{param}` segments.
#[derive(Debug, Clone, Default)]
pub struct Params(Vec<(String, String)>);

impl Params {
    /// The captured value of `{name}`, if the matched route had one.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

type Handler = Box<dyn Fn(&Request, &Params) -> Response + Send + Sync>;

struct Route {
    method: String,
    segments: Vec<Segment>,
    handler: Handler,
}

/// A method+path routing table. Patterns are `/`-separated literals
/// with optional `{param}` captures (`/v1/jobs/{id}`); dispatch picks
/// the first route whose method and pattern both match, answers 405
/// when only the method differs, and 404 otherwise.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let table: Vec<String> = self
            .routes
            .iter()
            .map(|r| format!("{} {}", r.method, render_pattern(&r.segments)))
            .collect();
        f.debug_struct("Router").field("routes", &table).finish()
    }
}

fn render_pattern(segments: &[Segment]) -> String {
    let mut s = String::new();
    for seg in segments {
        s.push('/');
        match seg {
            Segment::Literal(l) => s.push_str(l),
            Segment::Param(p) => {
                s.push('{');
                s.push_str(p);
                s.push('}');
            }
        }
    }
    if s.is_empty() {
        s.push('/');
    }
    s
}

fn parse_pattern(pattern: &str) -> Vec<Segment> {
    pattern
        .split('/')
        .filter(|s| !s.is_empty())
        .map(
            |s| match s.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
                Some(name) => Segment::Param(name.to_string()),
                None => Segment::Literal(s.to_string()),
            },
        )
        .collect()
}

fn match_segments(segments: &[Segment], path: &str) -> Option<Params> {
    let parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    if parts.len() != segments.len() {
        return None;
    }
    let mut params = Vec::new();
    for (seg, part) in segments.iter().zip(&parts) {
        match seg {
            Segment::Literal(l) if l == part => {}
            Segment::Literal(_) => return None,
            Segment::Param(name) => params.push((name.clone(), (*part).to_string())),
        }
    }
    Some(Params(params))
}

impl Router {
    /// An empty table.
    pub fn new() -> Router {
        Router::default()
    }

    /// Register `handler` for `method pattern` (builder style).
    pub fn route(
        mut self,
        method: &str,
        pattern: &str,
        handler: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes.push(Route {
            method: method.to_ascii_uppercase(),
            segments: parse_pattern(pattern),
            handler: Box::new(handler),
        });
        self
    }

    /// Resolve `req` against the table.
    pub fn dispatch(&self, req: &Request) -> Response {
        let mut path_known = false;
        for route in &self.routes {
            if let Some(params) = match_segments(&route.segments, &req.path) {
                if route.method == req.method {
                    return (route.handler)(req, &params);
                }
                path_known = true;
            }
        }
        if path_known {
            Response::text(405, "method not allowed\n")
        } else {
            Response::text(404, "not found\n")
        }
    }
}

/// A bounded-concurrency embedded HTTP server: one accept loop, one
/// short-lived thread per connection, one request per connection.
/// Shuts down (and joins the accept loop) on drop.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serve `router` from a background thread named `name`.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        name: &str,
        router: Arc<Router>,
    ) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        let router = router.clone();
                        // Connection threads are short-lived (one
                        // request each); a spawn failure just drops the
                        // connection.
                        let _ = std::thread::Builder::new()
                            .name("tsp-http-conn".into())
                            .spawn(move || handle_connection(stream, &router));
                    }
                }
            })?;
        Ok(HttpServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (port resolved when spawned with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join its thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept() so the loop observes the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_connection(mut stream: TcpStream, router: &Router) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(2000)));
    let response = match read_request(&mut stream, MAX_HEAD_BYTES, MAX_BODY_BYTES) {
        Ok(req) => router.dispatch(&req),
        Err(e) => Response::text(400, e.message()),
    };
    response.write(&mut stream);
}

/// Blocking one-shot HTTP request against a local server; returns
/// `(status code, response head, body)`. Used by the smoke examples
/// and tests to exercise the servers without an external client.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    content_type: &str,
    body: &str,
) -> io::Result<(u16, String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let head = if body.is_empty() {
        format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
    } else {
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
    };
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body split"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no status code"))?;
    Ok((status, head.to_string(), body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read(bytes: &[u8]) -> Result<Request, RequestError> {
        read_request(&mut Cursor::new(bytes), MAX_HEAD_BYTES, 1024)
    }

    #[test]
    fn parses_a_get_without_a_body() {
        let req = read(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_a_content_length_body() {
        let req = read(b"POST /v1/solve HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for case in [
            &b"\x16\x03\x01garbage\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /metrics\r\n\r\n",
            b"HELO tsp\r\n\r\n",
            b"GET metrics HTTP/1.1\r\n\r\n",
            b"GET /metrics HTTP/1.1 extra\r\n\r\n",
            b"no head terminator at all",
        ] {
            assert!(
                matches!(read(case), Err(RequestError::Malformed(_))),
                "case {:?}",
                String::from_utf8_lossy(case)
            );
        }
    }

    #[test]
    fn bounded_reads_reject_oversized_input() {
        let mut huge = b"GET /".to_vec();
        huge.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 4096));
        assert!(matches!(read(&huge), Err(RequestError::TooLarge(_))));

        let body_too_big = b"POST /x HTTP/1.1\r\nContent-Length: 4096\r\n\r\n";
        assert!(matches!(read(body_too_big), Err(RequestError::TooLarge(_))));

        let truncated = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(read(truncated), Err(RequestError::Malformed(_))));
    }

    fn req(method: &str, path: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn table() -> Router {
        Router::new()
            .route("GET", "/metrics", |_, _| Response::text(200, "m"))
            .route("POST", "/v1/solve", |_, _| Response::json(202, "{}"))
            .route("GET", "/v1/jobs/{id}", |_, p| {
                Response::text(200, p.get("id").unwrap_or("?"))
            })
            .route("DELETE", "/v1/jobs/{id}", |_, _| Response::text(200, "del"))
    }

    #[test]
    fn routing_matches_methods_paths_and_params() {
        let router = table();
        assert_eq!(router.dispatch(&req("GET", "/metrics")).status, 200);
        assert_eq!(router.dispatch(&req("POST", "/v1/solve")).status, 202);
        let got = router.dispatch(&req("GET", "/v1/jobs/job-7"));
        assert_eq!((got.status, got.body.as_str()), (200, "job-7"));
        assert_eq!(
            router.dispatch(&req("DELETE", "/v1/jobs/job-7")).status,
            200
        );
    }

    #[test]
    fn known_path_wrong_method_is_405_unknown_path_is_404() {
        let router = table();
        // Wrong verb on a known pattern: 405, matching the metrics
        // server's historical behavior.
        assert_eq!(router.dispatch(&req("POST", "/metrics")).status, 405);
        assert_eq!(router.dispatch(&req("PUT", "/v1/jobs/j1")).status, 405);
        // Unknown paths: 404, whatever the verb.
        assert_eq!(router.dispatch(&req("GET", "/nope")).status, 404);
        assert_eq!(router.dispatch(&req("POST", "/nope")).status, 404);
        // Param segments don't match across depths.
        assert_eq!(router.dispatch(&req("GET", "/v1/jobs/a/b")).status, 404);
        assert_eq!(router.dispatch(&req("GET", "/v1/jobs")).status, 404);
    }

    #[test]
    fn reason_phrases_cover_the_service_codes() {
        for (status, phrase) in [
            (200, "OK"),
            (202, "Accepted"),
            (400, "Bad Request"),
            (404, "Not Found"),
            (405, "Method Not Allowed"),
            (429, "Too Many Requests"),
            (500, "Internal Server Error"),
            (503, "Service Unavailable"),
        ] {
            assert_eq!(reason(status), phrase);
        }
        assert_eq!(reason(299), "Unknown");
    }

    #[test]
    fn responses_serialize_with_extra_headers() {
        let bytes = Response::json(429, "{\"code\":\"quota_exceeded\"}")
            .with_header("Retry-After", "2")
            .to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        assert!(
            text.contains("Content-Type: application/json\r\n"),
            "{text}"
        );
        assert!(text.ends_with("{\"code\":\"quota_exceeded\"}"), "{text}");
    }
}
