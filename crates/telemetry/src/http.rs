//! A minimal shared HTTP/1.1 core for the embedded servers.
//!
//! The metrics endpoint and the solve service both speak just enough
//! HTTP for a local scraper or `curl`: one request per connection,
//! bounded reads, typed status/reason mapping, and a method+path
//! routing table with single-segment `{param}` captures. This module
//! factors that plumbing out of [`MetricsServer`] so both servers share
//! one parser, one responder and one hardening story (400 on malformed
//! or oversized input, 405 on a known path with the wrong method, 404
//! otherwise).
//!
//! [`MetricsServer`]: crate::server::MetricsServer

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tsp_trace::json::Json;

/// Hard cap on the request head; anything longer is answered with 400
/// rather than buffered further.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Hard cap on a request body (a TSPLIB payload comfortably fits).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request: the line, lower-cased headers, and the body
/// (read iff the head declared a `Content-Length`).
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method verb exactly as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Absolute request target (always starts with `/`).
    pub path: String,
    /// `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body bytes (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// The `traceparent` request/response header name (W3C Trace Context).
pub const TRACEPARENT: &str = "traceparent";

/// A W3C Trace Context (`traceparent`) value: version `00`, a 128-bit
/// trace id, a 64-bit parent/span id, and the trace flags — all kept
/// as the lowercase-hex strings the header carries.
///
/// The servers *ingest* a caller-supplied context so an external
/// distributed trace flows through every artifact a job leaves
/// (journal lines, recording headers, tagged Chrome traces), and
/// *generate* one when the caller sent none, so every response still
/// carries a correlation id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// 32 lowercase hex digits, never all-zero.
    pub trace_id: String,
    /// 16 lowercase hex digits, never all-zero.
    pub parent_id: String,
    /// 2 lowercase hex digits (`01` = sampled).
    pub flags: String,
}

fn is_lower_hex(s: &str, len: usize) -> bool {
    s.len() == len
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// splitmix64 — the same mixer `tsp_prof::run_id_from_parts` uses, so
/// generated ids are deterministic functions of their seeds.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fold64(parts: &[u64], salt: u64) -> u64 {
    let mut acc = mix64(salt);
    for &p in parts {
        acc = mix64(acc ^ mix64(p));
    }
    if acc == 0 {
        1 // the spec forbids all-zero ids
    } else {
        acc
    }
}

impl TraceContext {
    /// Parse a `traceparent` header value. Only version `00` with
    /// exact field widths and non-zero ids is accepted; anything else
    /// is `None` (the caller then generates a fresh context, per spec).
    pub fn parse(header: &str) -> Option<TraceContext> {
        let mut parts = header.trim().split('-');
        let (version, trace_id, parent_id, flags) =
            (parts.next()?, parts.next()?, parts.next()?, parts.next()?);
        if parts.next().is_some() || version != "00" {
            return None;
        }
        if !is_lower_hex(trace_id, 32) || trace_id.bytes().all(|b| b == b'0') {
            return None;
        }
        if !is_lower_hex(parent_id, 16) || parent_id.bytes().all(|b| b == b'0') {
            return None;
        }
        if !is_lower_hex(flags, 2) {
            return None;
        }
        Some(TraceContext {
            trace_id: trace_id.to_string(),
            parent_id: parent_id.to_string(),
            flags: flags.to_string(),
        })
    }

    /// A deterministic context derived from `parts` (seeds are mixed
    /// with distinct salts for the trace and parent ids), flagged as
    /// sampled. Same parts → same context.
    pub fn generate(parts: &[u64]) -> TraceContext {
        TraceContext {
            trace_id: format!("{:016x}{:016x}", fold64(parts, 0x1), fold64(parts, 0x2)),
            parent_id: format!("{:016x}", fold64(parts, 0x3)),
            flags: "01".to_string(),
        }
    }

    /// The same trace with a new parent/span id derived from `parts` —
    /// what a server puts in its *response* `traceparent`: the
    /// caller's trace id, this hop's span.
    pub fn child(&self, parts: &[u64]) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id.clone(),
            parent_id: format!("{:016x}", fold64(parts, 0x5)),
            flags: self.flags.clone(),
        }
    }

    /// Render the `traceparent` header value.
    pub fn to_header(&self) -> String {
        format!("00-{}-{}-{}", self.trace_id, self.parent_id, self.flags)
    }

    /// The context of an incoming request: its `traceparent` header
    /// when present and valid, otherwise `None`.
    pub fn of_request(req: &Request) -> Option<TraceContext> {
        req.header(TRACEPARENT).and_then(TraceContext::parse)
    }
}

/// A process-unique seed pair for generated trace contexts: wall time
/// plus a monotone counter, so two requests in the same nanosecond
/// still get distinct ids.
pub fn trace_seed() -> [u64; 2] {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    [nanos, COUNTER.fetch_add(1, Ordering::Relaxed)]
}

/// Why a request could not be read. `TooLarge` and `Malformed` are
/// answered with a 400; `Closed` means the peer hung up (or idled out)
/// before sending a single byte — the keep-alive loop's normal exit,
/// answered with nothing at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The head or body exceeded its byte cap.
    TooLarge(&'static str),
    /// The request line/headers/body did not parse as HTTP.
    Malformed(&'static str),
    /// Clean EOF (or read timeout) before any request byte arrived.
    Closed,
}

impl RequestError {
    /// Human-readable body for the 400 response.
    pub fn message(&self) -> &'static str {
        match self {
            RequestError::TooLarge(m) | RequestError::Malformed(m) => m,
            RequestError::Closed => "connection closed\n",
        }
    }
}

/// Read one request off `stream` with bounded head and body sizes.
///
/// The request line must be `METHOD SP /path SP HTTP/x.y` with nothing
/// extra; garbage bytes, truncated lines and non-HTTP preambles are
/// [`RequestError::Malformed`]. A body is read only when the head
/// carries `Content-Length`, and only up to `max_body` bytes.
pub fn read_request(
    stream: &mut impl Read,
    max_head: usize,
    max_body: usize,
) -> Result<Request, RequestError> {
    let mut buf = [0u8; 4096];
    let mut bytes = Vec::new();
    let mut head_end = None;
    loop {
        if let Some(pos) = bytes.windows(4).position(|w| w == b"\r\n\r\n") {
            head_end = Some(pos);
            break;
        }
        if bytes.len() > max_head {
            return Err(RequestError::TooLarge("request head too large\n"));
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let Some(head_end) = head_end else {
        if bytes.is_empty() {
            return Err(RequestError::Closed);
        }
        return Err(RequestError::Malformed("malformed request line\n"));
    };
    let head = String::from_utf8_lossy(&bytes[..head_end]).into_owned();
    let mut lines = head.lines();
    let mut parts = lines.next().unwrap_or_default().split_whitespace();
    let (method, path, version) = (parts.next(), parts.next(), parts.next());
    let (Some(method), Some(path), Some(version)) = (method, path, version) else {
        return Err(RequestError::Malformed("malformed request line\n"));
    };
    if !version.starts_with("HTTP/") || !path.starts_with('/') || parts.next().is_some() {
        return Err(RequestError::Malformed("malformed request line\n"));
    }
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();

    let mut body: Vec<u8> = bytes[head_end + 4..].to_vec();
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>());
    match content_length {
        None => body.clear(),
        Some(Err(_)) => return Err(RequestError::Malformed("invalid Content-Length\n")),
        Some(Ok(len)) => {
            if len > max_body {
                return Err(RequestError::TooLarge("request body too large\n"));
            }
            while body.len() < len {
                match stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => body.extend_from_slice(&buf[..n]),
                    Err(_) => break,
                }
            }
            if body.len() < len {
                return Err(RequestError::Malformed("truncated request body\n"));
            }
            body.truncate(len);
        }
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// The canonical reason phrase for a status code.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One response: status, content type, body, extra headers.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code (reason phrase derived via [`reason`]).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
    /// Extra headers appended verbatim (e.g. `Retry-After`).
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A response with an explicit content type.
    pub fn new(status: u16, content_type: &str, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: content_type.to_string(),
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(status, "text/plain; charset=utf-8", body)
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response::new(status, "application/json", body)
    }

    /// Append an extra header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serialize the response (status line, headers, body) for a
    /// connection that closes after this response.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with_connection("close")
    }

    /// Serialize with an explicit `Connection` header value — the
    /// keep-alive loop passes `"keep-alive"` while the connection's
    /// request budget lasts and `"close"` on the final response.
    pub fn to_bytes_with_connection(&self, connection: &str) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            connection,
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(self.body.as_bytes());
        bytes
    }

    /// Write the response to `stream`. A peer that hung up mid-response
    /// is its own problem.
    pub fn write(&self, stream: &mut impl Write) {
        let _ = stream.write_all(&self.to_bytes());
    }
}

/// One segment of a route pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Literal(String),
    Param(String),
}

/// Path parameters captured by `{param}` segments.
#[derive(Debug, Clone, Default)]
pub struct Params(Vec<(String, String)>);

impl Params {
    /// The captured value of `{name}`, if the matched route had one.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

type Handler = Box<dyn Fn(&Request, &Params) -> Response + Send + Sync>;

struct Route {
    method: String,
    segments: Vec<Segment>,
    handler: Handler,
}

/// A method+path routing table. Patterns are `/`-separated literals
/// with optional `{param}` captures (`/v1/jobs/{id}`); dispatch picks
/// the first route whose method and pattern both match, answers 405
/// when only the method differs, and 404 otherwise.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let table: Vec<String> = self
            .routes
            .iter()
            .map(|r| format!("{} {}", r.method, render_pattern(&r.segments)))
            .collect();
        f.debug_struct("Router").field("routes", &table).finish()
    }
}

fn render_pattern(segments: &[Segment]) -> String {
    let mut s = String::new();
    for seg in segments {
        s.push('/');
        match seg {
            Segment::Literal(l) => s.push_str(l),
            Segment::Param(p) => {
                s.push('{');
                s.push_str(p);
                s.push('}');
            }
        }
    }
    if s.is_empty() {
        s.push('/');
    }
    s
}

fn parse_pattern(pattern: &str) -> Vec<Segment> {
    pattern
        .split('/')
        .filter(|s| !s.is_empty())
        .map(
            |s| match s.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
                Some(name) => Segment::Param(name.to_string()),
                None => Segment::Literal(s.to_string()),
            },
        )
        .collect()
}

fn match_segments(segments: &[Segment], path: &str) -> Option<Params> {
    let parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    if parts.len() != segments.len() {
        return None;
    }
    let mut params = Vec::new();
    for (seg, part) in segments.iter().zip(&parts) {
        match seg {
            Segment::Literal(l) if l == part => {}
            Segment::Literal(_) => return None,
            Segment::Param(name) => params.push((name.clone(), (*part).to_string())),
        }
    }
    Some(Params(params))
}

impl Router {
    /// An empty table.
    pub fn new() -> Router {
        Router::default()
    }

    /// Register `handler` for `method pattern` (builder style).
    pub fn route(
        mut self,
        method: &str,
        pattern: &str,
        handler: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes.push(Route {
            method: method.to_ascii_uppercase(),
            segments: parse_pattern(pattern),
            handler: Box::new(handler),
        });
        self
    }

    /// Resolve `req` against the table.
    pub fn dispatch(&self, req: &Request) -> Response {
        let mut allowed: Vec<&str> = Vec::new();
        for route in &self.routes {
            if let Some(params) = match_segments(&route.segments, &req.path) {
                if route.method == req.method {
                    return (route.handler)(req, &params);
                }
                if !allowed.contains(&route.method.as_str()) {
                    allowed.push(&route.method);
                }
            }
        }
        if allowed.is_empty() {
            Response::text(404, "not found\n")
        } else {
            // RFC 9110 §15.5.6: a 405 must name the methods that *are*
            // allowed on the resource.
            allowed.sort_unstable();
            Response::text(405, "method not allowed\n").with_header("Allow", allowed.join(", "))
        }
    }
}

/// A structured HTTP access log: one JSON line per handled request
/// (method, path, status, response bytes, wall seconds, trace id),
/// written through a shared handle and flushed per line — the same
/// line-atomic contract as the journal writers, so a crash never
/// leaves a torn record. Opt-in: servers spawned without one log
/// nothing and pay nothing.
#[derive(Clone)]
pub struct AccessLog {
    out: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessLog").finish_non_exhaustive()
    }
}

impl AccessLog {
    /// Log to a file at `path` (created or truncated).
    pub fn create(path: impl AsRef<std::path::Path>) -> io::Result<AccessLog> {
        Ok(AccessLog::from_writer(std::fs::File::create(path)?))
    }

    /// Log to any writer (tests use an in-memory buffer).
    pub fn from_writer(w: impl Write + Send + 'static) -> AccessLog {
        AccessLog {
            out: Arc::new(Mutex::new(Box::new(w))),
        }
    }

    /// Append one access record; the line is written and flushed under
    /// the lock so concurrent connection threads never interleave.
    pub fn log(&self, req: &Request, response: &Response, wall: Duration, trace_id: &str) {
        let mut line = Json::obj();
        line.set("method", req.method.as_str().into());
        line.set("path", req.path.as_str().into());
        line.set("status", u64::from(response.status).into());
        line.set("bytes", (response.body.len() as u64).into());
        line.set("wall_seconds", wall.as_secs_f64().into());
        if !trace_id.is_empty() {
            line.set("trace_id", trace_id.into());
        }
        let mut out = self.out.lock().expect("access log lock");
        let _ = out.write_all(format!("{line}\n").as_bytes());
        let _ = out.flush();
    }

    /// Flush the underlying writer explicitly (also happens per line
    /// and when the last handle drops).
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().expect("access log lock").flush()
    }
}

impl Drop for AccessLog {
    fn drop(&mut self) {
        // Only the final handle flushes; intermediate clones share the
        // same writer.
        if Arc::strong_count(&self.out) == 1 {
            if let Ok(mut out) = self.out.lock() {
                let _ = out.flush();
            }
        }
    }
}

/// A bounded-concurrency embedded HTTP server: one accept loop, one
/// short-lived thread per connection, up to
/// [`MAX_KEEPALIVE_REQUESTS`] requests per connection (HTTP/1.1
/// keep-alive; `Connection: close` is honored per request). Shuts
/// down (and joins the accept loop) on drop.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serve `router` from a background thread named `name`.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        name: &str,
        router: Arc<Router>,
    ) -> io::Result<HttpServer> {
        HttpServer::spawn_with_log(addr, name, router, None)
    }

    /// Like [`HttpServer::spawn`], additionally writing one
    /// [`AccessLog`] line per handled request.
    pub fn spawn_with_log(
        addr: impl ToSocketAddrs,
        name: &str,
        router: Arc<Router>,
        access_log: Option<AccessLog>,
    ) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        let router = router.clone();
                        let log = access_log.clone();
                        // Connection threads are short-lived (one
                        // request each); a spawn failure just drops the
                        // connection.
                        let _ = std::thread::Builder::new()
                            .name("tsp-http-conn".into())
                            .spawn(move || handle_connection(stream, &router, log.as_ref()));
                    }
                }
            })?;
        Ok(HttpServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (port resolved when spawned with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join its thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept() so the loop observes the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Most requests one keep-alive connection may issue before the
/// server answers `Connection: close` and hangs up — a bound so no
/// single client pins a connection thread forever.
pub const MAX_KEEPALIVE_REQUESTS: usize = 64;

fn handle_connection(mut stream: TcpStream, router: &Router, access_log: Option<&AccessLog>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(2000)));
    for served in 1..=MAX_KEEPALIVE_REQUESTS {
        let started = Instant::now();
        let (request, response) = match read_request(&mut stream, MAX_HEAD_BYTES, MAX_BODY_BYTES) {
            Ok(req) => {
                let resp = router.dispatch(&req);
                (Some(req), resp)
            }
            // The peer hung up (or idled past the read timeout)
            // between requests: nothing to answer.
            Err(RequestError::Closed) => return,
            Err(e) => (None, Response::text(400, e.message())),
        };
        // HTTP/1.1 defaults to keep-alive; honor an explicit
        // `Connection: close`, close after errors, and close once the
        // per-connection request budget is spent.
        let keep_alive = served < MAX_KEEPALIVE_REQUESTS
            && request.as_ref().is_some_and(|req| {
                req.header("connection")
                    .is_none_or(|v| !v.eq_ignore_ascii_case("close"))
            });
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let _ = stream.write_all(&response.to_bytes_with_connection(connection));
        if let (Some(log), Some(req)) = (access_log, request.as_ref()) {
            let trace_id = TraceContext::of_request(req)
                .map(|t| t.trace_id)
                .unwrap_or_default();
            log.log(req, &response, started.elapsed(), &trace_id);
        }
        if !keep_alive {
            return;
        }
    }
}

/// Blocking one-shot HTTP request against a local server; returns
/// `(status code, response head, body)`. Used by the smoke examples
/// and tests to exercise the servers without an external client.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    content_type: &str,
    body: &str,
) -> io::Result<(u16, String, String)> {
    http_request_with_headers(addr, method, path, content_type, body, &[])
}

/// [`http_request`] with extra request headers (e.g. `traceparent`)
/// appended to the head verbatim.
pub fn http_request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    content_type: &str,
    body: &str,
    extra: &[(&str, &str)],
) -> io::Result<(u16, String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    if !body.is_empty() {
        head.push_str(&format!(
            "Content-Type: {content_type}\r\nContent-Length: {}\r\n",
            body.len()
        ));
    }
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body split"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no status code"))?;
    Ok((status, head.to_string(), body.to_string()))
}

/// A client that keeps one TCP connection open across requests —
/// every call after the first saves a connection setup. The server
/// bounds reuse at [`MAX_KEEPALIVE_REQUESTS`]; when it answers
/// `Connection: close` (or hangs up) the next call reconnects
/// transparently and the saved-setup count stops growing.
#[derive(Debug)]
pub struct KeepAliveClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    /// Bytes read past the previous response (normally empty — the
    /// protocol here is strictly request/response).
    leftover: Vec<u8>,
    requests: u64,
    connects: u64,
}

impl KeepAliveClient {
    /// A client for `addr`; connects lazily on the first request.
    pub fn new(addr: SocketAddr) -> KeepAliveClient {
        KeepAliveClient {
            addr,
            stream: None,
            leftover: Vec::new(),
            requests: 0,
            connects: 0,
        }
    }

    /// Requests issued so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// TCP connections actually opened.
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Connection setups avoided by reuse (`requests - connects`).
    pub fn saved_connects(&self) -> u64 {
        self.requests.saturating_sub(self.connects)
    }

    /// Issue one request on the pooled connection; returns `(status,
    /// response head, body)` like [`http_request`]. Reconnects once
    /// if the pooled connection turned out to be dead (the server
    /// closed it between requests).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        content_type: &str,
        body: &str,
        extra: &[(&str, &str)],
    ) -> io::Result<(u16, String, String)> {
        self.requests += 1;
        let fresh = self.stream.is_none();
        match self.round_trip(method, path, content_type, body, extra) {
            Ok(out) => Ok(out),
            Err(err) if !fresh => {
                // The pooled connection died (budget spent, idle
                // timeout); retry once on a fresh one.
                self.stream = None;
                self.leftover.clear();
                let _ = err;
                self.round_trip(method, path, content_type, body, extra)
            }
            Err(err) => Err(err),
        }
    }

    fn round_trip(
        &mut self,
        method: &str,
        path: &str,
        content_type: &str,
        body: &str,
        extra: &[(&str, &str)],
    ) -> io::Result<(u16, String, String)> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            self.stream = Some(stream);
            self.connects += 1;
        }
        let stream = self.stream.as_mut().expect("connected above");
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
        if !body.is_empty() {
            head.push_str(&format!(
                "Content-Type: {content_type}\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        for (name, value) in extra {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("Connection: keep-alive\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;

        // Read exactly one framed response: head through \r\n\r\n,
        // then Content-Length body bytes (read_to_string would block
        // until the server closes the connection — the opposite of
        // the point).
        let mut bytes = std::mem::take(&mut self.leftover);
        let mut buf = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = bytes.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            match stream.read(&mut buf)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                n => bytes.extend_from_slice(&buf[..n]),
            }
        };
        let head = String::from_utf8_lossy(&bytes[..head_end]).into_owned();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no status code"))?;
        let content_length: usize = head
            .lines()
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.trim()
                    .eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .unwrap_or(0);
        let body_start = head_end + 4;
        while bytes.len() < body_start + content_length {
            match stream.read(&mut buf)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "truncated response body",
                    ))
                }
                n => bytes.extend_from_slice(&buf[..n]),
            }
        }
        self.leftover = bytes.split_off(body_start + content_length);
        let body = String::from_utf8_lossy(&bytes[body_start..]).into_owned();
        // Honor the server's close decision so the next request
        // reconnects cleanly instead of failing and retrying.
        let closing = head.lines().any(|line| {
            line.split_once(':').is_some_and(|(name, value)| {
                name.trim().eq_ignore_ascii_case("connection")
                    && value.trim().eq_ignore_ascii_case("close")
            })
        });
        if closing {
            self.stream = None;
            self.leftover.clear();
        }
        Ok((status, head, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read(bytes: &[u8]) -> Result<Request, RequestError> {
        read_request(&mut Cursor::new(bytes), MAX_HEAD_BYTES, 1024)
    }

    #[test]
    fn parses_a_get_without_a_body() {
        let req = read(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_a_content_length_body() {
        let req = read(b"POST /v1/solve HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for case in [
            &b"\x16\x03\x01garbage\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /metrics\r\n\r\n",
            b"HELO tsp\r\n\r\n",
            b"GET metrics HTTP/1.1\r\n\r\n",
            b"GET /metrics HTTP/1.1 extra\r\n\r\n",
            b"no head terminator at all",
        ] {
            assert!(
                matches!(read(case), Err(RequestError::Malformed(_))),
                "case {:?}",
                String::from_utf8_lossy(case)
            );
        }
    }

    #[test]
    fn bounded_reads_reject_oversized_input() {
        let mut huge = b"GET /".to_vec();
        huge.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 4096));
        assert!(matches!(read(&huge), Err(RequestError::TooLarge(_))));

        let body_too_big = b"POST /x HTTP/1.1\r\nContent-Length: 4096\r\n\r\n";
        assert!(matches!(read(body_too_big), Err(RequestError::TooLarge(_))));

        let truncated = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(read(truncated), Err(RequestError::Malformed(_))));
    }

    fn req(method: &str, path: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn table() -> Router {
        Router::new()
            .route("GET", "/metrics", |_, _| Response::text(200, "m"))
            .route("POST", "/v1/solve", |_, _| Response::json(202, "{}"))
            .route("GET", "/v1/jobs/{id}", |_, p| {
                Response::text(200, p.get("id").unwrap_or("?"))
            })
            .route("DELETE", "/v1/jobs/{id}", |_, _| Response::text(200, "del"))
    }

    #[test]
    fn routing_matches_methods_paths_and_params() {
        let router = table();
        assert_eq!(router.dispatch(&req("GET", "/metrics")).status, 200);
        assert_eq!(router.dispatch(&req("POST", "/v1/solve")).status, 202);
        let got = router.dispatch(&req("GET", "/v1/jobs/job-7"));
        assert_eq!((got.status, got.body.as_str()), (200, "job-7"));
        assert_eq!(
            router.dispatch(&req("DELETE", "/v1/jobs/job-7")).status,
            200
        );
    }

    #[test]
    fn known_path_wrong_method_is_405_unknown_path_is_404() {
        let router = table();
        // Wrong verb on a known pattern: 405, matching the metrics
        // server's historical behavior.
        assert_eq!(router.dispatch(&req("POST", "/metrics")).status, 405);
        assert_eq!(router.dispatch(&req("PUT", "/v1/jobs/j1")).status, 405);
        // Unknown paths: 404, whatever the verb.
        assert_eq!(router.dispatch(&req("GET", "/nope")).status, 404);
        assert_eq!(router.dispatch(&req("POST", "/nope")).status, 404);
        // Param segments don't match across depths.
        assert_eq!(router.dispatch(&req("GET", "/v1/jobs/a/b")).status, 404);
        assert_eq!(router.dispatch(&req("GET", "/v1/jobs")).status, 404);
    }

    #[test]
    fn reason_phrases_cover_the_service_codes() {
        for (status, phrase) in [
            (200, "OK"),
            (202, "Accepted"),
            (400, "Bad Request"),
            (404, "Not Found"),
            (405, "Method Not Allowed"),
            (429, "Too Many Requests"),
            (500, "Internal Server Error"),
            (503, "Service Unavailable"),
        ] {
            assert_eq!(reason(status), phrase);
        }
        assert_eq!(reason(299), "Unknown");
    }

    #[test]
    fn a_405_names_the_allowed_methods() {
        let router = table();
        let got = router.dispatch(&req("POST", "/metrics"));
        assert_eq!(got.status, 405);
        assert_eq!(allow_header(&got), Some("GET"));
        // Both verbs registered on the jobs pattern, sorted.
        let got = router.dispatch(&req("PUT", "/v1/jobs/j1"));
        assert_eq!(got.status, 405);
        assert_eq!(allow_header(&got), Some("DELETE, GET"));
        // 404s carry no Allow header.
        let got = router.dispatch(&req("GET", "/nope"));
        assert_eq!((got.status, allow_header(&got)), (404, None));
    }

    fn allow_header(resp: &Response) -> Option<&str> {
        resp.headers
            .iter()
            .find(|(n, _)| n == "Allow")
            .map(|(_, v)| v.as_str())
    }

    #[test]
    fn an_empty_param_segment_is_a_404() {
        // `/v1/jobs/` has no id to capture: the empty trailing segment
        // is dropped, the two-part path matches nothing, 404.
        let router = table();
        assert_eq!(router.dispatch(&req("GET", "/v1/jobs/")).status, 404);
        assert_eq!(router.dispatch(&req("DELETE", "/v1/jobs/")).status, 404);
    }

    #[test]
    fn traceparent_round_trips_and_rejects_malformed_values() {
        let header = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
        let ctx = TraceContext::parse(header).expect("valid traceparent");
        assert_eq!(ctx.trace_id, "0af7651916cd43dd8448eb211c80319c");
        assert_eq!(ctx.parent_id, "b7ad6b7169203331");
        assert_eq!(ctx.flags, "01");
        assert_eq!(ctx.to_header(), header);

        for bad in [
            "",
            "garbage",
            // wrong version
            "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
            // short trace id
            "00-0af7651916cd43dd8448eb211c80319-b7ad6b7169203331-01",
            // uppercase hex is invalid per spec
            "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",
            // all-zero ids are invalid
            "00-00000000000000000000000000000000-b7ad6b7169203331-01",
            "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
            // trailing field
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-x",
        ] {
            assert!(TraceContext::parse(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn generated_contexts_are_valid_deterministic_and_seed_sensitive() {
        let a = TraceContext::generate(&[1, 2]);
        assert_eq!(TraceContext::parse(&a.to_header()), Some(a.clone()));
        assert_eq!(TraceContext::generate(&[1, 2]), a);
        assert_ne!(TraceContext::generate(&[1, 3]).trace_id, a.trace_id);

        // A child span keeps the trace id, changes the parent id.
        let child = a.child(&[9]);
        assert_eq!(child.trace_id, a.trace_id);
        assert_ne!(child.parent_id, a.parent_id);
        assert!(TraceContext::parse(&child.to_header()).is_some());

        // Process-unique seeds always differ.
        assert_ne!(trace_seed(), trace_seed());
    }

    #[test]
    fn of_request_reads_the_traceparent_header() {
        let mut request = req("GET", "/metrics");
        assert_eq!(TraceContext::of_request(&request), None);
        request.headers.push((
            TRACEPARENT.into(),
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01".into(),
        ));
        let ctx = TraceContext::of_request(&request).expect("parsed");
        assert_eq!(ctx.trace_id, "0af7651916cd43dd8448eb211c80319c");
    }

    #[test]
    fn access_log_writes_one_json_line_per_request() {
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let log = AccessLog::from_writer(Shared(buf.clone()));
        let mut request = req("POST", "/v1/solve");
        request.headers.push((
            TRACEPARENT.into(),
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01".into(),
        ));
        let response = Response::json(202, "{\"job_id\":\"job-1\"}");
        log.log(
            &request,
            &response,
            Duration::from_millis(3),
            "0af7651916cd43dd8448eb211c80319c",
        );
        log.log(
            &req("GET", "/metrics"),
            &Response::text(200, "m"),
            Duration::ZERO,
            "",
        );
        drop(log);

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        let first = tsp_trace::json::parse(lines[0]).expect("valid json line");
        assert_eq!(first.get("method").unwrap().as_str(), Some("POST"));
        assert_eq!(first.get("path").unwrap().as_str(), Some("/v1/solve"));
        assert_eq!(first.get("status").unwrap().as_f64(), Some(202.0));
        assert_eq!(
            first.get("bytes").unwrap().as_f64(),
            Some(response.body.len() as f64)
        );
        assert!(first.get("wall_seconds").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(
            first.get("trace_id").unwrap().as_str(),
            Some("0af7651916cd43dd8448eb211c80319c")
        );
        // No trace id → the field is omitted, not empty.
        let second = tsp_trace::json::parse(lines[1]).expect("valid json line");
        assert!(second.get("trace_id").is_none());
    }

    #[test]
    fn a_live_server_logs_requests_and_rejects_oversized_bodies() {
        let dir = std::env::temp_dir().join(format!(
            "tsp-http-access-{}-{:x}",
            std::process::id(),
            trace_seed()[1]
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("access.jsonl");
        let log = AccessLog::create(&log_path).unwrap();
        let server = HttpServer::spawn_with_log(
            "127.0.0.1:0",
            "tsp-http-test",
            Arc::new(table()),
            Some(log),
        )
        .unwrap();
        let addr = server.addr();

        let (status, _, _) = http_request_with_headers(
            addr,
            "GET",
            "/metrics",
            "",
            "",
            &[(
                TRACEPARENT,
                "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
            )],
        )
        .unwrap();
        assert_eq!(status, 200);

        // A body over MAX_BODY_BYTES is refused with 400 from the
        // declared Content-Length alone, before any handler runs (and
        // never reaches the access log: the request could not be
        // read). Sent raw so the test need not stream 4 MB into a
        // socket the server has already closed.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                format!(
                    "POST /v1/solve HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .unwrap();
        let mut rejected = String::new();
        let _ = stream.read_to_string(&mut rejected);
        assert!(rejected.starts_with("HTTP/1.1 400 "), "{rejected}");
        assert!(rejected.ends_with("request body too large\n"), "{rejected}");

        // 405 over the wire carries the Allow header.
        let (status, head, _) = http_request(addr, "POST", "/metrics", "", "").unwrap();
        assert_eq!(status, 405);
        assert!(head.contains("Allow: GET"), "{head}");

        server.shutdown();
        let text = std::fs::read_to_string(&log_path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "only readable requests are logged: {text}");
        let first = tsp_trace::json::parse(lines[0]).unwrap();
        assert_eq!(
            first.get("trace_id").unwrap().as_str(),
            Some("0af7651916cd43dd8448eb211c80319c")
        );
        let second = tsp_trace::json::parse(lines[1]).unwrap();
        assert_eq!(second.get("status").unwrap().as_f64(), Some(405.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_alive_reuses_one_connection_across_requests() {
        let server =
            HttpServer::spawn("127.0.0.1:0", "tsp-http-keepalive", Arc::new(table())).unwrap();
        let mut client = KeepAliveClient::new(server.addr());
        for i in 0..10 {
            let (status, head, body) = client.request("GET", "/v1/jobs/j7", "", "", &[]).unwrap();
            assert_eq!(status, 200, "request {i}");
            assert_eq!(body, "j7");
            assert!(head.contains("Connection: keep-alive"), "{head}");
        }
        let (status, _, body) = client
            .request("POST", "/v1/solve", "application/json", "{}", &[])
            .unwrap();
        assert_eq!(status, 202);
        assert_eq!(body, "{}");
        assert_eq!(client.requests(), 11);
        assert_eq!(client.connects(), 1, "every request rode one socket");
        assert_eq!(client.saved_connects(), 10);
        server.shutdown();
    }

    #[test]
    fn keep_alive_budget_is_bounded_and_the_client_reconnects() {
        let server =
            HttpServer::spawn("127.0.0.1:0", "tsp-http-budget", Arc::new(table())).unwrap();
        let mut client = KeepAliveClient::new(server.addr());
        for i in 1..=MAX_KEEPALIVE_REQUESTS {
            let (_, head, _) = client.request("GET", "/metrics", "", "", &[]).unwrap();
            let expect = if i < MAX_KEEPALIVE_REQUESTS {
                "Connection: keep-alive"
            } else {
                // The budget's last response warns the client off.
                "Connection: close"
            };
            assert!(head.contains(expect), "request {i}: {head}");
        }
        assert_eq!(client.connects(), 1);
        // The next request transparently opens connection #2.
        let (status, _, _) = client.request("GET", "/metrics", "", "", &[]).unwrap();
        assert_eq!(status, 200);
        assert_eq!(client.connects(), 2);
        assert_eq!(
            client.saved_connects(),
            MAX_KEEPALIVE_REQUESTS as u64 - 1,
            "reuse saved all but the two real connects"
        );
        server.shutdown();
    }

    #[test]
    fn explicit_connection_close_is_honored_per_request() {
        let server = HttpServer::spawn("127.0.0.1:0", "tsp-http-close", Arc::new(table())).unwrap();
        // The one-shot helper asks for close and drains to EOF — if
        // the server kept the connection open this would hang until
        // the read timeout instead of returning promptly.
        let (status, head, _) = http_request(server.addr(), "GET", "/metrics", "", "").unwrap();
        assert_eq!(status, 200);
        assert!(head.contains("Connection: close"), "{head}");
        server.shutdown();
    }

    #[test]
    fn responses_serialize_with_extra_headers() {
        let bytes = Response::json(429, "{\"code\":\"quota_exceeded\"}")
            .with_header("Retry-After", "2")
            .to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        assert!(
            text.contains("Content-Type: application/json\r\n"),
            "{text}"
        );
        assert!(text.ends_with("{\"code\":\"quota_exceeded\"}"), "{text}");
    }
}
