//! The per-run convergence journal: an append-only stream of
//! quality-over-time records emitted by ILS / multistart / sharded
//! runs, rendered as JSON Lines (one object per line).
//!
//! Like `tsp_trace::Recorder`, a detached journal carries no buffer:
//! recording is one branch on an `Option`. Clones share the buffer,
//! and [`Journal::for_chain`] stamps a clone with a chain id so the
//! records of concurrent multistart chains remain distinguishable in
//! one stream.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use tsp_trace::json::{self, Json};

/// What happened at a journal record's point in the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalEvent {
    /// The initial descent finished; the run's first incumbent.
    Initial,
    /// A perturbed candidate became the new best tour.
    Improved,
    /// A candidate was accepted as the incumbent without improving
    /// the best.
    Accepted,
    /// A candidate was rejected; the incumbent stands.
    Rejected,
    /// Stagnation triggered a restart from the best tour.
    Restart,
    /// The run ended; the record carries the final best.
    Final,
}

impl JournalEvent {
    /// Stable lowercase name used in the JSONL stream and CSV.
    pub fn as_str(self) -> &'static str {
        match self {
            JournalEvent::Initial => "initial",
            JournalEvent::Improved => "improved",
            JournalEvent::Accepted => "accepted",
            JournalEvent::Rejected => "rejected",
            JournalEvent::Restart => "restart",
            JournalEvent::Final => "final",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "initial" => JournalEvent::Initial,
            "improved" => JournalEvent::Improved,
            "accepted" => JournalEvent::Accepted,
            "rejected" => JournalEvent::Rejected,
            "restart" => JournalEvent::Restart,
            "final" => JournalEvent::Final,
            _ => return None,
        })
    }
}

/// One line of the convergence journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Deterministic run id stamping the record (empty = unstamped;
    /// see [`Journal::with_run_id`]). Correlates journal lines with
    /// the trace, recording and profiler artifacts of the same run.
    pub run_id: String,
    /// Distributed trace id stamping the record (empty = unstamped;
    /// see [`Journal::with_trace_id`]). Correlates journal lines with
    /// the external W3C trace that requested the run.
    pub trace_id: String,
    /// Multistart chain the record belongs to (0 for single runs).
    pub chain: u64,
    /// ILS iteration (0 = initial descent).
    pub iteration: u64,
    /// Modeled GPU seconds consumed so far by this chain.
    pub modeled_seconds: f64,
    /// Host wall-clock seconds elapsed so far in this chain.
    pub wall_seconds: f64,
    /// Tour length the event is about (candidate or incumbent).
    pub tour_length: i64,
    /// Relative gap of `tour_length` to the chain's best-so-far:
    /// `(tour_length - best) / best`, 0 when this record *is* the best.
    pub gap_to_best: f64,
    /// What happened.
    pub event: JournalEvent,
}

impl JournalRecord {
    /// The record as one JSON object (insertion-ordered keys).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        if !self.run_id.is_empty() {
            o.set("run_id", Json::from(self.run_id.as_str()));
        }
        if !self.trace_id.is_empty() {
            o.set("trace_id", Json::from(self.trace_id.as_str()));
        }
        o.set("chain", Json::from(self.chain as f64))
            .set("iteration", Json::from(self.iteration as f64))
            .set("modeled_seconds", Json::from(self.modeled_seconds))
            .set("wall_seconds", Json::from(self.wall_seconds))
            .set("tour_length", Json::from(self.tour_length as f64))
            .set("gap_to_best", Json::from(self.gap_to_best))
            .set("event", Json::from(self.event.as_str()));
        o
    }

    /// Parse one journal object back into a record.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let num = |key: &str| {
            j.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("journal record missing numeric {key:?}"))
        };
        let event = j
            .get("event")
            .and_then(Json::as_str)
            .and_then(JournalEvent::from_str)
            .ok_or_else(|| "journal record missing a known event".to_string())?;
        Ok(JournalRecord {
            // Absent in pre-run-id streams: default to unstamped.
            run_id: j
                .get("run_id")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            trace_id: j
                .get("trace_id")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            chain: num("chain")? as u64,
            iteration: num("iteration")? as u64,
            modeled_seconds: num("modeled_seconds")?,
            wall_seconds: num("wall_seconds")?,
            tour_length: num("tour_length")? as i64,
            gap_to_best: num("gap_to_best")?,
            event,
        })
    }
}

/// A cheap, cloneable handle onto a shared record buffer.
#[derive(Debug, Default, Clone)]
pub struct Journal {
    inner: Option<Arc<Mutex<Vec<JournalRecord>>>>,
    /// Chain id stamped onto records pushed through this handle.
    chain: u64,
    /// Run id stamped onto records pushed through this handle (empty =
    /// unstamped).
    run_id: String,
    /// Trace id stamped onto records pushed through this handle (empty
    /// = unstamped).
    trace_id: String,
}

fn lock(buf: &Mutex<Vec<JournalRecord>>) -> MutexGuard<'_, Vec<JournalRecord>> {
    buf.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Journal {
    /// A journal that collects records.
    pub fn attached() -> Self {
        Journal {
            inner: Some(Arc::new(Mutex::new(Vec::new()))),
            chain: 0,
            run_id: String::new(),
            trace_id: String::new(),
        }
    }

    /// A journal that drops everything (same as `Journal::default()`).
    pub fn detached() -> Self {
        Self::default()
    }

    /// `true` when records are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle onto the same buffer that stamps `chain` onto every
    /// record — used by multistart to tell concurrent chains apart.
    pub fn for_chain(&self, chain: u64) -> Journal {
        Journal {
            inner: self.inner.clone(),
            chain,
            run_id: self.run_id.clone(),
            trace_id: self.trace_id.clone(),
        }
    }

    /// A handle onto the same buffer that stamps `run_id` onto every
    /// record — used by the solver to correlate the journal with the
    /// other artifacts of one run.
    pub fn with_run_id(&self, run_id: impl Into<String>) -> Journal {
        Journal {
            inner: self.inner.clone(),
            chain: self.chain,
            run_id: run_id.into(),
            trace_id: self.trace_id.clone(),
        }
    }

    /// A handle onto the same buffer that stamps `trace_id` onto every
    /// record — used by the serving layer to correlate the journal with
    /// the distributed trace that requested the run. The stamp
    /// survives [`Journal::for_chain`] and [`Journal::with_run_id`],
    /// so the solver's internal re-handling keeps it.
    pub fn with_trace_id(&self, trace_id: impl Into<String>) -> Journal {
        Journal {
            inner: self.inner.clone(),
            chain: self.chain,
            run_id: self.run_id.clone(),
            trace_id: trace_id.into(),
        }
    }

    /// The chain id this handle stamps.
    pub fn chain(&self) -> u64 {
        self.chain
    }

    /// The run id this handle stamps (empty = unstamped).
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// The trace id this handle stamps (empty = unstamped).
    pub fn trace_id(&self) -> &str {
        &self.trace_id
    }

    /// Append one record, stamping this handle's chain and run ids
    /// (no-op when detached). The closure only runs when the journal is
    /// attached.
    #[inline]
    pub fn record_with(&self, make: impl FnOnce() -> JournalRecord) {
        if let Some(buf) = &self.inner {
            let mut rec = make();
            rec.chain = self.chain;
            if !self.run_id.is_empty() {
                rec.run_id.clone_from(&self.run_id);
            }
            if !self.trace_id.is_empty() {
                rec.trace_id.clone_from(&self.trace_id);
            }
            lock(buf).push(rec);
        }
    }

    /// Snapshot of all records, in append order (empty when detached).
    pub fn records(&self) -> Vec<JournalRecord> {
        match &self.inner {
            Some(buf) => lock(buf).clone(),
            None => Vec::new(),
        }
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(buf) => lock(buf).len(),
            None => 0,
        }
    }

    /// `true` when nothing has been recorded (always for detached).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole journal as JSON Lines (one object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.records() {
            out.push_str(&rec.to_json().to_string());
            out.push('\n');
        }
        out
    }
}

/// A line-atomic streaming JSONL writer for journal records.
///
/// Each [`JournalWriter::append`] serializes the record to one
/// complete line and hands it to the sink in a single `write_all` —
/// a record is either fully on disk or not at all. The sink is
/// flushed after every line *and* on drop, so a job killed
/// cooperatively mid-solve (cancellation, deadline) can never leave
/// a truncated trailing line behind: whatever made it into the file
/// always parses with [`parse_jsonl`].
pub struct JournalWriter {
    sink: Box<dyn std::io::Write + Send>,
    lines: u64,
}

impl std::fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalWriter")
            .field("lines", &self.lines)
            .finish()
    }
}

impl JournalWriter {
    /// Create (truncating) `path` and stream records into it.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<JournalWriter> {
        Ok(Self::from_writer(std::fs::File::create(path)?))
    }

    /// Stream records into an arbitrary sink.
    pub fn from_writer(sink: impl std::io::Write + Send + 'static) -> JournalWriter {
        JournalWriter {
            sink: Box::new(sink),
            lines: 0,
        }
    }

    /// Append one record as a complete, flushed JSONL line.
    pub fn append(&mut self, rec: &JournalRecord) -> std::io::Result<()> {
        let mut line = rec.to_json().to_string();
        line.push('\n');
        self.sink.write_all(line.as_bytes())?;
        self.sink.flush()?;
        self.lines += 1;
        Ok(())
    }

    /// Append every record of `journal` (a final drain for jobs that
    /// buffered in memory first).
    pub fn append_all(&mut self, journal: &Journal) -> std::io::Result<()> {
        for rec in journal.records() {
            self.append(&rec)?;
        }
        Ok(())
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flush the sink explicitly (also happens per line and on drop).
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.sink.flush()
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        let _ = self.sink.flush();
    }
}

/// Parse a JSONL journal stream back into records; blank lines are
/// skipped, any malformed line is an error.
pub fn parse_jsonl(text: &str) -> Result<Vec<JournalRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = json::parse(line).map_err(|e| format!("line {}: {e:?}", lineno + 1))?;
        out.push(JournalRecord::from_json(&j).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(iteration: u64, length: i64, event: JournalEvent) -> JournalRecord {
        JournalRecord {
            run_id: String::new(),
            trace_id: String::new(),
            chain: 0,
            iteration,
            modeled_seconds: iteration as f64 * 0.25,
            wall_seconds: iteration as f64 * 0.5,
            tour_length: length,
            gap_to_best: 0.0,
            event,
        }
    }

    #[test]
    fn detached_journal_drops_everything() {
        let j = Journal::detached();
        j.record_with(|| panic!("must not run when detached"));
        assert!(j.is_empty());
        assert_eq!(j.to_jsonl(), "");
    }

    #[test]
    fn jsonl_round_trips() {
        let j = Journal::attached();
        j.record_with(|| rec(0, 1000, JournalEvent::Initial));
        j.record_with(|| rec(1, 990, JournalEvent::Improved));
        j.for_chain(3)
            .record_with(|| rec(2, 995, JournalEvent::Rejected));
        let text = j.to_jsonl();
        assert_eq!(text.lines().count(), 3);
        let parsed = parse_jsonl(&text).expect("writer output must parse");
        assert_eq!(parsed, j.records());
        assert_eq!(parsed[2].chain, 3);
    }

    #[test]
    fn for_chain_shares_the_buffer() {
        let j = Journal::attached();
        let c = j.for_chain(7);
        c.record_with(|| rec(0, 100, JournalEvent::Initial));
        assert_eq!(j.len(), 1);
        assert_eq!(j.records()[0].chain, 7);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_jsonl("{\"chain\":0}\n").is_err());
        assert!(parse_jsonl("not json\n").is_err());
    }

    #[test]
    fn run_id_stamps_and_round_trips() {
        let j = Journal::attached().with_run_id("00ff00ff00ff00ff");
        assert_eq!(j.run_id(), "00ff00ff00ff00ff");
        j.record_with(|| rec(0, 1000, JournalEvent::Initial));
        // for_chain inherits the stamp; both ids land on the record.
        j.for_chain(2)
            .record_with(|| rec(1, 990, JournalEvent::Improved));
        let text = j.to_jsonl();
        assert!(text.lines().all(|l| l.contains("\"run_id\"")));
        let parsed = parse_jsonl(&text).expect("stamped output must parse");
        assert_eq!(parsed, j.records());
        assert_eq!(parsed[1].run_id, "00ff00ff00ff00ff");
        assert_eq!(parsed[1].chain, 2);
    }

    #[test]
    fn trace_id_stamps_and_survives_rehandling() {
        let trace = "0af7651916cd43dd8448eb211c80319c";
        let j = Journal::attached().with_trace_id(trace);
        assert_eq!(j.trace_id(), trace);
        j.record_with(|| rec(0, 1000, JournalEvent::Initial));
        // The solver re-derives handles via with_run_id + for_chain;
        // both must keep the trace stamp.
        j.with_run_id("00ff00ff00ff00ff")
            .for_chain(2)
            .record_with(|| rec(1, 990, JournalEvent::Improved));
        let parsed = parse_jsonl(&j.to_jsonl()).expect("stamped output must parse");
        assert_eq!(parsed[0].trace_id, trace);
        assert_eq!(parsed[1].trace_id, trace);
        assert_eq!(parsed[1].run_id, "00ff00ff00ff00ff");
        assert_eq!(parsed[1].chain, 2);
        // Unstamped journals stay byte-compatible: no trace_id key.
        let plain = Journal::attached();
        plain.record_with(|| rec(0, 1000, JournalEvent::Initial));
        assert!(!plain.to_jsonl().contains("trace_id"));
    }

    #[test]
    fn writer_dropped_mid_stream_leaves_only_whole_lines() {
        let path = std::env::temp_dir().join(format!(
            "tsp-journal-writer-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        {
            let mut w = JournalWriter::create(&path).expect("create journal file");
            w.append(&rec(0, 1000, JournalEvent::Initial)).unwrap();
            w.append(&rec(1, 990, JournalEvent::Improved)).unwrap();
            assert_eq!(w.lines(), 2);
            // Dropped here without any finalize call — the abrupt-stop
            // path of a cancelled or deadline-killed job.
        }
        let text = std::fs::read_to_string(&path).expect("read journal file");
        let _ = std::fs::remove_file(&path);
        assert!(text.ends_with('\n'), "no truncated trailing line: {text:?}");
        let parsed = parse_jsonl(&text).expect("every line must parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].tour_length, 990);
    }

    #[test]
    fn unstamped_records_omit_run_id_and_old_streams_parse() {
        let j = Journal::attached();
        j.record_with(|| rec(0, 1000, JournalEvent::Initial));
        let text = j.to_jsonl();
        // Schema stays byte-compatible with pre-run-id journals when
        // nothing is stamped…
        assert!(!text.contains("run_id"));
        // …and pre-run-id lines parse with an empty run id.
        let parsed = parse_jsonl(&text).expect("unstamped output must parse");
        assert_eq!(parsed[0].run_id, "");
    }
}
