//! Live telemetry for the TSP workspace: a lock-light metrics
//! registry with Prometheus text exposition, an embedded scrape
//! server, and a per-run convergence journal.
//!
//! Where `tsp-trace` answers *"what happened?"* after a run (event
//! stream → Chrome trace / `MetricsSnapshot`), this crate answers
//! *"what is happening right now?"*: instrumented layers update
//! shared atomic counters, gauges and histograms that a scraper can
//! read mid-run through [`MetricsServer`], and the [`Journal`]
//! records how tour quality evolves per iteration.
//!
//! The two are deliberately split: the recorder owns a growing event
//! buffer (heavyweight, replayable), the registry owns fixed atomic
//! cells (constant memory, scrapable). Both share the same
//! zero-cost-when-disabled contract — a detached [`Telemetry`] or
//! [`Journal`] handle is one `Option` branch on the hot path.
//!
//! ```
//! use tsp_telemetry::{Telemetry, SECONDS_BUCKETS};
//!
//! let telemetry = Telemetry::attached();
//! let registry = telemetry.registry().unwrap();
//! let launches = registry.counter("tsp_gpu_kernel_launches_total", "Kernel launches");
//! let seconds = registry.histogram("tsp_gpu_kernel_seconds", "Modeled seconds", SECONDS_BUCKETS);
//! launches.inc();
//! seconds.observe(3.2e-4);
//! assert!(telemetry.expose().contains("tsp_gpu_kernel_launches_total 1"));
//! ```

pub mod alerts;
pub mod http;
pub mod journal;
pub mod prometheus;
pub mod quantile;
pub mod registry;
pub mod server;

pub use alerts::{
    parse_alerts_jsonl, ActiveAlert, AlertEngine, AlertRule, AlertState, AlertTransition, Cmp,
    RuleKind, Selector, Severity,
};
pub use http::{
    http_request, http_request_with_headers, trace_seed, AccessLog, HttpServer, KeepAliveClient,
    Params, Request, Response, Router, TraceContext, MAX_KEEPALIVE_REQUESTS, TRACEPARENT,
};
pub use journal::{parse_jsonl, Journal, JournalEvent, JournalRecord, JournalWriter};
pub use prometheus::{parse_text, FamilySummary, CONTENT_TYPE};
pub use quantile::{P2Quantile, RollingQuantiles, LATENCY_QUANTILES};
pub use registry::{
    exponential_buckets, Counter, Gauge, Histogram, MetricKind, Registry, Telemetry, DELTA_BUCKETS,
    SECONDS_BUCKETS,
};
pub use server::{http_get, MetricsServer};
