//! Prometheus text exposition format 0.0.4: a deterministic writer
//! for the registry, plus a small strict parser used by the smoke
//! tests to prove a scraped payload is well-formed.
//!
//! The writer orders families by name and samples by label set (both
//! `BTreeMap`s), so two exposures of the same registry state are
//! byte-identical — which is what lets a golden file pin the format.

use crate::registry::{Family, Instrument, Labels};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The content type a conforming scrape endpoint must declare.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Render `{k="v",...}`, with an optional trailing `le` pair; empty
/// label sets render as nothing.
fn fmt_labels(labels: &Labels, le: Option<f64>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        pairs.push(format!("le=\"{}\"", fmt_value(le)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

pub(crate) fn expose(families: &BTreeMap<String, Family>) -> String {
    let mut out = String::new();
    for (name, family) in families {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
        let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
        for (labels, inst) in &family.samples {
            match inst {
                Instrument::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        fmt_labels(labels, None),
                        fmt_value(c.value())
                    );
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        fmt_labels(labels, None),
                        fmt_value(g.value())
                    );
                }
                Instrument::Histogram(h) => {
                    let cumulative = h.cumulative_counts();
                    for (i, &bound) in h.bounds().iter().enumerate() {
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            fmt_labels(labels, Some(bound)),
                            cumulative[i]
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {}",
                        fmt_labels(labels, Some(f64::INFINITY)),
                        cumulative[h.bounds().len()]
                    );
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        fmt_labels(labels, None),
                        fmt_value(h.sum())
                    );
                    let _ = writeln!(
                        out,
                        "{name}_count{} {}",
                        fmt_labels(labels, None),
                        h.count()
                    );
                }
            }
        }
    }
    out
}

/// One family seen while parsing an exposition payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilySummary {
    /// Family name from its `# TYPE` line.
    pub name: String,
    /// The declared kind (`counter`, `gauge`, `histogram`, ...).
    pub kind: String,
    /// Number of sample lines attributed to the family.
    pub samples: usize,
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s.parse().map_err(|_| format!("bad sample value {s:?}")),
    }
}

/// Parse `name[{labels}] value` into its parts.
fn parse_sample(line: &str) -> Result<(String, Labels, f64), String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unterminated label set: {line:?}"))?;
            (&line[..brace], {
                let labels = &line[brace + 1..close];
                let value = line[close + 1..].trim();
                (Some(labels), value)
            })
        }
        None => {
            let mut it = line.splitn(2, ' ');
            let name = it.next().unwrap_or_default();
            let value = it.next().unwrap_or_default().trim();
            (name, (None, value))
        }
    };
    let (labels_src, value_src) = rest;
    if !valid_metric_name(name_part) {
        return Err(format!("invalid metric name {name_part:?}"));
    }
    let mut labels = Vec::new();
    if let Some(src) = labels_src {
        let mut chars = src.chars().peekable();
        while chars.peek().is_some() {
            let mut key = String::new();
            for c in chars.by_ref() {
                if c == '=' {
                    break;
                }
                key.push(c);
            }
            if !valid_metric_name(&key) {
                return Err(format!("invalid label name {key:?} in {line:?}"));
            }
            if chars.next() != Some('"') {
                return Err(format!("label value must be quoted in {line:?}"));
            }
            let mut value = String::new();
            loop {
                match chars.next() {
                    Some('\\') => match chars.next() {
                        Some('\\') => value.push('\\'),
                        Some('"') => value.push('"'),
                        Some('n') => value.push('\n'),
                        other => return Err(format!("bad escape {other:?} in {line:?}")),
                    },
                    Some('"') => break,
                    Some(c) => value.push(c),
                    None => return Err(format!("unterminated label value in {line:?}")),
                }
            }
            labels.push((key, value));
            match chars.next() {
                Some(',') | None => {}
                Some(c) => {
                    return Err(format!(
                        "expected ',' between labels, got {c:?} in {line:?}"
                    ))
                }
            }
        }
    }
    let value = parse_value(value_src)?;
    Ok((name_part.to_string(), labels, value))
}

/// Strictly parse a text-format 0.0.4 payload.
///
/// Every sample line must follow a `# TYPE` declaration for its
/// family (histogram samples may use the `_bucket`/`_sum`/`_count`
/// suffixes), histograms must carry a `+Inf` bucket with
/// non-decreasing cumulative counts, and `_count` must equal the
/// `+Inf` bucket. Returns one [`FamilySummary`] per family, in
/// payload order.
pub fn parse_text(text: &str) -> Result<Vec<FamilySummary>, String> {
    let mut order: Vec<String> = Vec::new();
    let mut kinds: BTreeMap<String, String> = BTreeMap::new();
    let mut sample_counts: BTreeMap<String, usize> = BTreeMap::new();
    // (family, labels-without-le) -> sorted bucket samples and counts.
    let mut buckets: BTreeMap<(String, Labels), Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, Labels), f64> = BTreeMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut it = decl.splitn(2, ' ');
                let name = it.next().unwrap_or_default().to_string();
                let kind = it.next().unwrap_or_default().to_string();
                if !valid_metric_name(&name) {
                    return Err(err(format!("invalid family name {name:?}")));
                }
                if !matches!(
                    kind.as_str(),
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(err(format!("unknown metric kind {kind:?}")));
                }
                if kinds.insert(name.clone(), kind).is_some() {
                    return Err(err(format!("duplicate TYPE for {name}")));
                }
                order.push(name);
            } else if let Some(decl) = comment.strip_prefix("HELP ") {
                let name = decl.split(' ').next().unwrap_or_default();
                if !valid_metric_name(name) {
                    return Err(err(format!("invalid family name {name:?}")));
                }
            }
            // Other comments are legal and ignored.
            continue;
        }
        let (name, labels, value) = parse_sample(line).map_err(err)?;
        // Attribute the sample to a declared family.
        let family = if kinds.contains_key(&name) {
            name.clone()
        } else {
            let stripped = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| name.strip_suffix(suffix).map(|f| (f.to_string(), *suffix)));
            match stripped {
                Some((f, suffix)) if kinds.get(&f).map(String::as_str) == Some("histogram") => {
                    let mut base = labels.clone();
                    if suffix == "_bucket" {
                        let le_pos = base.iter().position(|(k, _)| k == "le").ok_or_else(|| {
                            err(format!("histogram bucket without le label: {line:?}"))
                        })?;
                        let (_, le) = base.remove(le_pos);
                        let le = parse_value(&le).map_err(err)?;
                        buckets
                            .entry((f.clone(), base))
                            .or_default()
                            .push((le, value));
                    } else if suffix == "_count" {
                        counts.insert((f.clone(), base), value);
                    }
                    f
                }
                _ => return Err(err(format!("sample {name:?} has no preceding # TYPE"))),
            }
        };
        *sample_counts.entry(family).or_insert(0) += 1;
    }

    for ((family, labels), mut series) in buckets {
        series.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le bounds are ordered"));
        let last = series.last().expect("non-empty by construction");
        if last.0 != f64::INFINITY {
            return Err(format!("histogram {family} is missing its +Inf bucket"));
        }
        for w in series.windows(2) {
            if w[0].1 > w[1].1 {
                return Err(format!(
                    "histogram {family} has decreasing cumulative buckets"
                ));
            }
        }
        match counts.get(&(family.clone(), labels)) {
            Some(&count) if count == last.1 => {}
            Some(&count) => {
                return Err(format!(
                    "histogram {family}: _count {count} != +Inf bucket {}",
                    last.1
                ))
            }
            None => return Err(format!("histogram {family} is missing _count")),
        }
    }

    Ok(order
        .into_iter()
        .map(|name| FamilySummary {
            kind: kinds[&name].clone(),
            samples: sample_counts.get(&name).copied().unwrap_or(0),
            name,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Registry, SECONDS_BUCKETS};

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("tsp_sweeps_total", "Total descent sweeps")
            .add(3.0);
        r.gauge("tsp_best_length", "Best tour length").set(1234.0);
        let h = r.histogram("tsp_kernel_seconds", "Modeled kernel time", SECONDS_BUCKETS);
        h.observe(2e-6);
        h.observe(5e-4);
        r.counter_with(
            "tsp_lane_jobs_total",
            "Jobs per lane",
            &[("device", "0"), ("stream", "1")],
        )
        .inc();
        r
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let text = sample_registry().expose();
        let families = parse_text(&text).expect("writer output must parse");
        let names: Vec<&str> = families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "tsp_best_length",
                "tsp_kernel_seconds",
                "tsp_lane_jobs_total",
                "tsp_sweeps_total"
            ]
        );
        let hist = families
            .iter()
            .find(|f| f.name == "tsp_kernel_seconds")
            .unwrap();
        assert_eq!(hist.kind, "histogram");
        // 8 finite buckets + +Inf + sum + count.
        assert_eq!(hist.samples, SECONDS_BUCKETS.len() + 3);
    }

    #[test]
    fn exposition_is_deterministic() {
        assert_eq!(sample_registry().expose(), sample_registry().expose());
    }

    #[test]
    fn parser_rejects_untyped_samples() {
        assert!(parse_text("tsp_orphan_total 1\n").is_err());
    }

    #[test]
    fn parser_rejects_missing_inf_bucket() {
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 0.5\nh_count 1\n";
        assert!(parse_text(text).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn parser_rejects_count_mismatch() {
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.5\nh_count 1\n";
        assert!(parse_text(text).unwrap_err().contains("_count"));
    }

    #[test]
    fn parser_rejects_buckets_that_decrease_into_inf() {
        // Cumulative counts must be monotone all the way through the
        // +Inf bucket: a finite bucket above +Inf is a corrupt payload.
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 3\n\
                    h_bucket{le=\"+Inf\"} 2\n\
                    h_sum 1.5\n\
                    h_count 2\n";
        let err = parse_text(text).unwrap_err();
        assert!(err.contains("decreasing"), "{err}");

        // The same counts in a legal order parse.
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 2\n\
                    h_bucket{le=\"+Inf\"} 3\n\
                    h_sum 1.5\n\
                    h_count 3\n";
        parse_text(text).expect("monotone buckets are legal");
    }

    #[test]
    fn newline_label_values_round_trip_through_parse_text() {
        let r = Registry::new();
        r.counter_with("tsp_nl_total", "t", &[("k", "line1\nline2\\end\"q")])
            .inc();
        let text = r.expose();
        // The writer must emit the newline as the two-character escape
        // \n — a raw newline would split the sample line in half.
        assert!(text.contains("line1\\nline2\\\\end\\\"q"), "{text}");
        assert_eq!(text.lines().count(), 3, "{text}"); // HELP, TYPE, sample
        let families = parse_text(&text).expect("escaped output must re-parse");
        assert_eq!(families[0].name, "tsp_nl_total");
        assert_eq!(families[0].samples, 1);
    }

    #[test]
    fn parser_handles_escaped_label_values() {
        let text = "# TYPE f counter\nf{path=\"a\\\\b\\\"c\"} 1\n";
        let families = parse_text(text).expect("escapes are legal");
        assert_eq!(families[0].samples, 1);
    }

    #[test]
    fn label_values_are_escaped_on_the_way_out() {
        let r = Registry::new();
        r.counter_with("tsp_esc_total", "t", &[("k", "a\"b\\c")])
            .inc();
        let text = r.expose();
        assert!(text.contains("a\\\"b\\\\c"), "{text}");
        parse_text(&text).expect("escaped output must re-parse");
    }
}
