//! Rolling quantile estimation for the serving layer, dependency-free.
//!
//! [`P2Quantile`] is the P² (piecewise-parabolic) estimator of Jain &
//! Chlamtac (CACM 1985): it tracks one quantile of a stream in O(1)
//! memory — five markers, no sample buffer — by nudging the middle
//! markers toward their ideal positions with a parabolic (falling back
//! to linear) interpolation after every observation. Until five
//! observations have arrived the estimate is read off the sorted
//! prefix, so small streams are exact.
//!
//! [`RollingQuantiles`] bundles the p50/p95/p99 estimators one latency
//! stage needs; `tsp-serve` keeps one per stage and mirrors the
//! estimates into `tsp_serve_latency_seconds{stage,quantile}` gauges
//! after each terminal job.
//!
//! Like everything else in this crate the estimator is deterministic:
//! the same observation sequence produces bit-identical estimates.

/// P² estimator for a single quantile `p` in `(0, 1)`.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (sorted once warm).
    q: [f64; 5],
    /// Actual marker positions, 1-indexed.
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired-position increments per observation.
    dn: [f64; 5],
    /// Observations seen so far.
    count: u64,
    /// The first five observations, kept sorted (exact small-n path).
    warmup: [f64; 5],
}

impl P2Quantile {
    /// An estimator for quantile `p` (e.g. `0.5`, `0.95`, `0.99`).
    ///
    /// # Panics
    /// When `p` is not strictly between 0 and 1.
    pub fn new(p: f64) -> P2Quantile {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1), got {p}");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            warmup: [0.0; 5],
        }
    }

    /// The quantile this estimator tracks.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feed one observation. Non-finite values are ignored — a NaN
    /// must never poison the marker invariant.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            self.warmup[self.count as usize] = x;
            self.count += 1;
            let filled = &mut self.warmup[..self.count as usize];
            filled.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            if self.count == 5 {
                self.q = self.warmup;
            }
            return;
        }
        self.count += 1;

        // Locate the cell and clamp the extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[k] <= x < q[k+1] for some k in 0..=3.
            (0..4)
                .find(|&i| x < self.q[i + 1])
                .expect("x < q[4] guaranteed above")
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Nudge the three interior markers toward their ideals.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            let room_up = self.n[i + 1] - self.n[i] > 1.0;
            let room_down = self.n[i - 1] - self.n[i] < -1.0;
            if (d >= 1.0 && room_up) || (d <= -1.0 && room_down) {
                let s = if d >= 1.0 { 1.0 } else { -1.0 };
                let parabolic = self.parabolic(i, s);
                self.q[i] = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    self.linear(i, s)
                };
                self.n[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + s * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current estimate, `None` before the first observation.
    ///
    /// Below five observations the marker invariant is not yet
    /// established, so instead of interpolating the estimate is read
    /// **exactly** off the sorted prefix with the standard
    /// nearest-rank definition: the element at index `⌈p·n⌉ − 1`.
    /// One observation answers every quantile with itself; p95/p99 of
    /// 2–4 observations answer the maximum; the p50 of an even prefix
    /// answers the lower middle. From the fifth observation on the
    /// estimate is the P²-interpolated middle marker.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            c @ 1..=4 => {
                let filled = &self.warmup[..c as usize];
                let rank = (self.p * c as f64).ceil() as usize;
                Some(filled[rank.saturating_sub(1).min(filled.len() - 1)])
            }
            _ => Some(self.q[2]),
        }
    }
}

/// The standard quantile set the latency gauges expose.
pub const LATENCY_QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

/// p50/p95/p99 of one observation stream — three [`P2Quantile`]s fed
/// in lockstep.
#[derive(Debug, Clone)]
pub struct RollingQuantiles {
    estimators: [P2Quantile; 3],
}

impl Default for RollingQuantiles {
    fn default() -> Self {
        Self::new()
    }
}

impl RollingQuantiles {
    /// Fresh estimators for [`LATENCY_QUANTILES`].
    pub fn new() -> RollingQuantiles {
        RollingQuantiles {
            estimators: LATENCY_QUANTILES.map(P2Quantile::new),
        }
    }

    /// Feed one observation into every estimator.
    pub fn observe(&mut self, x: f64) {
        for est in &mut self.estimators {
            est.observe(x);
        }
    }

    /// Observations seen so far.
    pub fn count(&self) -> u64 {
        self.estimators[0].count()
    }

    /// `(quantile, estimate)` pairs, skipping quantiles with no data.
    pub fn estimates(&self) -> Vec<(f64, f64)> {
        self.estimators
            .iter()
            .filter_map(|e| e.estimate().map(|v| (e.p(), v)))
            .collect()
    }

    /// Estimate for one of the tracked quantiles, if fed.
    pub fn estimate(&self, p: f64) -> Option<f64> {
        self.estimators
            .iter()
            .find(|e| e.p() == p)
            .and_then(P2Quantile::estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-uniform stream (splitmix64 bit mix).
    fn mixed(i: u64) -> f64 {
        let mut z = i.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    }

    #[test]
    fn small_streams_are_exact_nearest_rank() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.estimate(), None);
        est.observe(10.0);
        assert_eq!(est.estimate(), Some(10.0));
        est.observe(2.0);
        est.observe(6.0);
        // Sorted prefix [2, 6, 10]: the median is exact.
        assert_eq!(est.estimate(), Some(6.0));
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn small_sample_estimates_pin_nearest_rank_for_one_to_four() {
        // One observation answers every quantile with itself.
        for p in LATENCY_QUANTILES {
            let mut est = P2Quantile::new(p);
            est.observe(7.5);
            assert_eq!(est.estimate(), Some(7.5), "p{p} of one observation");
        }
        // Two to four observations: nearest rank ⌈p·n⌉−1 on the
        // sorted prefix. The tails answer the maximum, the median
        // answers the lower middle of an even prefix.
        let stream = [40.0, 10.0, 30.0, 20.0]; // sorted: 10 20 30 40
        let expect_p50 = [40.0, 10.0, 30.0, 20.0]; // n=1..4 medians
        for n in 1..=4usize {
            let (mut p50, mut p95, mut p99) = (
                P2Quantile::new(0.5),
                P2Quantile::new(0.95),
                P2Quantile::new(0.99),
            );
            for &x in &stream[..n] {
                p50.observe(x);
                p95.observe(x);
                p99.observe(x);
            }
            let max = stream[..n].iter().cloned().fold(f64::MIN, f64::max);
            assert_eq!(p50.estimate(), Some(expect_p50[n - 1]), "p50 of {n}");
            assert_eq!(p95.estimate(), Some(max), "p95 of {n}");
            assert_eq!(p99.estimate(), Some(max), "p99 of {n}");
        }
    }

    #[test]
    fn median_of_a_uniform_stream_converges() {
        let mut est = P2Quantile::new(0.5);
        for i in 0..10_000 {
            est.observe(mixed(i));
        }
        let got = est.estimate().unwrap();
        assert!((got - 0.5).abs() < 0.02, "p50 of U(0,1) was {got}");
    }

    #[test]
    fn tail_quantiles_of_a_uniform_stream_converge() {
        let mut q95 = P2Quantile::new(0.95);
        let mut q99 = P2Quantile::new(0.99);
        for i in 0..20_000 {
            q95.observe(mixed(i));
            q99.observe(mixed(i));
        }
        let (p95, p99) = (q95.estimate().unwrap(), q99.estimate().unwrap());
        assert!((p95 - 0.95).abs() < 0.02, "p95 was {p95}");
        assert!((p99 - 0.99).abs() < 0.02, "p99 was {p99}");
    }

    #[test]
    fn markers_stay_ordered_and_estimates_monotone() {
        let mut rq = RollingQuantiles::new();
        for i in 0..5_000 {
            // A skewed stream: mostly small, occasional large spikes.
            let x = if i % 50 == 0 {
                10.0 + mixed(i)
            } else {
                mixed(i)
            };
            rq.observe(x);
            let est = rq.estimates();
            if est.len() == 3 {
                assert!(est[0].1 <= est[1].1 + 1e-12, "p50 <= p95 at {i}: {est:?}");
                assert!(est[1].1 <= est[2].1 + 1e-12, "p95 <= p99 at {i}: {est:?}");
            }
        }
        assert_eq!(rq.count(), 5_000);
        // The spikes are 2% of the stream: p99 must see them, p50 not.
        assert!(rq.estimate(0.5).unwrap() < 1.0);
        assert!(rq.estimate(0.99).unwrap() > 5.0);
    }

    #[test]
    fn identical_streams_give_bit_identical_estimates() {
        let mut a = RollingQuantiles::new();
        let mut b = RollingQuantiles::new();
        for i in 0..2_000 {
            a.observe(mixed(i));
            b.observe(mixed(i));
        }
        assert_eq!(a.estimates(), b.estimates());
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut est = P2Quantile::new(0.5);
        for i in 0..100 {
            est.observe(mixed(i));
            est.observe(f64::NAN);
            est.observe(f64::INFINITY);
        }
        assert_eq!(est.count(), 100);
        assert!(est.estimate().unwrap().is_finite());
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn out_of_range_quantiles_are_refused() {
        let _ = P2Quantile::new(1.0);
    }
}
