//! The metrics registry and its three instrument kinds.
//!
//! Everything here is built from `std` atomics so the hot path never
//! takes a lock: `Counter` and `Gauge` are one shared `AtomicU64`
//! holding `f64` bits, `Histogram` is a fixed vector of bucket
//! counters plus an exact running sum/count. The registry itself is a
//! `Mutex<BTreeMap>` that is only locked when an instrument is
//! registered or the whole registry is exposed — never per
//! observation ("lock-light").
//!
//! `f64` addition is exact for integer values up to 2^53, so counters
//! incremented by whole numbers never drift, and histogram sums
//! accumulate in observation order — on a single-threaded run they
//! are bit-identical to the same fold done after the fact (which is
//! what `telemetry_matches_snapshot` pins against
//! `tsp_trace::MetricsSnapshot`).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Label set attached to one sample: ordered `(key, value)` pairs.
pub type Labels = Vec<(String, String)>;

/// Add `v` to an `AtomicU64` interpreted as `f64` bits (CAS loop).
fn f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// A monotonically increasing value. Cloning shares the cell.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A free-standing counter (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Increment by `v`; negative increments are ignored so the
    /// counter stays monotonic even on caller bugs.
    #[inline]
    pub fn add(&self, v: f64) {
        if v > 0.0 {
            f64_add(&self.cell, v);
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.value())
    }
}

/// A value that can move both ways. Cloning shares the cell.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A free-standing gauge (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.cell.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `v` (may be negative).
    #[inline]
    pub fn add(&self, v: f64) {
        f64_add(&self.cell, v);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({})", self.value())
    }
}

struct HistogramCore {
    /// Upper bounds of the finite buckets, strictly increasing. An
    /// implicit `+Inf` bucket always follows.
    bounds: Vec<f64>,
    /// Cumulative-free per-bucket hit counts; `counts[bounds.len()]`
    /// is the `+Inf` bucket. Exposition accumulates them into the
    /// cumulative form the text format requires.
    counts: Vec<AtomicU64>,
    /// Exact running sum of every observed value (`f64` bits).
    sum: AtomicU64,
    /// Number of observations.
    count: AtomicU64,
}

/// A fixed-bucket histogram with an exact sum and count.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// A free-standing histogram over the given finite bucket upper
    /// bounds (a `+Inf` bucket is appended automatically).
    ///
    /// # Panics
    /// If `bounds` is not strictly increasing or contains a non-finite
    /// value.
    pub fn new(bounds: &[f64]) -> Self {
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "histogram bounds must be strictly increasing");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf is implicit)"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                counts,
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        let idx = self
            .core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.core.bounds.len());
        self.core.counts[idx].fetch_add(1, Ordering::Relaxed);
        f64_add(&self.core.sum, v);
        self.core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Exact sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum.load(Ordering::Relaxed))
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.core.bounds
    }

    /// Cumulative bucket counts, one per finite bound plus the final
    /// `+Inf` bucket (equal to [`Histogram::count`]).
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.core
            .counts
            .iter()
            .map(|c| {
                acc += c.load(Ordering::Relaxed);
                acc
            })
            .collect()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram(count={}, sum={})", self.count(), self.sum())
    }
}

/// `count` exponential bucket bounds starting at `start`, each
/// `factor` times the previous — the usual shape for modeled seconds.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count > 0);
    let mut out = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        out.push(b);
        b *= factor;
    }
    out
}

/// Default bucket bounds for modeled kernel/transfer seconds
/// (1 µs … 10 s, decades).
pub const SECONDS_BUCKETS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// Default bucket bounds for tour-length improvement magnitudes.
pub const DELTA_BUCKETS: &[f64] = &[1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7];

/// The kind of a metric family, as exposed in `# TYPE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Settable gauge.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
}

impl MetricKind {
    /// The lowercase name used by the text format.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

pub(crate) enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

pub(crate) struct Family {
    pub(crate) kind: MetricKind,
    pub(crate) help: String,
    /// Samples keyed by their label set (ordered, deterministic).
    pub(crate) samples: BTreeMap<Labels, Instrument>,
}

/// A collection of metric families with get-or-create registration.
///
/// Handles returned by the `counter`/`gauge`/`histogram` methods share
/// storage with the registry: updating a handle is lock-free, and the
/// registry lock is only taken here (registration) and in
/// [`Registry::expose`].
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn lock(m: &Mutex<BTreeMap<String, Family>>) -> MutexGuard<'_, BTreeMap<String, Family>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn owned_labels(labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut families = lock(&self.families);
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            samples: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} already registered as a {}",
            family.kind.as_str()
        );
        let inst = family
            .samples
            .entry(owned_labels(labels))
            .or_insert_with(make);
        match inst {
            Instrument::Counter(c) => Instrument::Counter(c.clone()),
            Instrument::Gauge(g) => Instrument::Gauge(g.clone()),
            Instrument::Histogram(h) => Instrument::Histogram(h.clone()),
        }
    }

    /// Get or create the unlabeled counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Get or create the counter `name` with the given label set.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.instrument(name, help, labels, MetricKind::Counter, || {
            Instrument::Counter(Counter::new())
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get or create the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Get or create the gauge `name` with the given label set.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.instrument(name, help, labels, MetricKind::Gauge, || {
            Instrument::Gauge(Gauge::new())
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get or create the unlabeled histogram `name` over `bounds`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, &[], bounds)
    }

    /// Get or create the histogram `name` with the given label set.
    /// `bounds` only applies on first creation; later callers share
    /// the existing buckets.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        match self.instrument(name, help, labels, MetricKind::Histogram, || {
            Instrument::Histogram(Histogram::new(bounds))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    fn lookup(&self, name: &str, labels: &[(&str, &str)]) -> Option<Instrument> {
        let families = lock(&self.families);
        let family = families.get(name)?;
        let inst = family.samples.get(&owned_labels(labels))?;
        Some(match inst {
            Instrument::Counter(c) => Instrument::Counter(c.clone()),
            Instrument::Gauge(g) => Instrument::Gauge(g.clone()),
            Instrument::Histogram(h) => Instrument::Histogram(h.clone()),
        })
    }

    /// Current value of the unlabeled counter `name`, if registered.
    pub fn counter_value(&self, name: &str) -> Option<f64> {
        self.counter_value_with(name, &[])
    }

    /// Current value of a labeled counter, if registered.
    pub fn counter_value_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.lookup(name, labels)? {
            Instrument::Counter(c) => Some(c.value()),
            _ => None,
        }
    }

    /// Current value of the unlabeled gauge `name`, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauge_value_with(name, &[])
    }

    /// Current value of a labeled gauge, if registered.
    pub fn gauge_value_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.lookup(name, labels)? {
            Instrument::Gauge(g) => Some(g.value()),
            _ => None,
        }
    }

    /// `(sum, count)` of the unlabeled histogram `name`, if registered.
    pub fn histogram_totals(&self, name: &str) -> Option<(f64, u64)> {
        self.histogram_totals_with(name, &[])
    }

    /// `(sum, count)` of a labeled histogram, if registered.
    pub fn histogram_totals_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<(f64, u64)> {
        match self.lookup(name, labels)? {
            Instrument::Histogram(h) => Some((h.sum(), h.count())),
            _ => None,
        }
    }

    /// Names of all registered families, in exposition order.
    pub fn family_names(&self) -> Vec<String> {
        lock(&self.families).keys().cloned().collect()
    }

    /// The kind of the family `name`, if registered.
    pub fn kind(&self, name: &str) -> Option<MetricKind> {
        lock(&self.families).get(name).map(|f| f.kind)
    }

    /// Every sample of the family `name` as `(labels, value)` pairs in
    /// exposition (label-sorted, deterministic) order. The scalar is
    /// the counter or gauge value; for histograms it is the
    /// observation count — the rate a burn-window cares about. Empty
    /// when the family is not registered.
    ///
    /// This is the read surface the alert evaluator walks: unlike the
    /// `*_value_with` lookups it does not need the label set up front,
    /// so one rule can fan out over every lane/tenant/stage sample of
    /// a family.
    pub fn samples(&self, name: &str) -> Vec<(Labels, f64)> {
        let families = lock(&self.families);
        let Some(family) = families.get(name) else {
            return Vec::new();
        };
        family
            .samples
            .iter()
            .map(|(labels, inst)| {
                let value = match inst {
                    Instrument::Counter(c) => c.value(),
                    Instrument::Gauge(g) => g.value(),
                    Instrument::Histogram(h) => h.count() as f64,
                };
                (labels.clone(), value)
            })
            .collect()
    }

    /// Render the whole registry in Prometheus text format 0.0.4.
    pub fn expose(&self) -> String {
        crate::prometheus::expose(&lock(&self.families))
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Registry({} families)", lock(&self.families).len())
    }
}

/// A cheap, cloneable handle onto a shared [`Registry`] — the
/// telemetry twin of `tsp_trace::Recorder`.
///
/// A detached handle (the default) carries no registry at all:
/// resolving instrument bundles through it is a single branch on an
/// `Option`, so instrumented layers cost nothing when nobody is
/// scraping. Clones of an attached handle share one registry, which
/// is how one scrape covers the device, the descent driver and the
/// ILS loop at once.
#[derive(Debug, Default, Clone)]
pub struct Telemetry {
    registry: Option<Arc<Registry>>,
}

impl Telemetry {
    /// A handle onto a fresh shared registry.
    pub fn attached() -> Self {
        Telemetry {
            registry: Some(Arc::new(Registry::new())),
        }
    }

    /// A handle that records nothing (same as `Telemetry::default()`).
    pub fn detached() -> Self {
        Self::default()
    }

    /// Wrap an existing shared registry.
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        Telemetry {
            registry: Some(registry),
        }
    }

    /// `true` when a registry is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The shared registry, when attached.
    #[inline]
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// Prometheus text exposition (empty string when detached).
    pub fn expose(&self) -> String {
        self.registry
            .as_deref()
            .map(Registry::expose)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic_and_exact() {
        let r = Registry::new();
        let c = r.counter("tsp_test_total", "test");
        for _ in 0..1000 {
            c.inc();
        }
        c.add(-5.0); // ignored
        assert_eq!(c.value(), 1000.0);
        assert_eq!(r.counter_value("tsp_test_total"), Some(1000.0));
    }

    #[test]
    fn handles_share_storage_with_the_registry() {
        let r = Registry::new();
        let a = r.counter("tsp_shared_total", "test");
        let b = r.counter("tsp_shared_total", "test");
        a.inc();
        b.inc();
        assert_eq!(a.value(), 2.0);
    }

    #[test]
    fn labeled_samples_are_distinct() {
        let r = Registry::new();
        let a = r.counter_with("tsp_lane_total", "test", &[("lane", "0")]);
        let b = r.counter_with("tsp_lane_total", "test", &[("lane", "1")]);
        a.inc();
        a.inc();
        b.inc();
        assert_eq!(
            r.counter_value_with("tsp_lane_total", &[("lane", "0")]),
            Some(2.0)
        );
        assert_eq!(
            r.counter_value_with("tsp_lane_total", &[("lane", "1")]),
            Some(1.0)
        );
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(g.value(), 1.5);
    }

    #[test]
    fn histogram_buckets_sum_count() {
        let h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 0.9, 5.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 0.5 + 0.9 + 5.0 + 100.0);
        assert_eq!(h.cumulative_counts(), vec![2, 3, 4]);
    }

    #[test]
    fn boundary_observation_lands_in_lower_bucket() {
        // The text format's le is inclusive.
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(1.0);
        assert_eq!(h.cumulative_counts(), vec![1, 1, 1]);
    }

    #[test]
    fn exponential_buckets_shape() {
        assert_eq!(exponential_buckets(1.0, 10.0, 3), vec![1.0, 10.0, 100.0]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("tsp_kind_total", "test");
        let _ = r.gauge("tsp_kind_total", "test");
    }

    #[test]
    fn detached_telemetry_is_a_single_branch() {
        let t = Telemetry::detached();
        assert!(!t.is_enabled());
        assert!(t.registry().is_none());
        assert_eq!(t.expose(), "");
    }

    #[test]
    fn clones_share_one_registry() {
        let t = Telemetry::attached();
        let u = t.clone();
        t.registry().unwrap().counter("tsp_clone_total", "t").inc();
        assert_eq!(
            u.registry().unwrap().counter_value("tsp_clone_total"),
            Some(1.0)
        );
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 40_000.0);
    }
}
