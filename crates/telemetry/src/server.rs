//! A minimal embedded scrape endpoint: `GET /metrics` renders the
//! attached registry in text format 0.0.4, `GET /healthz` answers
//! `ok`. One accept-loop thread, one connection at a time — enough
//! for a Prometheus scraper or a `curl` against a live run, with no
//! dependency beyond `std::net`.

use crate::prometheus::CONTENT_TYPE;
use crate::registry::Telemetry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The scrape server. Shuts down (and joins its thread) on drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    // A peer that hung up mid-response is its own problem.
    let _ = stream.write_all(response.as_bytes());
}

/// Hard cap on the request head; anything longer is answered with 400
/// rather than buffered further.
const MAX_HEAD_BYTES: usize = 16 * 1024;

fn handle(mut stream: TcpStream, telemetry: &Telemetry) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 4096];
    let mut request = Vec::new();
    let mut oversized = false;
    // Read until the end of the request head (we ignore any body).
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                request.extend_from_slice(&buf[..n]);
                if request.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
                if request.len() > MAX_HEAD_BYTES {
                    oversized = true;
                    break;
                }
            }
            Err(_) => break,
        }
    }
    if oversized {
        return respond(
            &mut stream,
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "request head too large\n",
        );
    }
    // The request line must be `METHOD SP TARGET SP HTTP/x.y` with an
    // absolute path; garbage bytes, truncated lines and non-HTTP
    // preambles all land here and get a 400 instead of a misleading
    // 405/404 (or a hang waiting for more input).
    let head = String::from_utf8_lossy(&request);
    let mut parts = head.lines().next().unwrap_or_default().split_whitespace();
    let (method, path, version) = (parts.next(), parts.next(), parts.next());
    let (Some(method), Some(path), Some(version)) = (method, path, version) else {
        return respond(
            &mut stream,
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "malformed request line\n",
        );
    };
    if !version.starts_with("HTTP/") || !path.starts_with('/') || parts.next().is_some() {
        return respond(
            &mut stream,
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "malformed request line\n",
        );
    }
    match (method, path) {
        ("GET", "/metrics") => respond(&mut stream, "200 OK", CONTENT_TYPE, &telemetry.expose()),
        ("GET", "/healthz") => respond(&mut stream, "200 OK", "text/plain; charset=utf-8", "ok\n"),
        ("GET", _) => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n",
        ),
        _ => respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n",
        ),
    }
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving the given telemetry handle in a background
    /// thread. A detached handle serves an empty exposition.
    pub fn spawn(telemetry: Telemetry, addr: impl ToSocketAddrs) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::Builder::new()
            .name("tsp-metrics".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        handle(stream, &telemetry);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (port resolved when spawned with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept() so the loop observes the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Blocking one-shot HTTP GET against a local server; returns
/// `(status code, body)`. Used by the smoke example and tests to
/// scrape without an external client.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body split"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no status code"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Telemetry;

    #[test]
    fn serves_metrics_and_healthz() {
        let telemetry = Telemetry::attached();
        telemetry
            .registry()
            .unwrap()
            .counter("tsp_smoke_total", "smoke")
            .inc();
        let server = match MetricsServer::spawn(telemetry, "127.0.0.1:0") {
            Ok(s) => s,
            // Sandboxed environments may refuse to bind; the CI smoke
            // job covers the live path.
            Err(e) => {
                eprintln!("skipping: cannot bind a loopback socket: {e}");
                return;
            }
        };
        let (status, body) = http_get(server.addr(), "/metrics").expect("scrape");
        assert_eq!(status, 200);
        assert!(body.contains("tsp_smoke_total 1"), "{body}");
        crate::prometheus::parse_text(&body).expect("payload must parse");

        let (status, body) = http_get(server.addr(), "/healthz").expect("health");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        let (status, _) = http_get(server.addr(), "/nope").expect("404");
        assert_eq!(status, 404);
        server.shutdown();
    }

    /// Write raw bytes at the server and return the status code it
    /// answered with (`None` if it closed without a response).
    fn raw_request(addr: SocketAddr, payload: &[u8]) -> Option<u16> {
        let mut stream = TcpStream::connect(addr).ok()?;
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
        stream.write_all(payload).ok()?;
        let _ = stream.flush();
        let mut response = Vec::new();
        let _ = stream.read_to_end(&mut response);
        let head = String::from_utf8_lossy(&response);
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok())
    }

    fn spawn_or_skip() -> Option<MetricsServer> {
        match MetricsServer::spawn(Telemetry::attached(), "127.0.0.1:0") {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("skipping: cannot bind a loopback socket: {e}");
                None
            }
        }
    }

    #[test]
    fn malformed_requests_get_a_400() {
        let Some(server) = spawn_or_skip() else {
            return;
        };
        // Binary garbage, a truncated request line, a non-HTTP
        // preamble, a relative target, and a request line with trailing
        // junk: all malformed, all 400, none may hang or panic.
        let cases: &[&[u8]] = &[
            b"\x16\x03\x01\x02\x00garbage\xff\xfe\r\n\r\n",
            b"GET\r\n\r\n",
            b"GET /metrics\r\n\r\n",
            b"HELO tsp\r\n\r\n",
            b"GET metrics HTTP/1.1\r\n\r\n",
            b"GET /metrics HTTP/1.1 extra\r\n\r\n",
        ];
        for case in cases {
            assert_eq!(
                raw_request(server.addr(), case),
                Some(400),
                "payload {:?}",
                String::from_utf8_lossy(case)
            );
        }
        // A well-formed non-GET stays a 405, not a 400.
        assert_eq!(
            raw_request(server.addr(), b"POST /metrics HTTP/1.1\r\n\r\n"),
            Some(405)
        );
        server.shutdown();
    }

    #[test]
    fn oversized_request_heads_get_a_400() {
        let Some(server) = spawn_or_skip() else {
            return;
        };
        // A request line well past the head cap, never terminated: the
        // server must answer 400 instead of buffering forever.
        let mut payload = b"GET /".to_vec();
        payload.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 4096));
        assert_eq!(raw_request(server.addr(), &payload), Some(400));
        // And the server is still alive for a legitimate scrape.
        let (status, _) = http_get(server.addr(), "/healthz").expect("alive after abuse");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn concurrent_scrapes_all_succeed() {
        let telemetry = Telemetry::attached();
        telemetry
            .registry()
            .unwrap()
            .counter("tsp_concurrent_total", "concurrency smoke")
            .inc();
        let server = match MetricsServer::spawn(telemetry, "127.0.0.1:0") {
            Ok(s) => s,
            Err(e) => {
                eprintln!("skipping: cannot bind a loopback socket: {e}");
                return;
            }
        };
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let (status, body) = http_get(addr, "/metrics").expect("scrape");
                    (status, body)
                })
            })
            .collect();
        for handle in handles {
            let (status, body) = handle.join().expect("scraper thread");
            assert_eq!(status, 200);
            assert!(body.contains("tsp_concurrent_total 1"), "{body}");
        }
        server.shutdown();
    }
}
