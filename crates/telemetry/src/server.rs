//! A minimal embedded scrape endpoint: `GET /metrics` renders the
//! attached registry in text format 0.0.4, `GET /healthz` answers
//! `ok`. The HTTP plumbing (bounded reads, request-line hardening,
//! routing, status/reason mapping) lives in the shared [`crate::http`]
//! module, which the solve service reuses for its `/v1` endpoints.

use crate::http::{HttpServer, Response, Router};
use crate::prometheus::CONTENT_TYPE;
use crate::registry::Telemetry;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;

/// The scrape server. Shuts down (and joins its thread) on drop.
#[derive(Debug)]
pub struct MetricsServer {
    http: HttpServer,
}

/// The metrics/health routing table, reusable by servers that want to
/// mount the scrape endpoints next to their own routes.
pub fn metrics_router(telemetry: Telemetry) -> Router {
    Router::new()
        .route("GET", "/metrics", move |_, _| {
            Response::new(200, CONTENT_TYPE, telemetry.expose())
        })
        .route("GET", "/healthz", |_, _| Response::text(200, "ok\n"))
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving the given telemetry handle in a background
    /// thread. A detached handle serves an empty exposition.
    pub fn spawn(telemetry: Telemetry, addr: impl ToSocketAddrs) -> io::Result<MetricsServer> {
        let router = Arc::new(metrics_router(telemetry));
        let http = HttpServer::spawn(addr, "tsp-metrics", router)?;
        Ok(MetricsServer { http })
    }

    /// The bound address (port resolved when spawned with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// Stop the accept loop and join the thread.
    pub fn shutdown(self) {
        self.http.shutdown();
    }
}

/// Blocking one-shot HTTP GET against a local server; returns
/// `(status code, body)`. Used by the smoke example and tests to
/// scrape without an external client.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    crate::http::http_request(addr, "GET", path, "", "").map(|(status, _, body)| (status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::MAX_HEAD_BYTES;
    use crate::registry::Telemetry;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    #[test]
    fn serves_metrics_and_healthz() {
        let telemetry = Telemetry::attached();
        telemetry
            .registry()
            .unwrap()
            .counter("tsp_smoke_total", "smoke")
            .inc();
        let server = match MetricsServer::spawn(telemetry, "127.0.0.1:0") {
            Ok(s) => s,
            // Sandboxed environments may refuse to bind; the CI smoke
            // job covers the live path.
            Err(e) => {
                eprintln!("skipping: cannot bind a loopback socket: {e}");
                return;
            }
        };
        let (status, body) = http_get(server.addr(), "/metrics").expect("scrape");
        assert_eq!(status, 200);
        assert!(body.contains("tsp_smoke_total 1"), "{body}");
        crate::prometheus::parse_text(&body).expect("payload must parse");

        let (status, body) = http_get(server.addr(), "/healthz").expect("health");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        let (status, _) = http_get(server.addr(), "/nope").expect("404");
        assert_eq!(status, 404);
        server.shutdown();
    }

    /// Write raw bytes at the server and return the status code it
    /// answered with (`None` if it closed without a response).
    fn raw_request(addr: SocketAddr, payload: &[u8]) -> Option<u16> {
        let mut stream = TcpStream::connect(addr).ok()?;
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
        stream.write_all(payload).ok()?;
        let _ = stream.flush();
        let mut response = Vec::new();
        let _ = stream.read_to_end(&mut response);
        let head = String::from_utf8_lossy(&response);
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok())
    }

    fn spawn_or_skip() -> Option<MetricsServer> {
        match MetricsServer::spawn(Telemetry::attached(), "127.0.0.1:0") {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("skipping: cannot bind a loopback socket: {e}");
                None
            }
        }
    }

    #[test]
    fn malformed_requests_get_a_400() {
        let Some(server) = spawn_or_skip() else {
            return;
        };
        // Binary garbage, a truncated request line, a non-HTTP
        // preamble, a relative target, and a request line with trailing
        // junk: all malformed, all 400, none may hang or panic.
        let cases: &[&[u8]] = &[
            b"\x16\x03\x01\x02\x00garbage\xff\xfe\r\n\r\n",
            b"GET\r\n\r\n",
            b"GET /metrics\r\n\r\n",
            b"HELO tsp\r\n\r\n",
            b"GET metrics HTTP/1.1\r\n\r\n",
            b"GET /metrics HTTP/1.1 extra\r\n\r\n",
        ];
        for case in cases {
            assert_eq!(
                raw_request(server.addr(), case),
                Some(400),
                "payload {:?}",
                String::from_utf8_lossy(case)
            );
        }
        // A well-formed non-GET on a known path stays a 405, not a 400.
        assert_eq!(
            raw_request(server.addr(), b"POST /metrics HTTP/1.1\r\n\r\n"),
            Some(405)
        );
        server.shutdown();
    }

    #[test]
    fn oversized_request_heads_get_a_400() {
        let Some(server) = spawn_or_skip() else {
            return;
        };
        // A request line well past the head cap, never terminated: the
        // server must answer 400 instead of buffering forever.
        let mut payload = b"GET /".to_vec();
        payload.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 4096));
        assert_eq!(raw_request(server.addr(), &payload), Some(400));
        // And the server is still alive for a legitimate scrape.
        let (status, _) = http_get(server.addr(), "/healthz").expect("alive after abuse");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn concurrent_scrapes_all_succeed() {
        let telemetry = Telemetry::attached();
        telemetry
            .registry()
            .unwrap()
            .counter("tsp_concurrent_total", "concurrency smoke")
            .inc();
        let server = match MetricsServer::spawn(telemetry, "127.0.0.1:0") {
            Ok(s) => s,
            Err(e) => {
                eprintln!("skipping: cannot bind a loopback socket: {e}");
                return;
            }
        };
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let (status, body) = http_get(addr, "/metrics").expect("scrape");
                    (status, body)
                })
            })
            .collect();
        for handle in handles {
            let (status, body) = handle.join().expect("scraper thread");
            assert_eq!(status, 200);
            assert!(body.contains("tsp_concurrent_total 1"), "{body}");
        }
        server.shutdown();
    }
}
