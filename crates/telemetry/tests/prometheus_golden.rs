//! Golden-file test for the Prometheus exposition writer: a scripted
//! registry covering all three instrument kinds (with and without
//! labels, including values needing label escapes) must serialize to
//! byte-identical text-format 0.0.4 forever.

use tsp_telemetry::{parse_text, Registry, SECONDS_BUCKETS};

const GOLDEN: &str = include_str!("golden/scripted_registry.prom");

fn scripted_registry() -> Registry {
    let r = Registry::new();

    let sweeps = r.counter("tsp_search_sweeps_total", "Completed descent sweeps");
    sweeps.add(12.0);

    let best = r.gauge("tsp_ils_best_length", "Best tour length seen so far");
    best.set(9216.0);

    let rate = r.gauge("tsp_ils_acceptance_rate", "Accepted / attempted iterations");
    rate.set(0.625);

    let kernel = r.histogram(
        "tsp_gpu_kernel_seconds",
        "Modeled kernel time per launch",
        SECONDS_BUCKETS,
    );
    // Exact binary fractions so the sum is an exact decimal.
    kernel.observe(0.000244140625); // 2^-12
    kernel.observe(0.0001220703125); // 2^-13
    kernel.observe(0.25); // 2^-2

    for (device, stream, jobs) in [(0, 0, 3), (0, 1, 2), (1, 0, 3)] {
        let lane = r.counter_with(
            "tsp_pool_lane_jobs_total",
            "ILS chains executed per pool lane",
            &[
                ("device", device.to_string().as_str()),
                ("stream", stream.to_string().as_str()),
            ],
        );
        lane.add(f64::from(jobs));
    }

    let weird = r.counter_with(
        "tsp_label_escape_total",
        "Label values with quotes, backslashes and newlines survive exposition",
        &[("path", "a\\b\"c\nd")],
    );
    weird.inc();

    r
}

#[test]
fn exposition_matches_golden_bytes() {
    let actual = scripted_registry().expose();
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/scripted_registry.prom"
        );
        std::fs::write(path, &actual).expect("write golden");
    }
    assert_eq!(
        actual, GOLDEN,
        "Prometheus exposition drifted from the committed golden file; \
         if the change is intentional, rerun with REGEN_GOLDEN=1 and \
         review the diff"
    );
}

#[test]
fn golden_is_valid_text_format() {
    let families = parse_text(GOLDEN).expect("golden must be valid text format 0.0.4");
    let names: Vec<&str> = families.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "tsp_gpu_kernel_seconds",
            "tsp_ils_acceptance_rate",
            "tsp_ils_best_length",
            "tsp_label_escape_total",
            "tsp_pool_lane_jobs_total",
            "tsp_search_sweeps_total",
        ],
        "families are exposed in name order"
    );

    let hist = families
        .iter()
        .find(|f| f.name == "tsp_gpu_kernel_seconds")
        .expect("histogram family present");
    assert_eq!(hist.kind, "histogram");
    assert_eq!(
        hist.samples,
        SECONDS_BUCKETS.len() + 3,
        "finite buckets + +Inf + sum + count"
    );

    let lanes = families
        .iter()
        .find(|f| f.name == "tsp_pool_lane_jobs_total")
        .expect("lane family present");
    assert_eq!(lanes.samples, 3, "one sample per labeled lane");

    // The histogram's exact-binary observations produce an exact sum.
    assert!(
        GOLDEN.contains("tsp_gpu_kernel_seconds_sum 0.2503662109375"),
        "histogram sum is exact"
    );
    assert!(GOLDEN.contains("tsp_gpu_kernel_seconds_count 3"));

    // The newline in the label value must be escaped — the golden file
    // stays one sample per line — and must round-trip through the
    // parser back to the raw value.
    assert!(
        GOLDEN.contains(r#"path="a\\b\"c\nd""#),
        "newline label value is escaped in the exposition"
    );
    let escapes = families
        .iter()
        .find(|f| f.name == "tsp_label_escape_total")
        .expect("escape family present");
    assert_eq!(escapes.samples, 1);
}
