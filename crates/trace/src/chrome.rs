//! Chrome Trace Event exporter (load in Perfetto or `chrome://tracing`).
//!
//! ## How modeled time becomes timestamps
//!
//! The simulator produces *durations*, not wall-clock timestamps, so the
//! exporter lays events onto a single synthetic clock, in microseconds:
//! every kernel launch and transfer advances the clock by its modeled
//! duration, serialized in recording order (the simulated device has one
//! stream). Sweep and descent spans open at the current clock and close
//! at the clock their inner device events advanced to; a sweep with *no*
//! device events under it (a CPU engine) advances the clock by its own
//! `SweepCost::modeled_seconds` instead, so CPU and GPU traces share the
//! same time axis.
//!
//! ## Track layout
//!
//! One process (pid 1, named after the recorded device) with four
//! threads: kernels (tid 1), transfers (tid 2), sweeps/descents (tid 3)
//! and ILS iterations (tid 4). Kernels and transfers are complete events
//! (`ph:"X"`); descents, sweeps and iterations are `ph:"B"`/`ph:"E"`
//! pairs; perturbations are instants (`ph:"i"`); the incumbent best
//! length is a counter track (`ph:"C"`).

use crate::event::TraceEvent;
use crate::json::Json;

/// The single process id used by the export.
pub const PID: u64 = 1;
/// Stream-scheduled ops render in their own process per device, so the
/// device × stream grid reads as one track per stream: pid =
/// `STREAM_PID_BASE + device`, tid = `stream + 1`.
pub const STREAM_PID_BASE: u64 = 10;
/// Track of kernel launches.
pub const TID_KERNELS: u64 = 1;
/// Track of PCIe transfers.
pub const TID_TRANSFERS: u64 = 2;
/// Track of descent/sweep spans.
pub const TID_SWEEPS: u64 = 3;
/// Track of ILS iterations.
pub const TID_ILS: u64 = 4;

fn meta_for(pid: u64, name: &str, tid: Option<u64>, value: &str) -> Json {
    let mut e = Json::obj();
    e.set("ph", Json::from("M"))
        .set("name", Json::from(name))
        .set("pid", Json::from(pid));
    if let Some(tid) = tid {
        e.set("tid", Json::from(tid));
    }
    let mut args = Json::obj();
    args.set("name", Json::from(value));
    e.set("args", args);
    e
}

fn meta(name: &str, tid: Option<u64>, value: &str) -> Json {
    meta_for(PID, name, tid, value)
}

fn complete_for(
    pid: u64,
    name: &str,
    cat: &str,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
    args: Json,
) -> Json {
    let mut e = Json::obj();
    e.set("ph", Json::from("X"))
        .set("name", Json::from(name))
        .set("cat", Json::from(cat))
        .set("pid", Json::from(pid))
        .set("tid", Json::from(tid))
        .set("ts", Json::Num(ts_us))
        .set("dur", Json::Num(dur_us))
        .set("args", args);
    e
}

fn complete(name: &str, cat: &str, tid: u64, ts_us: f64, dur_us: f64, args: Json) -> Json {
    complete_for(PID, name, cat, tid, ts_us, dur_us, args)
}

fn begin(name: &str, cat: &str, tid: u64, ts_us: f64, args: Json) -> Json {
    let mut e = Json::obj();
    e.set("ph", Json::from("B"))
        .set("name", Json::from(name))
        .set("cat", Json::from(cat))
        .set("pid", Json::from(PID))
        .set("tid", Json::from(tid))
        .set("ts", Json::Num(ts_us))
        .set("args", args);
    e
}

fn end(tid: u64, ts_us: f64, args: Json) -> Json {
    let mut e = Json::obj();
    e.set("ph", Json::from("E"))
        .set("pid", Json::from(PID))
        .set("tid", Json::from(tid))
        .set("ts", Json::Num(ts_us))
        .set("args", args);
    e
}

/// Serialize `events` as a Chrome Trace Event JSON document, one trace
/// event per line (stable output: same events, same bytes).
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    chrome_trace_impl(events, None, None)
}

/// [`chrome_trace`] plus a leading `run_id` metadata record, so the
/// trace file correlates with the journal, recording and profiler
/// artifacts stamped with the same id. Untagged output is unchanged.
pub fn chrome_trace_tagged(events: &[TraceEvent], run_id: &str) -> String {
    chrome_trace_impl(events, Some(run_id), None)
}

/// [`chrome_trace_tagged`] plus a `trace_id` metadata record carrying
/// the W3C distributed-trace id of the request that triggered the run.
/// An empty `trace_id` emits no extra record, so untraced output is
/// byte-identical to [`chrome_trace_tagged`].
pub fn chrome_trace_with_ids(events: &[TraceEvent], run_id: &str, trace_id: &str) -> String {
    let trace_id = (!trace_id.is_empty()).then_some(trace_id);
    chrome_trace_impl(events, Some(run_id), trace_id)
}

fn chrome_trace_impl(
    events: &[TraceEvent],
    run_id: Option<&str>,
    trace_id: Option<&str>,
) -> String {
    let mut out: Vec<Json> = Vec::new();

    if let Some(id) = run_id {
        out.push(meta("run_id", None, id));
    }
    if let Some(id) = trace_id {
        out.push(meta("trace_id", None, id));
    }

    let process_name = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::Device(info) => Some(format!("{} (modeled)", info.name)),
            _ => None,
        })
        .unwrap_or_else(|| "tsp (modeled)".to_string());
    out.push(meta("process_name", None, &process_name));
    out.push(meta("thread_name", Some(TID_KERNELS), "kernels"));
    out.push(meta("thread_name", Some(TID_TRANSFERS), "transfers"));
    out.push(meta("thread_name", Some(TID_SWEEPS), "local search"));
    out.push(meta("thread_name", Some(TID_ILS), "ILS"));

    // One process per device carrying stream ops, one thread per stream —
    // the device × stream grid of the overlap scheduler. Collected up
    // front so the track metadata precedes the slices.
    let mut stream_tracks: Vec<(u32, u32)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::StreamOp { device, stream, .. } => Some((*device, *stream)),
            _ => None,
        })
        .collect();
    stream_tracks.sort_unstable();
    stream_tracks.dedup();
    let mut last_device = None;
    for &(device, stream) in &stream_tracks {
        let pid = STREAM_PID_BASE + u64::from(device);
        if last_device != Some(device) {
            out.push(meta_for(
                pid,
                "process_name",
                None,
                &format!("device {device} (streams)"),
            ));
            last_device = Some(device);
        }
        out.push(meta_for(
            pid,
            "thread_name",
            Some(u64::from(stream) + 1),
            &format!("stream {stream}"),
        ));
    }

    // The synthetic clock, microseconds.
    let mut clock = 0.0f64;
    let mut sweep_begin = 0.0f64;

    for event in events {
        match event {
            TraceEvent::Device(_) => {}
            TraceEvent::Kernel {
                label,
                seconds,
                grid_dim,
                block_dim,
                counters,
            } => {
                let dur = seconds * 1e6;
                let mut args = Json::obj();
                args.set("grid_dim", Json::from(*grid_dim))
                    .set("block_dim", Json::from(*block_dim))
                    .set("flops", Json::from(counters.flops))
                    .set("shared_bytes", Json::from(counters.shared_bytes))
                    .set("global_bytes", Json::from(counters.global_bytes()))
                    .set("atomic_ops", Json::from(counters.atomic_ops))
                    .set(
                        "arithmetic_intensity",
                        Json::from(counters.arithmetic_intensity()),
                    );
                out.push(complete(label, "kernel", TID_KERNELS, clock, dur, args));
                clock += dur;
            }
            TraceEvent::H2d { bytes, seconds } | TraceEvent::D2h { bytes, seconds } => {
                let name = if matches!(event, TraceEvent::H2d { .. }) {
                    "H2D"
                } else {
                    "D2H"
                };
                let dur = seconds * 1e6;
                let mut args = Json::obj();
                args.set("bytes", Json::from(*bytes));
                out.push(complete(name, "transfer", TID_TRANSFERS, clock, dur, args));
                clock += dur;
            }
            TraceEvent::DescentBegin {
                engine,
                n,
                initial_length,
            } => {
                let mut args = Json::obj();
                args.set("engine", Json::from(engine.as_str()))
                    .set("n", Json::from(*n))
                    .set("initial_length", Json::from(*initial_length));
                out.push(begin("descent", "search", TID_SWEEPS, clock, args));
            }
            TraceEvent::SweepBegin { sweep } => {
                sweep_begin = clock;
                let mut args = Json::obj();
                args.set("sweep", Json::from(*sweep));
                out.push(begin("sweep", "search", TID_SWEEPS, clock, args));
            }
            TraceEvent::SweepEnd {
                sweep,
                cost,
                improving,
                delta,
            } => {
                // Device events already moved the clock; a CPU sweep (no
                // device events) advances it by its own modeled cost.
                clock = clock.max(sweep_begin + cost.modeled_seconds() * 1e6);
                let mut args = Json::obj();
                args.set("sweep", Json::from(*sweep))
                    .set("pairs_checked", Json::from(cost.pairs_checked))
                    .set("improving", Json::from(*improving))
                    .set("delta", Json::from(*delta));
                out.push(end(TID_SWEEPS, clock, args));
            }
            TraceEvent::DescentEnd {
                sweeps,
                final_length,
            } => {
                let mut args = Json::obj();
                args.set("sweeps", Json::from(*sweeps))
                    .set("final_length", Json::from(*final_length));
                out.push(end(TID_SWEEPS, clock, args));
            }
            TraceEvent::IterationBegin { iteration } => {
                let mut args = Json::obj();
                args.set("iteration", Json::from(*iteration));
                out.push(begin("iteration", "ils", TID_ILS, clock, args));
            }
            TraceEvent::Perturbation { kind } => {
                let mut e = Json::obj();
                e.set("ph", Json::from("i"))
                    .set("name", Json::from(format!("perturb: {kind}")))
                    .set("cat", Json::from("ils"))
                    .set("s", Json::from("t"))
                    .set("pid", Json::from(PID))
                    .set("tid", Json::from(TID_ILS))
                    .set("ts", Json::Num(clock));
                out.push(e);
            }
            TraceEvent::IterationEnd {
                iteration,
                candidate_length,
                accepted,
                best_length,
            } => {
                let mut args = Json::obj();
                args.set("iteration", Json::from(*iteration))
                    .set("candidate_length", Json::from(*candidate_length))
                    .set("accepted", Json::from(*accepted));
                out.push(end(TID_ILS, clock, args));
                let mut counter = Json::obj();
                let mut cargs = Json::obj();
                cargs.set("best_length", Json::from(*best_length));
                counter
                    .set("ph", Json::from("C"))
                    .set("name", Json::from("best_length"))
                    .set("pid", Json::from(PID))
                    .set("ts", Json::Num(clock))
                    .set("args", cargs);
                out.push(counter);
            }
            TraceEvent::StreamOp {
                device,
                stream,
                engine,
                label,
                start_seconds,
                seconds,
                bytes,
            } => {
                // Stream ops carry their own scheduler-resolved start
                // times; they never touch the legacy serialized clock.
                let mut args = Json::obj();
                args.set("engine", Json::from(engine.as_str()))
                    .set("bytes", Json::from(*bytes));
                out.push(complete_for(
                    STREAM_PID_BASE + u64::from(*device),
                    label,
                    "stream",
                    u64::from(*stream) + 1,
                    start_seconds * 1e6,
                    seconds * 1e6,
                    args,
                ));
            }
            TraceEvent::StreamSync {
                device,
                streams,
                busy_seconds,
                wall_seconds,
            } => {
                let mut e = Json::obj();
                let mut args = Json::obj();
                args.set("streams", Json::from(*streams))
                    .set("busy_us", Json::Num(busy_seconds * 1e6))
                    .set("wall_us", Json::Num(wall_seconds * 1e6));
                e.set("ph", Json::from("i"))
                    .set("name", Json::from("synchronize"))
                    .set("cat", Json::from("stream"))
                    .set("s", Json::from("p"))
                    .set("pid", Json::from(STREAM_PID_BASE + u64::from(*device)))
                    .set("tid", Json::from(0u64))
                    .set("ts", Json::Num(wall_seconds * 1e6))
                    .set("args", args);
                out.push(e);
            }
        }
    }

    let mut text = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in out.iter().enumerate() {
        if i > 0 {
            text.push_str(",\n");
        }
        text.push_str(&e.to_string());
    }
    text.push_str("\n]}\n");
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DeviceInfo, KernelCounters, SweepCost};
    use crate::json;

    fn device() -> TraceEvent {
        TraceEvent::Device(DeviceInfo {
            name: "TestDev".into(),
            compute_units: 8,
            sustained_gflops: 680.0,
            shared_bandwidth_gbs: 1400.0,
            global_bandwidth_gbs: 192.0,
            pcie_bandwidth_gbs: 2.5,
        })
    }

    #[test]
    fn clock_serializes_device_events() {
        // Durations are exact binary fractions so the µs timestamps are
        // exact decimals.
        let events = vec![
            device(),
            TraceEvent::H2d {
                bytes: 1024,
                seconds: 0.0001220703125, // 2^-13 s = 122.0703125 µs
            },
            TraceEvent::Kernel {
                label: "k1".into(),
                seconds: 0.000244140625, // 2^-12 s = 244.140625 µs
                grid_dim: 2,
                block_dim: 32,
                counters: KernelCounters {
                    flops: 4096,
                    shared_bytes: 2048,
                    global_read_bytes: 1024,
                    global_write_bytes: 0,
                    atomic_ops: 2,
                },
            },
        ];
        let text = chrome_trace(&events);
        let doc = json::parse(&text).expect("exporter output must parse");
        let list = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let kernel = list
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("k1"))
            .expect("kernel event present");
        assert_eq!(kernel.get("ph").and_then(Json::as_str), Some("X"));
        // The kernel starts when the H2D copy ends.
        assert_eq!(kernel.get("ts").and_then(Json::as_f64), Some(122.0703125));
        assert_eq!(kernel.get("dur").and_then(Json::as_f64), Some(244.140625));
    }

    #[test]
    fn tagged_trace_carries_the_run_id_and_untagged_is_unchanged() {
        let events = vec![device()];
        let tagged = chrome_trace_tagged(&events, "00ff00ff00ff00ff");
        let doc = json::parse(&tagged).expect("tagged output must parse");
        let list = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let tag = &list[0];
        assert_eq!(tag.get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(tag.get("name").and_then(Json::as_str), Some("run_id"));
        assert_eq!(
            tag.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("00ff00ff00ff00ff")
        );
        // The untagged export is byte-identical to the tagged one minus
        // its leading metadata record: old goldens stay valid.
        let untagged = chrome_trace(&events);
        assert!(!untagged.contains("run_id"));
        let rest = tagged.replacen(&format!("{tag},\n"), "", 1);
        assert_eq!(rest, untagged);
    }

    #[test]
    fn trace_id_tag_rides_behind_the_run_id_tag() {
        let events = vec![device()];
        let trace = "0af7651916cd43dd8448eb211c80319c";
        let both = chrome_trace_with_ids(&events, "00ff00ff00ff00ff", trace);
        let doc = json::parse(&both).expect("tagged output must parse");
        let list = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(list[0].get("name").and_then(Json::as_str), Some("run_id"));
        assert_eq!(list[1].get("name").and_then(Json::as_str), Some("trace_id"));
        assert_eq!(
            list[1]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some(trace)
        );
        // An empty trace id reduces to the plain tagged export.
        assert_eq!(
            chrome_trace_with_ids(&events, "00ff00ff00ff00ff", ""),
            chrome_trace_tagged(&events, "00ff00ff00ff00ff")
        );
    }

    #[test]
    fn cpu_sweeps_advance_the_clock_by_their_modeled_cost() {
        let events = vec![
            TraceEvent::SweepBegin { sweep: 0 },
            TraceEvent::SweepEnd {
                sweep: 0,
                cost: SweepCost {
                    kernel_seconds: 0.000030517578125, // 2^-15 s
                    ..Default::default()
                },
                improving: false,
                delta: 0,
            },
            TraceEvent::SweepBegin { sweep: 1 },
        ];
        let text = chrome_trace(&events);
        let doc = json::parse(&text).unwrap();
        let list = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let second_begin = list
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .nth(1)
            .unwrap();
        assert_eq!(
            second_begin.get("ts").and_then(Json::as_f64),
            Some(30.517578125)
        );
    }

    #[test]
    fn process_name_defaults_without_a_device_event() {
        let text = chrome_trace(&[TraceEvent::SweepBegin { sweep: 0 }]);
        assert!(text.contains("tsp (modeled)"));
    }

    #[test]
    fn stream_ops_render_on_their_own_device_stream_tracks() {
        let events = vec![
            device(),
            // A legacy kernel: stays on pid 1 and drives the synthetic clock.
            TraceEvent::Kernel {
                label: "legacy".into(),
                seconds: 0.000244140625,
                grid_dim: 1,
                block_dim: 32,
                counters: KernelCounters::default(),
            },
            // Two overlapping stream ops on device 1, streams 0 and 1.
            TraceEvent::StreamOp {
                device: 1,
                stream: 0,
                engine: "compute".into(),
                label: "sweep".into(),
                start_seconds: 0.0,
                seconds: 0.000030517578125,
                bytes: 0,
            },
            TraceEvent::StreamOp {
                device: 1,
                stream: 1,
                engine: "h2d".into(),
                label: "h2d".into(),
                start_seconds: 0.0000152587890625,
                seconds: 0.000030517578125,
                bytes: 4096,
            },
            TraceEvent::StreamSync {
                device: 1,
                streams: 2,
                busy_seconds: 0.00006103515625,
                wall_seconds: 0.0000457763671875,
            },
        ];
        let text = chrome_trace(&events);
        let doc = json::parse(&text).unwrap();
        let list = doc.get("traceEvents").and_then(Json::as_array).unwrap();

        // Stream track metadata: one process per device, one thread per stream.
        assert!(text.contains("device 1 (streams)"));
        assert!(text.contains("stream 0"));
        assert!(text.contains("stream 1"));

        let sweep = list
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("sweep"))
            .expect("stream op present");
        assert_eq!(
            sweep.get("pid").and_then(Json::as_f64),
            Some((STREAM_PID_BASE + 1) as f64)
        );
        assert_eq!(sweep.get("tid").and_then(Json::as_f64), Some(1.0));
        // Stream ops use the scheduler's start time, not the legacy clock.
        assert_eq!(sweep.get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(sweep.get("dur").and_then(Json::as_f64), Some(30.517578125));

        let copy = list
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("h2d"))
            .unwrap();
        assert_eq!(copy.get("tid").and_then(Json::as_f64), Some(2.0));
        assert_eq!(copy.get("ts").and_then(Json::as_f64), Some(15.2587890625));

        // The legacy kernel is untouched: pid 1, clock starts at 0.
        let legacy = list
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("legacy"))
            .unwrap();
        assert_eq!(legacy.get("pid").and_then(Json::as_f64), Some(PID as f64));
        assert_eq!(legacy.get("ts").and_then(Json::as_f64), Some(0.0));

        let sync = list
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("synchronize"))
            .expect("sync instant present");
        assert_eq!(sync.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(
            sync.get("pid").and_then(Json::as_f64),
            Some((STREAM_PID_BASE + 1) as f64)
        );
    }

    #[test]
    fn output_is_deterministic() {
        let events = vec![
            device(),
            TraceEvent::IterationBegin { iteration: 1 },
            TraceEvent::Perturbation {
                kind: "DoubleBridge".into(),
            },
            TraceEvent::IterationEnd {
                iteration: 1,
                candidate_length: 90,
                accepted: true,
                best_length: 90,
            },
        ];
        assert_eq!(chrome_trace(&events), chrome_trace(&events));
    }
}
