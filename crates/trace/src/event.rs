//! The structured event schema shared by every layer of the stack.
//!
//! `tsp-trace` is a leaf crate — `gpu-sim`, `tsp-2opt`, `tsp-ils` and
//! `tsp-bench` all depend on it — so the payload types here are
//! self-contained mirrors of the producers' types ([`KernelCounters`]
//! mirrors `gpu_sim::PerfCounters`, [`SweepCost`] mirrors
//! `tsp_2opt::StepProfile`, [`DeviceInfo`] carries the roofline-relevant
//! slice of `gpu_sim::DeviceSpec`). The producers convert at the record
//! site.

/// Work counters of one kernel launch (mirror of `gpu_sim::PerfCounters`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounters {
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes moved through on-chip shared memory (reads + writes).
    pub shared_bytes: u64,
    /// Bytes read from global device memory.
    pub global_read_bytes: u64,
    /// Bytes written to global device memory.
    pub global_write_bytes: u64,
    /// Global atomic operations.
    pub atomic_ops: u64,
}

impl KernelCounters {
    /// Total global memory traffic in bytes.
    #[inline]
    pub fn global_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes
    }

    /// Arithmetic intensity: FLOPs per byte of global traffic (0 when the
    /// launch touched no global memory).
    #[inline]
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.global_bytes();
        if bytes == 0 {
            return 0.0;
        }
        self.flops as f64 / bytes as f64
    }
}

/// The roofline-relevant slice of the active device specification,
/// recorded once when a recorder is attached to a device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceInfo {
    /// Marketing name, e.g. `"GeForce GTX 680 (CUDA)"`.
    pub name: String,
    /// Streaming multiprocessors / CPU cores.
    pub compute_units: u32,
    /// Sustained whole-device throughput on this workload, GFLOP/s.
    pub sustained_gflops: f64,
    /// Aggregate on-chip (shared memory / cache) bandwidth, GB/s.
    pub shared_bandwidth_gbs: f64,
    /// Global memory bandwidth, GB/s.
    pub global_bandwidth_gbs: f64,
    /// Effective PCIe bandwidth, GB/s (0 for CPUs).
    pub pcie_bandwidth_gbs: f64,
}

/// Modeled cost of one local-search sweep (mirror of
/// `tsp_2opt::StepProfile`).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct SweepCost {
    /// Candidate pairs evaluated.
    pub pairs_checked: u64,
    /// FLOPs performed.
    pub flops: u64,
    /// Modeled kernel execution time, seconds.
    pub kernel_seconds: f64,
    /// Modeled on-device segment reversal time, seconds.
    pub reversal_seconds: f64,
    /// Modeled host→device transfer time, seconds.
    pub h2d_seconds: f64,
    /// Modeled device→host transfer time, seconds.
    pub d2h_seconds: f64,
}

impl SweepCost {
    /// Modeled end-to-end time of the sweep.
    #[inline]
    pub fn modeled_seconds(&self) -> f64 {
        self.kernel_seconds + self.reversal_seconds + self.h2d_seconds + self.d2h_seconds
    }
}

/// One structured event, in recording order.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A recorder was attached to a device (emitted once per attach).
    Device(DeviceInfo),
    /// A kernel launch with its modeled duration and launch config.
    Kernel {
        /// Kernel label (from `Kernel::label` or a per-launch override).
        label: String,
        /// Modeled seconds.
        seconds: f64,
        /// Blocks in the grid.
        grid_dim: u32,
        /// Threads per block.
        block_dim: u32,
        /// Aggregated work counters over all blocks.
        counters: KernelCounters,
    },
    /// A host→device copy.
    H2d {
        /// Bytes moved.
        bytes: u64,
        /// Modeled seconds.
        seconds: f64,
    },
    /// A device→host copy.
    D2h {
        /// Bytes moved.
        bytes: u64,
        /// Modeled seconds.
        seconds: f64,
    },
    /// A best-improvement descent started.
    DescentBegin {
        /// Engine name (device + strategy).
        engine: String,
        /// Instance size.
        n: usize,
        /// Tour length before the descent.
        initial_length: i64,
    },
    /// One neighbourhood sweep started (0-based index within the descent).
    SweepBegin {
        /// Sweep index within the descent.
        sweep: u64,
    },
    /// The sweep finished: its cost and the decision taken.
    SweepEnd {
        /// Sweep index within the descent.
        sweep: u64,
        /// Modeled cost of the sweep.
        cost: SweepCost,
        /// `true` when an improving move was found and applied.
        improving: bool,
        /// The applied move's length delta (0 when not improving).
        delta: i64,
    },
    /// The descent reached its stop condition.
    DescentEnd {
        /// Sweeps performed.
        sweeps: u64,
        /// Tour length at the end.
        final_length: i64,
    },
    /// An ILS perturbation iteration started (1-based; the initial
    /// descent is iteration 0 and emits no iteration events).
    IterationBegin {
        /// Iteration number.
        iteration: u64,
    },
    /// The perturbation applied at the top of an iteration.
    Perturbation {
        /// Operator name, e.g. `"DoubleBridge"`.
        kind: String,
    },
    /// An ILS iteration finished with its acceptance decision.
    IterationEnd {
        /// Iteration number.
        iteration: u64,
        /// Local-minimum length of the perturbed candidate.
        candidate_length: i64,
        /// `true` when the acceptance criterion took the candidate.
        accepted: bool,
        /// Best length known after this iteration.
        best_length: i64,
    },
    /// A stream-scheduled device operation with its resolved start time.
    ///
    /// Unlike [`TraceEvent::Kernel`]/[`TraceEvent::H2d`]/[`TraceEvent::D2h`]
    /// (recorded at submit time, serialized on one implicit stream), these
    /// are emitted when `Device::synchronize` runs the deterministic
    /// overlap scheduler — each op carries the *start timestamp* the
    /// scheduler assigned, so viewers can draw one track per
    /// device × stream with real concurrency.
    StreamOp {
        /// Device index within its pool.
        device: u32,
        /// Stream index on that device.
        stream: u32,
        /// Engine class the op occupied: `"compute"`, `"h2d"` or `"d2h"`.
        engine: String,
        /// Kernel label, or the transfer direction for copies.
        label: String,
        /// Scheduled start time on the device clock, seconds.
        start_seconds: f64,
        /// Modeled duration, seconds.
        seconds: f64,
        /// Bytes moved (0 for kernel launches).
        bytes: u64,
    },
    /// Per-device summary of one `Device::synchronize` call.
    StreamSync {
        /// Device index within its pool.
        device: u32,
        /// Streams that carried at least one op.
        streams: u32,
        /// Sum of all op durations (work submitted), seconds.
        busy_seconds: f64,
        /// Schedule makespan (time to drain all streams), seconds.
        wall_seconds: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_intensity_is_flops_per_global_byte() {
        let c = KernelCounters {
            flops: 640,
            global_read_bytes: 48,
            global_write_bytes: 16,
            ..Default::default()
        };
        assert_eq!(c.global_bytes(), 64);
        assert!((c.arithmetic_intensity() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_intensity_is_zero_safe() {
        let c = KernelCounters {
            flops: 1_000_000,
            shared_bytes: 4096,
            ..Default::default()
        };
        assert_eq!(c.global_bytes(), 0);
        assert_eq!(c.arithmetic_intensity(), 0.0);
        assert_eq!(KernelCounters::default().arithmetic_intensity(), 0.0);
    }

    #[test]
    fn sweep_cost_sums_all_channels() {
        let s = SweepCost {
            pairs_checked: 10,
            flops: 320,
            kernel_seconds: 1e-6,
            reversal_seconds: 2e-7,
            h2d_seconds: 3e-7,
            d2h_seconds: 5e-7,
        };
        assert!((s.modeled_seconds() - 2e-6).abs() < 1e-15);
    }
}
