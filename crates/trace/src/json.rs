//! A minimal JSON value type with a writer and a parser.
//!
//! The workspace's vendored `serde` shim exposes marker traits only (no
//! serializer — see `shims/README.md`), so the trace export formats are
//! built on this tiny hand-rolled module instead. Objects keep insertion
//! order, which makes every export byte-stable run to run; numbers are
//! written through Rust's `f64` `Display`, which never uses exponent
//! notation and round-trips exactly.

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced when writing a non-finite number).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append `key: value` to an object (panics on non-objects).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Member lookup on objects (`None` elsewhere or when absent).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if v.is_finite() {
                    // f64 Display never emits exponents and round-trips.
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Write `s` as a quoted, escaped JSON string.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (used by the exporter's own validation
/// tests and the CI smoke run; not a general-purpose parser).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing data after document"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> ParseError {
    ParseError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, b"null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Json) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad utf-8"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed by our exports.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "bad utf-8 in string"))?;
                let c = rest.chars().next().expect("nonempty checked above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_documents() {
        let mut doc = Json::obj();
        doc.set("name", Json::from("2opt-eval"))
            .set("calls", Json::from(3u64))
            .set("seconds", Json::from(0.25))
            .set("flags", Json::Arr(vec![Json::Bool(true), Json::Null]));
        assert_eq!(
            doc.to_string(),
            r#"{"name":"2opt-eval","calls":3,"seconds":0.25,"flags":[true,null]}"#
        );
    }

    #[test]
    fn numbers_never_use_exponent_notation() {
        assert_eq!(Json::Num(1e-6).to_string(), "0.000001");
        assert_eq!(Json::Num(680.0).to_string(), "680");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::from("a\"b\\c\nd\u{1}").to_string(),
            r#""a\"b\\c\nd\u0001""#
        );
    }

    #[test]
    fn parses_what_it_writes() {
        let mut doc = Json::obj();
        doc.set("label", Json::from("kernel \"x\"\n"))
            .set("n", Json::from(512usize))
            .set("neg", Json::from(-17i64))
            .set("t", Json::from(0.0000152587890625))
            .set("arr", Json::Arr(vec![Json::from(1u64), Json::from(2u64)]))
            .set("nested", {
                let mut inner = Json::obj();
                inner.set("ok", Json::Bool(true));
                inner
            });
        let text = doc.to_string();
        assert_eq!(parse(&text).expect("round trip"), doc);
    }

    #[test]
    fn parses_whitespace_and_empty_containers() {
        let doc = parse(" { \"a\" : [ ] , \"b\" : { } , \"c\" : 1e3 } ").unwrap();
        assert_eq!(doc.get("a"), Some(&Json::Arr(vec![])));
        assert_eq!(doc.get("b"), Some(&Json::obj()));
        assert_eq!(doc.get("c").and_then(Json::as_f64), Some(1000.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        let e = parse("nope").unwrap_err();
        assert_eq!(e.offset, 0);
    }

    #[test]
    fn accessors_discriminate() {
        let doc = parse(r#"{"s":"x","n":2,"b":false}"#).unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.get("s").and_then(Json::as_f64), None);
    }
}
