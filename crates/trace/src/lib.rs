//! End-to-end tracing and metrics for the GPU-accelerated 2-opt stack.
//!
//! The crate is a dependency-free leaf of the workspace: `gpu-sim`,
//! `tsp-2opt`, `tsp-ils` and `tsp-bench` all record into the same
//! [`Recorder`] handle, producing one ordered stream of [`TraceEvent`]s
//! covering kernel launches (with work counters), PCIe transfers,
//! local-search sweeps and ILS iterations.
//!
//! Three consumers sit on top of the stream:
//!
//! - [`chrome_trace`] serializes it as a Chrome Trace Event JSON document
//!   that loads in Perfetto / `chrome://tracing`, with modeled durations
//!   laid onto a synthetic timeline;
//! - [`MetricsSnapshot`] aggregates per-kernel call counts, modeled time,
//!   achieved GFLOP/s and arithmetic intensity, plus transfer totals;
//! - [`RooflineReport`] classifies each kernel compute- vs
//!   bandwidth-bound against the recorded device's roofs.
//!
//! Everything is modeled time — the simulator's analytic cost model — so
//! traces are deterministic: the same run produces the same bytes.

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod roofline;

pub use chrome::{chrome_trace, chrome_trace_tagged, chrome_trace_with_ids};
pub use event::{DeviceInfo, KernelCounters, SweepCost, TraceEvent};
pub use metrics::{KernelStats, MetricsSnapshot, TransferStats};
pub use recorder::Recorder;
pub use roofline::{Bound, RooflineEntry, RooflineReport};
