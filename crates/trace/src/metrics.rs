//! Aggregated metrics over a recorded event stream: per-kernel call
//! counts, modeled time, achieved GFLOP/s and arithmetic intensity,
//! transfer totals and the device/host traffic split.

use crate::event::{DeviceInfo, KernelCounters, TraceEvent};
use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate over every launch of one kernel label.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel label.
    pub label: String,
    /// Number of launches.
    pub calls: u64,
    /// Total modeled seconds across launches.
    pub seconds: f64,
    /// Summed work counters across launches.
    pub counters: KernelCounters,
}

impl KernelStats {
    /// Achieved throughput in GFLOP/s over all launches.
    ///
    /// Same formula as `gpu_sim::KernelProfile::gflops` — for a single
    /// launch the two agree bit-for-bit (the sums reduce to the launch's
    /// own values).
    pub fn gflops(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.counters.flops as f64 / self.seconds / 1e9
        }
    }

    /// Mean modeled seconds per launch.
    pub fn mean_seconds(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.seconds / self.calls as f64
        }
    }

    /// FLOPs per global byte over all launches.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.counters.arithmetic_intensity()
    }
}

/// Aggregate over one transfer direction.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct TransferStats {
    /// Number of copies.
    pub calls: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Total modeled seconds.
    pub seconds: f64,
}

/// A metrics snapshot computed from a recorded event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Device the events were recorded on, when known.
    pub device: Option<DeviceInfo>,
    /// Per-kernel aggregates, sorted by label.
    pub kernels: Vec<KernelStats>,
    /// Host→device transfer totals.
    pub h2d: TransferStats,
    /// Device→host transfer totals.
    pub d2h: TransferStats,
    /// Local-search sweeps observed.
    pub sweeps: u64,
    /// Descents observed.
    pub descents: u64,
    /// ILS iterations observed.
    pub iterations: u64,
    /// ILS perturbations observed.
    pub perturbations: u64,
    /// Best tour length after the last ILS iteration, when any ran.
    pub best_length: Option<i64>,
    /// Stream-scheduled device ops observed (see `TraceEvent::StreamOp`).
    pub stream_ops: u64,
    /// `Device::synchronize` calls observed.
    pub stream_syncs: u64,
    /// Total busy time across all stream syncs (sum of op durations),
    /// seconds.
    pub stream_busy_seconds: f64,
    /// Total wall time across all stream syncs (schedule makespans),
    /// seconds.
    pub stream_wall_seconds: f64,
}

impl MetricsSnapshot {
    /// Aggregate a recorded event stream.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut snap = MetricsSnapshot::default();
        let mut kernels: BTreeMap<String, KernelStats> = BTreeMap::new();
        for event in events {
            match event {
                TraceEvent::Device(info) => snap.device = Some(info.clone()),
                TraceEvent::Kernel {
                    label,
                    seconds,
                    counters,
                    ..
                } => {
                    let k = kernels.entry(label.clone()).or_insert_with(|| KernelStats {
                        label: label.clone(),
                        calls: 0,
                        seconds: 0.0,
                        counters: KernelCounters::default(),
                    });
                    k.calls += 1;
                    k.seconds += seconds;
                    k.counters.flops += counters.flops;
                    k.counters.shared_bytes += counters.shared_bytes;
                    k.counters.global_read_bytes += counters.global_read_bytes;
                    k.counters.global_write_bytes += counters.global_write_bytes;
                    k.counters.atomic_ops += counters.atomic_ops;
                }
                TraceEvent::H2d { bytes, seconds } => {
                    snap.h2d.calls += 1;
                    snap.h2d.bytes += bytes;
                    snap.h2d.seconds += seconds;
                }
                TraceEvent::D2h { bytes, seconds } => {
                    snap.d2h.calls += 1;
                    snap.d2h.bytes += bytes;
                    snap.d2h.seconds += seconds;
                }
                TraceEvent::SweepEnd { .. } => snap.sweeps += 1,
                TraceEvent::DescentEnd { .. } => snap.descents += 1,
                TraceEvent::Perturbation { .. } => snap.perturbations += 1,
                TraceEvent::IterationEnd { best_length, .. } => {
                    snap.iterations += 1;
                    snap.best_length = Some(*best_length);
                }
                TraceEvent::StreamOp { .. } => snap.stream_ops += 1,
                TraceEvent::StreamSync {
                    busy_seconds,
                    wall_seconds,
                    ..
                } => {
                    snap.stream_syncs += 1;
                    snap.stream_busy_seconds += busy_seconds;
                    snap.stream_wall_seconds += wall_seconds;
                }
                TraceEvent::DescentBegin { .. }
                | TraceEvent::SweepBegin { .. }
                | TraceEvent::IterationBegin { .. } => {}
            }
        }
        snap.kernels = kernels.into_values().collect();
        snap
    }

    /// Look up one kernel's aggregate by label.
    pub fn kernel(&self, label: &str) -> Option<&KernelStats> {
        self.kernels.iter().find(|k| k.label == label)
    }

    /// Total modeled kernel seconds.
    pub fn kernel_seconds(&self) -> f64 {
        self.kernels.iter().map(|k| k.seconds).sum()
    }

    /// Achieved stream overlap: the fraction of submitted busy time
    /// hidden by concurrent execution, `(busy - wall) / busy`, clamped
    /// at 0. A fully serial schedule (or no stream activity at all)
    /// scores 0; 0.5 means the streams squeezed two seconds of work
    /// into every wall second.
    pub fn stream_overlap(&self) -> f64 {
        if self.stream_busy_seconds <= 0.0 {
            return 0.0;
        }
        ((self.stream_busy_seconds - self.stream_wall_seconds) / self.stream_busy_seconds).max(0.0)
    }

    /// PCIe transfer share of total modeled device time (0 when nothing
    /// was recorded).
    pub fn transfer_share(&self) -> f64 {
        let transfers = self.h2d.seconds + self.d2h.seconds;
        let total = self.kernel_seconds() + transfers;
        if total <= 0.0 {
            0.0
        } else {
            transfers / total
        }
    }

    /// Human-readable snapshot.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("== metrics snapshot ==\n");
        if let Some(dev) = &self.device {
            let _ = writeln!(
                s,
                "device: {} ({} CUs, {:.1} GFLOP/s sustained, {:.0} GB/s global)",
                dev.name, dev.compute_units, dev.sustained_gflops, dev.global_bandwidth_gbs
            );
        }
        let _ = writeln!(
            s,
            "{:<24} {:>7} {:>13} {:>13} {:>10} {:>8}",
            "kernel", "calls", "total s", "mean s", "GFLOP/s", "AI"
        );
        for k in &self.kernels {
            let _ = writeln!(
                s,
                "{:<24} {:>7} {:>13.6e} {:>13.6e} {:>10.2} {:>8.2}",
                k.label,
                k.calls,
                k.seconds,
                k.mean_seconds(),
                k.gflops(),
                k.arithmetic_intensity()
            );
        }
        let _ = writeln!(
            s,
            "h2d: {} copies, {} bytes, {:.6e} s",
            self.h2d.calls, self.h2d.bytes, self.h2d.seconds
        );
        let _ = writeln!(
            s,
            "d2h: {} copies, {} bytes, {:.6e} s",
            self.d2h.calls, self.d2h.bytes, self.d2h.seconds
        );
        let _ = writeln!(
            s,
            "transfer share of modeled device time: {:.2}%",
            self.transfer_share() * 100.0
        );
        let _ = writeln!(
            s,
            "sweeps: {}, descents: {}, ILS iterations: {}, perturbations: {}",
            self.sweeps, self.descents, self.iterations, self.perturbations
        );
        if self.stream_syncs > 0 {
            let _ = writeln!(
                s,
                "streams: {} ops over {} syncs, busy {:.6e} s / wall {:.6e} s, overlap {:.2}%",
                self.stream_ops,
                self.stream_syncs,
                self.stream_busy_seconds,
                self.stream_wall_seconds,
                self.stream_overlap() * 100.0
            );
        }
        if let Some(best) = self.best_length {
            let _ = writeln!(s, "final best length: {best}");
        }
        s
    }

    /// Machine-readable snapshot.
    pub fn to_json(&self) -> Json {
        let mut root = Json::obj();
        if let Some(dev) = &self.device {
            let mut d = Json::obj();
            d.set("name", Json::from(dev.name.as_str()))
                .set("compute_units", Json::from(dev.compute_units))
                .set("sustained_gflops", Json::from(dev.sustained_gflops))
                .set("shared_bandwidth_gbs", Json::from(dev.shared_bandwidth_gbs))
                .set("global_bandwidth_gbs", Json::from(dev.global_bandwidth_gbs))
                .set("pcie_bandwidth_gbs", Json::from(dev.pcie_bandwidth_gbs));
            root.set("device", d);
        } else {
            root.set("device", Json::Null);
        }
        let mut kernels = Vec::new();
        for k in &self.kernels {
            let mut e = Json::obj();
            e.set("label", Json::from(k.label.as_str()))
                .set("calls", Json::from(k.calls))
                .set("seconds", Json::from(k.seconds))
                .set("mean_seconds", Json::from(k.mean_seconds()))
                .set("gflops", Json::from(k.gflops()))
                .set("arithmetic_intensity", Json::from(k.arithmetic_intensity()))
                .set("flops", Json::from(k.counters.flops))
                .set("shared_bytes", Json::from(k.counters.shared_bytes))
                .set("global_bytes", Json::from(k.counters.global_bytes()))
                .set("atomic_ops", Json::from(k.counters.atomic_ops));
            kernels.push(e);
        }
        root.set("kernels", Json::Arr(kernels));
        for (name, t) in [("h2d", &self.h2d), ("d2h", &self.d2h)] {
            let mut e = Json::obj();
            e.set("calls", Json::from(t.calls))
                .set("bytes", Json::from(t.bytes))
                .set("seconds", Json::from(t.seconds));
            root.set(name, e);
        }
        let mut streams = Json::obj();
        streams
            .set("ops", Json::from(self.stream_ops))
            .set("syncs", Json::from(self.stream_syncs))
            .set("busy_seconds", Json::from(self.stream_busy_seconds))
            .set("wall_seconds", Json::from(self.stream_wall_seconds))
            .set("overlap", Json::from(self.stream_overlap()));
        root.set("streams", streams);
        root.set("transfer_share", Json::from(self.transfer_share()))
            .set("sweeps", Json::from(self.sweeps))
            .set("descents", Json::from(self.descents))
            .set("iterations", Json::from(self.iterations))
            .set("perturbations", Json::from(self.perturbations))
            .set(
                "best_length",
                match self.best_length {
                    Some(v) => Json::from(v),
                    None => Json::Null,
                },
            );
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(label: &str, seconds: f64, flops: u64, global: u64) -> TraceEvent {
        TraceEvent::Kernel {
            label: label.into(),
            seconds,
            grid_dim: 1,
            block_dim: 32,
            counters: KernelCounters {
                flops,
                global_read_bytes: global,
                ..Default::default()
            },
        }
    }

    #[test]
    fn aggregates_per_label_sorted() {
        let events = vec![
            kernel("b", 0.5, 100, 10),
            kernel("a", 0.25, 40, 8),
            kernel("b", 0.5, 100, 10),
        ];
        let snap = MetricsSnapshot::from_events(&events);
        assert_eq!(snap.kernels.len(), 2);
        assert_eq!(snap.kernels[0].label, "a");
        assert_eq!(snap.kernels[1].label, "b");
        let b = snap.kernel("b").unwrap();
        assert_eq!(b.calls, 2);
        assert_eq!(b.counters.flops, 200);
        assert!((b.seconds - 1.0).abs() < 1e-15);
        assert!((b.mean_seconds() - 0.5).abs() < 1e-15);
        assert!((b.gflops() - 200.0 / 1e9).abs() < 1e-18);
        assert!((b.arithmetic_intensity() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn single_launch_gflops_matches_profile_formula() {
        // The KernelProfile::gflops formula, applied directly.
        let seconds = 0.000244140625f64;
        let flops = 123_457u64;
        let reference = flops as f64 / seconds / 1e9;
        let snap = MetricsSnapshot::from_events(&[kernel("k", seconds, flops, 64)]);
        assert_eq!(
            snap.kernel("k").unwrap().gflops().to_bits(),
            reference.to_bits()
        );
    }

    #[test]
    fn gflops_is_zero_safe() {
        let k = KernelStats {
            label: "k".into(),
            calls: 0,
            seconds: 0.0,
            counters: KernelCounters::default(),
        };
        assert_eq!(k.gflops(), 0.0);
        assert_eq!(k.mean_seconds(), 0.0);
    }

    #[test]
    fn transfer_share_counts_both_directions() {
        let events = vec![
            kernel("k", 0.75, 1, 1),
            TraceEvent::H2d {
                bytes: 100,
                seconds: 0.125,
            },
            TraceEvent::D2h {
                bytes: 50,
                seconds: 0.125,
            },
        ];
        let snap = MetricsSnapshot::from_events(&events);
        assert_eq!(snap.h2d.calls, 1);
        assert_eq!(snap.d2h.bytes, 50);
        assert!((snap.transfer_share() - 0.25).abs() < 1e-15);
        assert_eq!(MetricsSnapshot::default().transfer_share(), 0.0);
    }

    #[test]
    fn stream_overlap_is_hidden_fraction_of_busy_time() {
        let events = vec![
            TraceEvent::StreamOp {
                device: 0,
                stream: 0,
                engine: "h2d".into(),
                label: "H2D".into(),
                start_seconds: 0.0,
                seconds: 0.5,
                bytes: 100,
            },
            TraceEvent::StreamOp {
                device: 0,
                stream: 1,
                engine: "compute".into(),
                label: "sweep".into(),
                start_seconds: 0.25,
                seconds: 0.5,
                bytes: 0,
            },
            TraceEvent::StreamSync {
                device: 0,
                streams: 2,
                busy_seconds: 1.0,
                wall_seconds: 0.75,
            },
        ];
        let snap = MetricsSnapshot::from_events(&events);
        assert_eq!(snap.stream_ops, 2);
        assert_eq!(snap.stream_syncs, 1);
        assert!((snap.stream_overlap() - 0.25).abs() < 1e-15);
        let text = snap.to_text();
        assert!(text.contains("overlap 25.00%"), "text:\n{text}");
        let json = snap.to_json();
        let overlap = json
            .get("streams")
            .and_then(|s| s.get("overlap"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((overlap - 0.25).abs() < 1e-15);
        // Serial schedules and empty snapshots score zero.
        assert_eq!(MetricsSnapshot::default().stream_overlap(), 0.0);
        let serial = MetricsSnapshot {
            stream_busy_seconds: 1.0,
            stream_wall_seconds: 1.0,
            ..Default::default()
        };
        assert_eq!(serial.stream_overlap(), 0.0);
    }

    #[test]
    fn ils_counters_and_text_render() {
        let events = vec![
            TraceEvent::SweepEnd {
                sweep: 0,
                cost: Default::default(),
                improving: true,
                delta: -5,
            },
            TraceEvent::DescentEnd {
                sweeps: 1,
                final_length: 100,
            },
            TraceEvent::Perturbation {
                kind: "DoubleBridge".into(),
            },
            TraceEvent::IterationEnd {
                iteration: 1,
                candidate_length: 95,
                accepted: true,
                best_length: 95,
            },
        ];
        let snap = MetricsSnapshot::from_events(&events);
        assert_eq!(
            (
                snap.sweeps,
                snap.descents,
                snap.iterations,
                snap.perturbations
            ),
            (1, 1, 1, 1)
        );
        assert_eq!(snap.best_length, Some(95));
        let text = snap.to_text();
        assert!(text.contains("final best length: 95"));
        let json = snap.to_json();
        assert_eq!(json.get("best_length").and_then(Json::as_f64), Some(95.0));
    }
}
