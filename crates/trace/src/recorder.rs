//! The recorder handle threaded through device, search and ILS layers.

use crate::event::TraceEvent;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A cheap, cloneable handle onto a shared event buffer.
///
/// A disabled recorder (the default) carries no buffer at all: recording
/// through it is a single branch on an `Option`, so instrumented hot
/// paths cost nothing when nobody is listening. Clones of an enabled
/// recorder share one buffer, which is how a single trace ends up
/// covering the device, the descent driver and the ILS loop at once.
#[derive(Debug, Default, Clone)]
pub struct Recorder {
    inner: Option<Arc<Mutex<Vec<TraceEvent>>>>,
}

fn lock(buf: &Mutex<Vec<TraceEvent>>) -> MutexGuard<'_, Vec<TraceEvent>> {
    buf.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Recorder {
    /// A recorder that collects events.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    /// A recorder that drops everything (same as `Recorder::default()`).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// `true` when events are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event (no-op when disabled).
    #[inline]
    pub fn record(&self, event: TraceEvent) {
        if let Some(buf) = &self.inner {
            lock(buf).push(event);
        }
    }

    /// Record the event produced by `make`, building it only when the
    /// recorder is enabled — use this when constructing the event
    /// allocates (labels, engine names).
    #[inline]
    pub fn record_with(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(buf) = &self.inner {
            lock(buf).push(make());
        }
    }

    /// Snapshot of all recorded events, in order (empty when disabled).
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(buf) => lock(buf).clone(),
            None => Vec::new(),
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(buf) => lock(buf).len(),
            None => 0,
        }
    }

    /// `true` when nothing has been recorded (always for disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all recorded events, keeping the buffer alive.
    pub fn clear(&self) {
        if let Some(buf) = &self.inner {
            lock(buf).clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.record(TraceEvent::SweepBegin { sweep: 0 });
        r.record_with(|| panic!("must not be called when disabled"));
        assert!(r.is_empty());
        assert_eq!(r.events(), Vec::new());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn clones_share_one_buffer() {
        let a = Recorder::enabled();
        let b = a.clone();
        a.record(TraceEvent::SweepBegin { sweep: 0 });
        b.record(TraceEvent::SweepBegin { sweep: 1 });
        assert_eq!(a.len(), 2);
        assert_eq!(b.events(), a.events());
        a.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn events_preserve_order() {
        let r = Recorder::enabled();
        for i in 0..10 {
            r.record(TraceEvent::SweepBegin { sweep: i });
        }
        let got = r.events();
        for (i, e) in got.iter().enumerate() {
            assert_eq!(
                e,
                &TraceEvent::SweepBegin { sweep: i as u64 },
                "event {i} out of order"
            );
        }
    }
}
