//! Roofline classification of recorded kernels against the active
//! device: is each kernel compute-bound or global-bandwidth-bound, and
//! how far is it from its attainable ceiling?
//!
//! This is the quantitative check on the paper's locality argument: the
//! shared-memory 2-opt kernels should sit at high arithmetic intensity
//! (right of the ridge point, compute-bound) while naïve global-memory
//! variants sit left of it, pinned to the bandwidth roof.

use crate::event::TraceEvent;
use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;

/// Which roof limits a kernel on this device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Limited by sustained FLOP throughput.
    Compute,
    /// Limited by global memory bandwidth.
    Bandwidth,
}

impl Bound {
    /// Short display name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Bound::Compute => "compute",
            Bound::Bandwidth => "bandwidth",
        }
    }
}

/// Roofline placement of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineEntry {
    /// Kernel label.
    pub label: String,
    /// FLOPs per global byte over all launches.
    pub arithmetic_intensity: f64,
    /// Achieved GFLOP/s.
    pub achieved_gflops: f64,
    /// min(sustained, AI × global bandwidth) — the roof above this kernel.
    pub attainable_gflops: f64,
    /// Which roof is the binding one.
    pub bound: Bound,
}

impl RooflineEntry {
    /// Achieved / attainable, in `[0, 1]`-ish (modeled kernels can sit at
    /// exactly 1.0 on their roof).
    pub fn efficiency(&self) -> f64 {
        if self.attainable_gflops <= 0.0 {
            0.0
        } else {
            self.achieved_gflops / self.attainable_gflops
        }
    }
}

/// A roofline report: every recorded kernel placed against the device's
/// compute and bandwidth roofs.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineReport {
    /// Device name.
    pub device: String,
    /// Sustained compute roof, GFLOP/s.
    pub sustained_gflops: f64,
    /// Global bandwidth roof, GB/s.
    pub global_bandwidth_gbs: f64,
    /// AI at which the two roofs meet (FLOPs/byte); kernels right of it
    /// are compute-bound.
    pub ridge_intensity: f64,
    /// Per-kernel placements, sorted by label.
    pub kernels: Vec<RooflineEntry>,
}

impl RooflineReport {
    /// Build a report from a recorded event stream. Returns `None` when
    /// the stream has no `Device` event (no roofs to classify against).
    pub fn from_events(events: &[TraceEvent]) -> Option<Self> {
        Self::from_snapshot(&MetricsSnapshot::from_events(events))
    }

    /// Build a report from an existing metrics snapshot.
    pub fn from_snapshot(snap: &MetricsSnapshot) -> Option<Self> {
        let dev = snap.device.as_ref()?;
        let sustained = dev.sustained_gflops;
        let bw = dev.global_bandwidth_gbs;
        let mut kernels = Vec::with_capacity(snap.kernels.len());
        for k in &snap.kernels {
            let ai = k.arithmetic_intensity();
            // AI of 0 means the kernel touched no global memory at all:
            // there is no bandwidth roof over it, only the compute roof.
            let (attainable, bound) = if ai == 0.0 {
                (sustained, Bound::Compute)
            } else {
                let bw_roof = ai * bw; // GFLOP/s, since AI is FLOPs/byte and bw is GB/s
                if bw_roof < sustained {
                    (bw_roof, Bound::Bandwidth)
                } else {
                    (sustained, Bound::Compute)
                }
            };
            kernels.push(RooflineEntry {
                label: k.label.clone(),
                arithmetic_intensity: ai,
                achieved_gflops: k.gflops(),
                attainable_gflops: attainable,
                bound,
            });
        }
        Some(RooflineReport {
            device: dev.name.clone(),
            sustained_gflops: sustained,
            global_bandwidth_gbs: bw,
            ridge_intensity: if bw > 0.0 { sustained / bw } else { 0.0 },
            kernels,
        })
    }

    /// Look up one kernel's placement by label.
    pub fn kernel(&self, label: &str) -> Option<&RooflineEntry> {
        self.kernels.iter().find(|k| k.label == label)
    }

    /// Human-readable report.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("== roofline report ==\n");
        let _ = writeln!(
            s,
            "device: {} (sustained {:.1} GFLOP/s, global {:.0} GB/s, ridge at {:.2} FLOPs/byte)",
            self.device, self.sustained_gflops, self.global_bandwidth_gbs, self.ridge_intensity
        );
        let _ = writeln!(
            s,
            "{:<24} {:>10} {:>12} {:>12} {:>7} {:>10}",
            "kernel", "AI", "achieved", "attainable", "eff", "bound"
        );
        for k in &self.kernels {
            let _ = writeln!(
                s,
                "{:<24} {:>10.2} {:>12.2} {:>12.2} {:>6.0}% {:>10}",
                k.label,
                k.arithmetic_intensity,
                k.achieved_gflops,
                k.attainable_gflops,
                k.efficiency() * 100.0,
                k.bound.as_str()
            );
        }
        s
    }

    /// Machine-readable report.
    pub fn to_json(&self) -> Json {
        let mut root = Json::obj();
        root.set("device", Json::from(self.device.as_str()))
            .set("sustained_gflops", Json::from(self.sustained_gflops))
            .set(
                "global_bandwidth_gbs",
                Json::from(self.global_bandwidth_gbs),
            )
            .set("ridge_intensity", Json::from(self.ridge_intensity));
        let mut kernels = Vec::new();
        for k in &self.kernels {
            let mut e = Json::obj();
            e.set("label", Json::from(k.label.as_str()))
                .set("arithmetic_intensity", Json::from(k.arithmetic_intensity))
                .set("achieved_gflops", Json::from(k.achieved_gflops))
                .set("attainable_gflops", Json::from(k.attainable_gflops))
                .set("efficiency", Json::from(k.efficiency()))
                .set("bound", Json::from(k.bound.as_str()));
            kernels.push(e);
        }
        root.set("kernels", Json::Arr(kernels));
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DeviceInfo, KernelCounters};

    fn device() -> TraceEvent {
        TraceEvent::Device(DeviceInfo {
            name: "TestDev".into(),
            compute_units: 8,
            sustained_gflops: 640.0,
            shared_bandwidth_gbs: 1400.0,
            global_bandwidth_gbs: 160.0,
            pcie_bandwidth_gbs: 2.5,
        })
    }

    fn kernel(label: &str, flops: u64, global: u64) -> TraceEvent {
        TraceEvent::Kernel {
            label: label.into(),
            seconds: 1e-3,
            grid_dim: 1,
            block_dim: 32,
            counters: KernelCounters {
                flops,
                global_read_bytes: global,
                ..Default::default()
            },
        }
    }

    #[test]
    fn classifies_against_both_roofs() {
        // Ridge point: 640 / 160 = 4 FLOPs/byte.
        let events = vec![
            device(),
            kernel("low-ai", 1_000, 1_000), // AI 1 → bandwidth roof 160
            kernel("high-ai", 1_000_000, 10_000), // AI 100 → compute roof 640
        ];
        let report = RooflineReport::from_events(&events).unwrap();
        assert!((report.ridge_intensity - 4.0).abs() < 1e-12);
        let low = report.kernel("low-ai").unwrap();
        assert_eq!(low.bound, Bound::Bandwidth);
        assert!((low.attainable_gflops - 160.0).abs() < 1e-9);
        let high = report.kernel("high-ai").unwrap();
        assert_eq!(high.bound, Bound::Compute);
        assert!((high.attainable_gflops - 640.0).abs() < 1e-9);
    }

    #[test]
    fn zero_ai_kernel_is_compute_bound() {
        let events = vec![device(), kernel("on-chip", 1_000, 0)];
        let report = RooflineReport::from_events(&events).unwrap();
        let k = report.kernel("on-chip").unwrap();
        assert_eq!(k.bound, Bound::Compute);
        assert_eq!(k.arithmetic_intensity, 0.0);
        assert!((k.attainable_gflops - 640.0).abs() < 1e-9);
    }

    #[test]
    fn no_device_event_means_no_report() {
        assert!(RooflineReport::from_events(&[kernel("k", 10, 10)]).is_none());
    }

    #[test]
    fn text_and_json_render() {
        let events = vec![device(), kernel("k", 1_000, 1_000)];
        let report = RooflineReport::from_events(&events).unwrap();
        let text = report.to_text();
        assert!(text.contains("roofline report"));
        assert!(text.contains("bandwidth"));
        let json = report.to_json();
        assert_eq!(json.get("device").and_then(Json::as_str), Some("TestDev"));
        assert_eq!(
            json.get("kernels")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
    }
}
