//! Golden-file test for the Chrome-trace exporter: a scripted run with
//! two kernels and one transfer must serialize to byte-identical,
//! schema-valid JSON forever. Durations are exact binary fractions of a
//! second so every microsecond timestamp is an exact decimal.

use tsp_trace::json::{self, Json};
use tsp_trace::{chrome_trace, DeviceInfo, KernelCounters, SweepCost, TraceEvent};

const GOLDEN: &str = include_str!("golden/two_kernels_one_transfer.trace.json");

fn scripted_run() -> Vec<TraceEvent> {
    vec![
        TraceEvent::Device(DeviceInfo {
            name: "GoldenDev".to_string(),
            compute_units: 8,
            sustained_gflops: 680.0,
            shared_bandwidth_gbs: 1400.0,
            global_bandwidth_gbs: 192.0,
            pcie_bandwidth_gbs: 2.5,
        }),
        TraceEvent::DescentBegin {
            engine: "golden-engine".to_string(),
            n: 16,
            initial_length: 1000,
        },
        TraceEvent::SweepBegin { sweep: 0 },
        TraceEvent::H2d {
            bytes: 1024,
            seconds: 0.0001220703125, // 2^-13 s = 122.0703125 µs
        },
        TraceEvent::Kernel {
            label: "2opt-eval-shared".to_string(),
            seconds: 0.000244140625, // 2^-12 s = 244.140625 µs
            grid_dim: 2,
            block_dim: 64,
            counters: KernelCounters {
                flops: 4096,
                shared_bytes: 2048,
                global_read_bytes: 512,
                global_write_bytes: 64,
                atomic_ops: 2,
            },
        },
        TraceEvent::Kernel {
            label: "2opt-reverse".to_string(),
            seconds: 0.00006103515625, // 2^-14 s = 61.03515625 µs
            grid_dim: 1,
            block_dim: 64,
            counters: KernelCounters {
                flops: 0,
                shared_bytes: 0,
                global_read_bytes: 128,
                global_write_bytes: 128,
                atomic_ops: 0,
            },
        },
        TraceEvent::SweepEnd {
            sweep: 0,
            cost: SweepCost {
                pairs_checked: 120,
                flops: 4096,
                kernel_seconds: 0.00030517578125,
                reversal_seconds: 0.0,
                h2d_seconds: 0.0001220703125,
                d2h_seconds: 0.0,
            },
            improving: true,
            delta: -40,
        },
        TraceEvent::DescentEnd {
            sweeps: 1,
            final_length: 960,
        },
    ]
}

#[test]
fn exporter_output_matches_golden_bytes() {
    let actual = chrome_trace(&scripted_run());
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/two_kernels_one_transfer.trace.json"
        );
        std::fs::write(path, &actual).expect("write golden");
    }
    assert_eq!(
        actual, GOLDEN,
        "chrome exporter output drifted from the committed golden file; \
         if the change is intentional, rerun with REGEN_GOLDEN=1 and \
         review the diff"
    );
}

#[test]
fn golden_is_schema_valid_chrome_trace() {
    let doc = json::parse(GOLDEN).expect("golden file must be valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    for e in events {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .expect("every event has a ph");
        assert!(
            matches!(ph, "M" | "X" | "B" | "E" | "i" | "C"),
            "unexpected phase {ph:?}"
        );
        assert_eq!(e.get("pid").and_then(Json::as_f64), Some(1.0));
        if ph != "M" {
            let ts = e.get("ts").and_then(Json::as_f64);
            if ph == "C" {
                assert!(ts.is_some(), "{ph} event missing ts");
            } else {
                let ts = ts.expect("timed event has ts");
                assert!(ts >= 0.0, "negative timestamp");
                assert!(
                    e.get("tid").and_then(Json::as_f64).is_some(),
                    "{ph} event missing tid"
                );
            }
        }
        if ph == "X" {
            let dur = e
                .get("dur")
                .and_then(Json::as_f64)
                .expect("complete event has dur");
            assert!(dur > 0.0, "complete event with non-positive dur");
        }
    }

    // The two kernels sit on the kernel track, back to back after the
    // transfer.
    let xs: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert_eq!(xs.len(), 3, "one transfer + two kernels");
    let h2d = xs[0];
    assert_eq!(h2d.get("name").and_then(Json::as_str), Some("H2D"));
    assert_eq!(h2d.get("ts").and_then(Json::as_f64), Some(0.0));
    assert_eq!(h2d.get("dur").and_then(Json::as_f64), Some(122.0703125));
    let k1 = xs[1];
    assert_eq!(
        k1.get("name").and_then(Json::as_str),
        Some("2opt-eval-shared")
    );
    assert_eq!(k1.get("ts").and_then(Json::as_f64), Some(122.0703125));
    assert_eq!(k1.get("dur").and_then(Json::as_f64), Some(244.140625));
    let k2 = xs[2];
    assert_eq!(k2.get("name").and_then(Json::as_str), Some("2opt-reverse"));
    assert_eq!(k2.get("ts").and_then(Json::as_f64), Some(366.2109375));
    assert_eq!(k2.get("dur").and_then(Json::as_f64), Some(61.03515625));
}
