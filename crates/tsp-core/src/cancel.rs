//! Cooperative cancellation for long-running searches.
//!
//! A [`CancelToken`] is a cheap, clonable flag that a controller (a
//! serving layer, a signal handler, a test harness) arms once and a
//! search loop polls between iterations. Tokens optionally carry a
//! wall-clock deadline: [`CancelToken::is_cancelled`] reports `true`
//! once the flag is raised *or* the deadline has passed, so a single
//! poll site covers both explicit cancellation and admission-level
//! deadlines.
//!
//! The default token ([`CancelToken::none`]) carries no flag at all —
//! polling it is one `Option` branch, matching the zero-cost-when-
//! detached convention of the observability handles.
//!
//! Cancellation is wall-clock-dependent by nature: a run truncated by a
//! token stops at a nondeterministic iteration, so armed tokens are
//! rejected by the record/replay layer the same way `max_host_seconds`
//! is.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared cancellation flag with an optional deadline.
///
/// Clones share the flag: arming any clone via [`CancelToken::cancel`]
/// is observed by every other clone. The deadline is per-value (set
/// with [`CancelToken::with_deadline`]), so a controller can hold an
/// undeadlined master token while handing each job a deadlined copy.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// An armed-capable token (flag initially lowered).
    pub fn new() -> Self {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: None,
        }
    }

    /// The inert token: never cancelled, costs one branch to poll.
    pub fn none() -> Self {
        CancelToken::default()
    }

    /// A copy of this token that also trips once `deadline` passes.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Raise the flag. Idempotent; a no-op on [`CancelToken::none`].
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Release);
        }
    }

    /// `true` once [`CancelToken::cancel`] was called on any clone or
    /// the deadline (if any) has passed.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Acquire) {
                return true;
            }
        }
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }

    /// Whether this token can ever report cancellation — i.e. it holds
    /// a flag or a deadline. Armed tokens make a run wall-clock
    /// dependent, which the replay layer must reject.
    pub fn is_armed(&self) -> bool {
        self.flag.is_some() || self.deadline.is_some()
    }

    /// The deadline, when one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn none_is_never_cancelled_and_unarmed() {
        let t = CancelToken::none();
        assert!(!t.is_armed());
        assert!(!t.is_cancelled());
        t.cancel(); // no-op
        assert!(!t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        assert!(a.is_armed() && b.is_armed());
    }

    #[test]
    fn past_deadlines_trip_without_the_flag() {
        let t = CancelToken::new().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let future = CancelToken::new().with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
        assert!(future.is_armed());
    }

    #[test]
    fn deadline_is_per_value_not_shared() {
        let master = CancelToken::new();
        let job = master
            .clone()
            .with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(job.is_cancelled());
        assert!(!master.is_cancelled());
    }
}
