//! Error type shared by the core TSP data structures.

use std::fmt;

/// Errors raised by core TSP operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The instance has fewer cities than the operation requires.
    InstanceTooSmall {
        /// Number of cities in the instance.
        n: usize,
        /// Minimum number of cities required.
        min: usize,
    },
    /// A tour is not a permutation of `0..n`.
    InvalidTour(String),
    /// A city index is out of range.
    CityOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of cities in the instance.
        n: usize,
    },
    /// An explicit distance matrix had the wrong shape or entries.
    InvalidMatrix(String),
    /// The metric requires coordinates but the instance has none.
    MissingCoordinates,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InstanceTooSmall { n, min } => {
                write!(f, "instance has {n} cities but at least {min} are required")
            }
            CoreError::InvalidTour(msg) => write!(f, "invalid tour: {msg}"),
            CoreError::CityOutOfRange { index, n } => {
                write!(
                    f,
                    "city index {index} out of range for instance of size {n}"
                )
            }
            CoreError::InvalidMatrix(msg) => write!(f, "invalid distance matrix: {msg}"),
            CoreError::MissingCoordinates => {
                write!(
                    f,
                    "metric requires node coordinates but the instance has none"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = CoreError::InstanceTooSmall { n: 2, min: 4 };
        assert_eq!(
            e.to_string(),
            "instance has 2 cities but at least 4 are required"
        );
        let e = CoreError::CityOutOfRange { index: 9, n: 5 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("5"));
    }
}
