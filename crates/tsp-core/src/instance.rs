//! A TSP instance: a set of cities plus a distance function.

use crate::error::CoreError;
use crate::matrix::ExplicitMatrix;
use crate::metric::Metric;
use crate::point::Point;

/// A (symmetric) TSP instance.
///
/// An instance is either *coordinate-based* (points + a [`Metric`]
/// formula — the only kind the paper's GPU kernels handle, since staging
/// coordinates in shared memory is the whole trick) or *explicit*
/// (a materialised distance matrix, the LUT of the paper's Table I).
#[derive(Debug, Clone)]
pub struct Instance {
    name: String,
    comment: String,
    metric: Metric,
    points: Vec<Point>,
    matrix: Option<ExplicitMatrix>,
}

impl Instance {
    /// Create a coordinate-based instance.
    ///
    /// # Errors
    /// Fails when `metric` is [`Metric::Explicit`] (use
    /// [`Instance::from_matrix`]) or fewer than 3 points are given.
    pub fn new(
        name: impl Into<String>,
        metric: Metric,
        points: Vec<Point>,
    ) -> Result<Self, CoreError> {
        if metric == Metric::Explicit {
            return Err(CoreError::MissingCoordinates);
        }
        if points.len() < 3 {
            return Err(CoreError::InstanceTooSmall {
                n: points.len(),
                min: 3,
            });
        }
        Ok(Instance {
            name: name.into(),
            comment: String::new(),
            metric,
            points,
            matrix: None,
        })
    }

    /// Create an explicit-matrix instance. Points may optionally be
    /// attached as display coordinates.
    pub fn from_matrix(
        name: impl Into<String>,
        matrix: ExplicitMatrix,
        display_points: Option<Vec<Point>>,
    ) -> Result<Self, CoreError> {
        if matrix.len() < 3 {
            return Err(CoreError::InstanceTooSmall {
                n: matrix.len(),
                min: 3,
            });
        }
        if let Some(p) = &display_points {
            if p.len() != matrix.len() {
                return Err(CoreError::InvalidMatrix(format!(
                    "display coordinates ({}) do not match matrix size ({})",
                    p.len(),
                    matrix.len()
                )));
            }
        }
        Ok(Instance {
            name: name.into(),
            comment: String::new(),
            metric: Metric::Explicit,
            points: display_points.unwrap_or_default(),
            matrix: Some(matrix),
        })
    }

    /// Attach a free-form comment (TSPLIB `COMMENT`).
    pub fn with_comment(mut self, comment: impl Into<String>) -> Self {
        self.comment = comment.into();
        self
    }

    /// Instance name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instance comment.
    #[inline]
    pub fn comment(&self) -> &str {
        &self.comment
    }

    /// Number of cities.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.matrix {
            Some(m) => m.len(),
            None => self.points.len(),
        }
    }

    /// `true` when the instance has no cities (never constructible through
    /// the public API, but kept for slice-like ergonomics).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The metric in force.
    #[inline]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// City coordinates (empty for explicit instances without display data).
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The explicit matrix, if any.
    #[inline]
    pub fn matrix(&self) -> Option<&ExplicitMatrix> {
        self.matrix.as_ref()
    }

    /// `true` when the GPU kernels can run this instance (they need
    /// coordinates; the whole point of the paper is *not* shipping an
    /// O(n²) LUT to the device).
    #[inline]
    pub fn is_coordinate_based(&self) -> bool {
        self.matrix.is_none()
    }

    /// Distance between cities `i` and `j`.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> i32 {
        match &self.matrix {
            Some(m) => m.get(i, j),
            None => self.metric.dist(&self.points[i], &self.points[j]),
        }
    }

    /// Coordinates of city `i`.
    ///
    /// # Panics
    /// Panics when the instance is explicit and has no display coordinates.
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        self.points[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Instance {
        Instance::new(
            "square4",
            Metric::Euc2d,
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 10.0),
                Point::new(10.0, 10.0),
                Point::new(10.0, 0.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn coordinate_instance_basics() {
        let inst = square();
        assert_eq!(inst.len(), 4);
        assert_eq!(inst.dist(0, 1), 10);
        assert_eq!(inst.dist(0, 2), 14); // sqrt(200) = 14.14 -> 14
        assert!(inst.is_coordinate_based());
    }

    #[test]
    fn rejects_tiny_instances() {
        let err = Instance::new("p", Metric::Euc2d, vec![Point::new(0.0, 0.0)]).unwrap_err();
        assert!(matches!(err, CoreError::InstanceTooSmall { .. }));
    }

    #[test]
    fn rejects_explicit_metric_without_matrix() {
        let err = Instance::new("p", Metric::Explicit, vec![Point::default(); 5]).unwrap_err();
        assert_eq!(err, CoreError::MissingCoordinates);
    }

    #[test]
    fn explicit_instance_dispatches_to_matrix() {
        let m = ExplicitMatrix::from_upper_row(3, &[7, 9, 11]).unwrap();
        let inst = Instance::from_matrix("m3", m, None).unwrap();
        assert_eq!(inst.dist(0, 1), 7);
        assert_eq!(inst.dist(1, 2), 11);
        assert_eq!(inst.dist(2, 0), 9);
        assert!(!inst.is_coordinate_based());
        assert_eq!(inst.metric(), Metric::Explicit);
    }

    #[test]
    fn display_points_must_match_matrix_size() {
        let m = ExplicitMatrix::from_upper_row(3, &[1, 1, 1]).unwrap();
        let err = Instance::from_matrix("m3", m, Some(vec![Point::default(); 2])).unwrap_err();
        assert!(matches!(err, CoreError::InvalidMatrix(_)));
    }

    #[test]
    fn comment_is_preserved() {
        let inst = square().with_comment("four corners");
        assert_eq!(inst.comment(), "four corners");
        assert_eq!(inst.name(), "square4");
    }
}
