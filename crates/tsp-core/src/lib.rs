//! # tsp-core
//!
//! Fundamental data structures for the Travelling Salesman Problem used by
//! the GPU-accelerated 2-opt reproduction of Rocki & Suda (IPDPSW 2013):
//!
//! * [`Point`] — 2-D coordinates, the `float2` of the paper's kernels.
//! * [`Metric`] — every TSPLIB95 edge-weight function the library supports
//!   (`EUC_2D`, `CEIL_2D`, `ATT`, `GEO`, `MAN_2D`, `MAX_2D`, explicit
//!   matrices).
//! * [`Instance`] — a named problem: points plus a metric (or an explicit
//!   distance matrix).
//! * [`Tour`] — a permutation of the cities with length bookkeeping
//!   helpers, segment reversal (the 2-opt move) and the double-bridge
//!   perturbation used by Iterated Local Search.
//! * [`lut::DistanceLut`] — the O(n²) look-up table the paper's Table I
//!   argues *against*, with exact memory accounting so the table can be
//!   regenerated.
//! * [`neighbor::NeighborLists`] — k-nearest-neighbour candidate lists for
//!   the pruned-neighbourhood extension (the paper's future work §VII).
//!
//! All distances are integral (`i64` accumulators over `i32` edge weights),
//! following the TSPLIB95 convention the paper uses (`(int)(sqrtf(...)+0.5f)`).

pub mod cancel;
pub mod error;
pub mod instance;
pub mod lut;
pub mod matrix;
pub mod metric;
pub mod neighbor;
pub mod point;
pub mod tour;

pub use cancel::CancelToken;
pub use error::CoreError;
pub use instance::Instance;
pub use matrix::ExplicitMatrix;
pub use metric::Metric;
pub use point::Point;
pub use tour::{KickMove, Tour};

/// Number of distinct 2-opt candidate pairs `(i, j)` enumerated by the
/// paper's triangular scheme (Fig. 3): tour positions `0 <= i < j <= n - 2`,
/// where pair `(i, j)` examines the tour edges `(i, i+1)` and `(j, j+1)`.
///
/// The count is `(n-1)(n-2)/2`, which reproduces the paper's §IV quote of
/// **4851** candidate swaps for a 100-city problem, and its worked example
/// `ceil(pairs / (28 × 1024)) = 100` striding iterations for pr2392.
///
/// Pairs with `j == i + 1` share a city; their move is the identity and
/// evaluates to a zero delta, so enumerating them is harmless (the paper
/// does the same). Returns 0 for `n < 3`.
#[inline]
pub fn num_candidate_pairs(n: usize) -> u64 {
    if n < 3 {
        return 0;
    }
    let m = (n - 1) as u64;
    m * (m - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_count_matches_paper_quotes() {
        // §IV: "in case of kroE100 ... there are 4851 swaps to be checked".
        assert_eq!(num_candidate_pairs(100), 4851);
        // §IV.A worked example: pr2392 with a 28x1024 launch needs 100
        // striding iterations per thread.
        let pairs = num_candidate_pairs(2392);
        let launch = 28u64 * 1024;
        assert_eq!(pairs.div_ceil(launch), 100);
    }

    #[test]
    fn small_n_has_no_pairs() {
        assert_eq!(num_candidate_pairs(0), 0);
        assert_eq!(num_candidate_pairs(1), 0);
        assert_eq!(num_candidate_pairs(2), 0);
        assert_eq!(num_candidate_pairs(3), 1);
        assert_eq!(num_candidate_pairs(4), 3);
    }
}
