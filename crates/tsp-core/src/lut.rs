//! Distance look-up tables and the memory accounting of the paper's
//! Table I.
//!
//! §II.B of the paper contrasts two ways of obtaining a distance:
//! a precomputed O(n²) **LUT** versus recomputing from O(n)
//! **coordinates**. Table I tabulates the footprint of both across the
//! TSPLIB instances; the LUT explodes (fnl4461 already needs ~76 MB while
//! its coordinates fit in ~35 kB), which is why the GPU kernels ship
//! coordinates and burn FLOPs instead of bandwidth.

use crate::instance::Instance;
use crate::point::Point;

/// A materialised full `n × n` distance table.
///
/// Stored row-major as `i32`, matching the 4-byte entries Table I assumes
/// (`n² × 4` bytes).
#[derive(Debug, Clone)]
pub struct DistanceLut {
    n: usize,
    d: Vec<i32>,
}

impl DistanceLut {
    /// Precompute all pairwise distances of `inst`.
    pub fn build(inst: &Instance) -> Self {
        let n = inst.len();
        let mut d = vec![0i32; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let w = inst.dist(i, j);
                d[i * n + j] = w;
                d[j * n + i] = w;
            }
        }
        DistanceLut { n, d }
    }

    /// Number of cities.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between cities `i` and `j` (O(1) lookup).
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> i32 {
        debug_assert!(i < self.n && j < self.n);
        self.d[i * self.n + j]
    }

    /// Actual bytes held by this table.
    pub fn bytes(&self) -> usize {
        self.d.len() * core::mem::size_of::<i32>()
    }
}

/// Memory footprint of the two distance strategies for an instance of
/// size `n` — the paper's Table I generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Number of cities.
    pub n: usize,
    /// Bytes needed for the full LUT: `n² × sizeof(i32)`.
    pub lut_bytes: u64,
    /// Bytes needed for raw coordinates: `n × sizeof(float2)`.
    pub coord_bytes: u64,
    /// Bytes needed for route + coordinates (the *unordered* kernel input,
    /// Fig. 5): `n × sizeof(u32) + n × sizeof(float2)`.
    pub route_plus_coord_bytes: u64,
}

impl MemoryFootprint {
    /// Compute the footprint for an instance of `n` cities.
    pub fn for_size(n: usize) -> Self {
        let n64 = n as u64;
        MemoryFootprint {
            n,
            lut_bytes: n64 * n64 * core::mem::size_of::<i32>() as u64,
            coord_bytes: n64 * Point::DEVICE_BYTES as u64,
            route_plus_coord_bytes: n64 * core::mem::size_of::<u32>() as u64
                + n64 * Point::DEVICE_BYTES as u64,
        }
    }

    /// LUT footprint in mebibytes (the unit of Table I's third column).
    pub fn lut_mib(&self) -> f64 {
        self.lut_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Coordinate footprint in kibibytes (Table I's fourth column).
    pub fn coord_kib(&self) -> f64 {
        self.coord_bytes as f64 / 1024.0
    }
}

/// Maximum number of cities whose *ordered* coordinates fit in
/// `shared_bytes` of on-chip memory — the paper's 6144-city bound for
/// 48 kB (`48·1024 / (4·2)`).
#[inline]
pub fn max_cities_in_shared(shared_bytes: usize) -> usize {
    shared_bytes / Point::DEVICE_BYTES
}

/// Maximum *sub-problem* size for the division scheme of §IV.B, where two
/// coordinate ranges must fit: 3072 cities for 48 kB
/// (`48·1024 / (2·2·4)`).
#[inline]
pub fn max_tile_in_shared(shared_bytes: usize) -> usize {
    shared_bytes / (2 * Point::DEVICE_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Metric;

    #[test]
    fn lut_matches_direct_computation() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 10.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 5.0),
        ];
        let inst = Instance::new("p5", Metric::Euc2d, pts).unwrap();
        let lut = DistanceLut::build(&inst);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(lut.dist(i, j), inst.dist(i, j));
            }
        }
        assert_eq!(lut.bytes(), 25 * 4);
    }

    #[test]
    fn footprints_match_table_1_rows() {
        // Table I: kroE100 -> LUT 0.04 MB, coords 0.78 kB.
        let f = MemoryFootprint::for_size(100);
        assert!((f.lut_mib() - 0.0381).abs() < 0.01, "{}", f.lut_mib());
        assert!((f.coord_kib() - 0.781).abs() < 0.01, "{}", f.coord_kib());
        // Table I: fnl4461 -> LUT ~75.9 MB, coords ~34.9 kB.
        let f = MemoryFootprint::for_size(4461);
        assert!((f.lut_mib() - 75.92).abs() < 0.5, "{}", f.lut_mib());
        assert!((f.coord_kib() - 34.85).abs() < 0.5, "{}", f.coord_kib());
    }

    #[test]
    fn shared_memory_capacity_bounds_match_paper() {
        // §IV.A: 48 kB of shared memory limits us to 6144 cities.
        assert_eq!(max_cities_in_shared(48 * 1024), 6144);
        // §IV.B: two ranges halve that to 3072.
        assert_eq!(max_tile_in_shared(48 * 1024), 3072);
    }

    #[test]
    fn route_plus_coord_is_larger_than_ordered() {
        let f = MemoryFootprint::for_size(1000);
        assert!(f.route_plus_coord_bytes > f.coord_bytes);
        assert_eq!(f.route_plus_coord_bytes, 1000 * 4 + 1000 * 8);
    }
}
