//! Explicit distance matrices (TSPLIB95 `EDGE_WEIGHT_FORMAT`).
//!
//! Symmetric instances in TSPLIB may carry their weights as an explicit
//! matrix instead of coordinates. We store a full row-major `n × n` matrix
//! internally (simple, cache-friendly) and provide constructors for every
//! triangular layout of the spec.

use crate::error::CoreError;

/// A fully materialised symmetric distance matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplicitMatrix {
    n: usize,
    /// Row-major `n * n` weights.
    w: Vec<i32>,
}

impl ExplicitMatrix {
    /// Build from a full row-major matrix. The matrix must be square,
    /// symmetric and zero on the diagonal.
    pub fn from_full(n: usize, w: Vec<i32>) -> Result<Self, CoreError> {
        if w.len() != n * n {
            return Err(CoreError::InvalidMatrix(format!(
                "expected {} entries for FULL_MATRIX of size {n}, got {}",
                n * n,
                w.len()
            )));
        }
        let m = ExplicitMatrix { n, w };
        for i in 0..n {
            if m.get(i, i) != 0 {
                return Err(CoreError::InvalidMatrix(format!(
                    "diagonal entry ({i},{i}) is {} (must be 0)",
                    m.get(i, i)
                )));
            }
            for j in (i + 1)..n {
                if m.get(i, j) != m.get(j, i) {
                    return Err(CoreError::InvalidMatrix(format!(
                        "asymmetric entries at ({i},{j}): {} vs {}",
                        m.get(i, j),
                        m.get(j, i)
                    )));
                }
            }
        }
        Ok(m)
    }

    /// Build from `UPPER_ROW` data: row `i` lists `w(i, i+1) .. w(i, n-1)`,
    /// diagonal excluded.
    pub fn from_upper_row(n: usize, vals: &[i32]) -> Result<Self, CoreError> {
        let expected = n * (n - 1) / 2;
        if vals.len() != expected {
            return Err(CoreError::InvalidMatrix(format!(
                "expected {expected} entries for UPPER_ROW of size {n}, got {}",
                vals.len()
            )));
        }
        let mut w = vec![0i32; n * n];
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                w[i * n + j] = vals[k];
                w[j * n + i] = vals[k];
                k += 1;
            }
        }
        Ok(ExplicitMatrix { n, w })
    }

    /// Build from `LOWER_DIAG_ROW` data: row `i` lists
    /// `w(i, 0) .. w(i, i)`, diagonal included.
    pub fn from_lower_diag_row(n: usize, vals: &[i32]) -> Result<Self, CoreError> {
        let expected = n * (n + 1) / 2;
        if vals.len() != expected {
            return Err(CoreError::InvalidMatrix(format!(
                "expected {expected} entries for LOWER_DIAG_ROW of size {n}, got {}",
                vals.len()
            )));
        }
        let mut w = vec![0i32; n * n];
        let mut k = 0;
        for i in 0..n {
            for j in 0..=i {
                w[i * n + j] = vals[k];
                w[j * n + i] = vals[k];
                k += 1;
            }
        }
        for i in 0..n {
            if w[i * n + i] != 0 {
                return Err(CoreError::InvalidMatrix(format!(
                    "diagonal entry ({i},{i}) is {} (must be 0)",
                    w[i * n + i]
                )));
            }
        }
        Ok(ExplicitMatrix { n, w })
    }

    /// Build from `UPPER_DIAG_ROW` data: row `i` lists
    /// `w(i, i) .. w(i, n-1)`, diagonal included.
    pub fn from_upper_diag_row(n: usize, vals: &[i32]) -> Result<Self, CoreError> {
        let expected = n * (n + 1) / 2;
        if vals.len() != expected {
            return Err(CoreError::InvalidMatrix(format!(
                "expected {expected} entries for UPPER_DIAG_ROW of size {n}, got {}",
                vals.len()
            )));
        }
        let mut w = vec![0i32; n * n];
        let mut k = 0;
        for i in 0..n {
            for j in i..n {
                w[i * n + j] = vals[k];
                w[j * n + i] = vals[k];
                k += 1;
            }
        }
        Ok(ExplicitMatrix { n, w })
    }

    /// Number of cities.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the matrix is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Weight between cities `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> i32 {
        debug_assert!(i < self.n && j < self.n);
        self.w[i * self.n + j]
    }

    /// Bytes used by the stored matrix.
    pub fn bytes(&self) -> usize {
        self.w.len() * core::mem::size_of::<i32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matrix_round_trip() {
        // 3 cities: d(0,1)=1, d(0,2)=2, d(1,2)=3
        let m = ExplicitMatrix::from_full(3, vec![0, 1, 2, 1, 0, 3, 2, 3, 0]).unwrap();
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(2, 1), 3);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn full_matrix_rejects_asymmetry() {
        let err = ExplicitMatrix::from_full(2, vec![0, 1, 2, 0]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidMatrix(_)));
    }

    #[test]
    fn full_matrix_rejects_nonzero_diagonal() {
        let err = ExplicitMatrix::from_full(2, vec![5, 1, 1, 0]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidMatrix(_)));
    }

    #[test]
    fn full_matrix_rejects_wrong_size() {
        let err = ExplicitMatrix::from_full(3, vec![0; 8]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidMatrix(_)));
    }

    #[test]
    fn upper_row_matches_full() {
        let ur = ExplicitMatrix::from_upper_row(3, &[1, 2, 3]).unwrap();
        let full = ExplicitMatrix::from_full(3, vec![0, 1, 2, 1, 0, 3, 2, 3, 0]).unwrap();
        assert_eq!(ur, full);
    }

    #[test]
    fn lower_diag_row_matches_full() {
        // rows: [0], [1,0], [2,3,0]
        let ld = ExplicitMatrix::from_lower_diag_row(3, &[0, 1, 0, 2, 3, 0]).unwrap();
        let full = ExplicitMatrix::from_full(3, vec![0, 1, 2, 1, 0, 3, 2, 3, 0]).unwrap();
        assert_eq!(ld, full);
    }

    #[test]
    fn upper_diag_row_matches_full() {
        // rows: [0,1,2], [0,3], [0]
        let ud = ExplicitMatrix::from_upper_diag_row(3, &[0, 1, 2, 0, 3, 0]).unwrap();
        let full = ExplicitMatrix::from_full(3, vec![0, 1, 2, 1, 0, 3, 2, 3, 0]).unwrap();
        assert_eq!(ud, full);
    }

    #[test]
    fn bytes_accounting() {
        let m = ExplicitMatrix::from_upper_row(4, &[1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(m.bytes(), 16 * 4);
    }
}
