//! TSPLIB95 edge-weight functions.
//!
//! The paper evaluates exclusively on 2-D Euclidean (`EUC_2D`) TSPLIB
//! instances with the classic nearest-integer rounding, but a library a
//! downstream user would adopt must read the rest of the TSPLIB catalogue,
//! so every coordinate-based weight function of the TSPLIB95 spec that
//! applies to 2-D data is implemented here, plus explicit matrices (see
//! [`crate::matrix`]).

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// Edge-weight function identifiers, mirroring the TSPLIB95
/// `EDGE_WEIGHT_TYPE` keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Rounded 2-D Euclidean distance — the paper's metric (Listing 1).
    Euc2d,
    /// 2-D Euclidean distance rounded *up*.
    Ceil2d,
    /// Manhattan (L1) distance, rounded.
    Man2d,
    /// Maximum (L∞) distance.
    Max2d,
    /// Pseudo-Euclidean distance of the `att` instances.
    Att,
    /// Geographical distance (coordinates are DDD.MM latitude/longitude).
    Geo,
    /// Distances come from an explicit matrix
    /// ([`crate::matrix::ExplicitMatrix`]); there is no coordinate formula.
    Explicit,
}

/// Mean Earth radius used by TSPLIB's `GEO` metric, in kilometres.
pub const GEO_EARTH_RADIUS: f64 = 6378.388;

impl Metric {
    /// TSPLIB95 keyword for this metric.
    pub fn keyword(&self) -> &'static str {
        match self {
            Metric::Euc2d => "EUC_2D",
            Metric::Ceil2d => "CEIL_2D",
            Metric::Man2d => "MAN_2D",
            Metric::Max2d => "MAX_2D",
            Metric::Att => "ATT",
            Metric::Geo => "GEO",
            Metric::Explicit => "EXPLICIT",
        }
    }

    /// Parse a TSPLIB95 `EDGE_WEIGHT_TYPE` keyword.
    pub fn from_keyword(kw: &str) -> Option<Metric> {
        Some(match kw.trim() {
            "EUC_2D" => Metric::Euc2d,
            "CEIL_2D" => Metric::Ceil2d,
            "MAN_2D" => Metric::Man2d,
            "MAX_2D" => Metric::Max2d,
            "ATT" => Metric::Att,
            "GEO" => Metric::Geo,
            "EXPLICIT" => Metric::Explicit,
            _ => return None,
        })
    }

    /// `true` when the metric is computed from node coordinates.
    pub fn is_coordinate_based(&self) -> bool {
        !matches!(self, Metric::Explicit)
    }

    /// Integer distance between two points under this metric.
    ///
    /// # Panics
    /// Panics for [`Metric::Explicit`]; explicit distances live in an
    /// [`crate::matrix::ExplicitMatrix`] and are dispatched by
    /// [`crate::Instance::dist`].
    #[inline]
    pub fn dist(&self, a: &Point, b: &Point) -> i32 {
        match self {
            Metric::Euc2d => a.euc_2d(b),
            Metric::Ceil2d => ceil_2d(a, b),
            Metric::Man2d => man_2d(a, b),
            Metric::Max2d => max_2d(a, b),
            Metric::Att => att(a, b),
            Metric::Geo => geo(a, b),
            Metric::Explicit => {
                panic!("EXPLICIT metric has no coordinate formula; use Instance::dist")
            }
        }
    }
}

/// `CEIL_2D`: Euclidean distance rounded up to the next integer.
#[inline]
pub fn ceil_2d(a: &Point, b: &Point) -> i32 {
    let dx = (a.x - b.x) as f64;
    let dy = (a.y - b.y) as f64;
    (dx * dx + dy * dy).sqrt().ceil() as i32
}

/// `MAN_2D`: rounded L1 distance.
#[inline]
pub fn man_2d(a: &Point, b: &Point) -> i32 {
    let dx = (a.x - b.x).abs() as f64;
    let dy = (a.y - b.y).abs() as f64;
    (dx + dy + 0.5) as i32
}

/// `MAX_2D`: L∞ distance (each component rounded to nearest first, per
/// the TSPLIB95 spec).
#[inline]
pub fn max_2d(a: &Point, b: &Point) -> i32 {
    let dx = ((a.x - b.x).abs() as f64 + 0.5) as i32;
    let dy = ((a.y - b.y).abs() as f64 + 0.5) as i32;
    dx.max(dy)
}

/// `ATT`: the pseudo-Euclidean metric of att48/att532.
#[inline]
pub fn att(a: &Point, b: &Point) -> i32 {
    let dx = (a.x - b.x) as f64;
    let dy = (a.y - b.y) as f64;
    let rij = ((dx * dx + dy * dy) / 10.0).sqrt();
    let tij = (rij + 0.5).floor();
    if tij < rij {
        tij as i32 + 1
    } else {
        tij as i32
    }
}

/// Convert a TSPLIB `DDD.MM` coordinate to radians.
#[inline]
fn geo_radians(coord: f64) -> f64 {
    let deg = coord.trunc();
    let min = coord - deg;
    std::f64::consts::PI * (deg + 5.0 * min / 3.0) / 180.0
}

/// `GEO`: geographical distance on the idealized sphere, in kilometres.
#[inline]
pub fn geo(a: &Point, b: &Point) -> i32 {
    let lat_a = geo_radians(a.x as f64);
    let lon_a = geo_radians(a.y as f64);
    let lat_b = geo_radians(b.x as f64);
    let lon_b = geo_radians(b.y as f64);
    let q1 = (lon_a - lon_b).cos();
    let q2 = (lat_a - lat_b).cos();
    let q3 = (lat_a + lat_b).cos();
    // Clamp against floating-point drift past ±1, which would make acos NaN.
    let arg = (0.5 * ((1.0 + q1) * q2 - (1.0 - q1) * q3)).clamp(-1.0, 1.0);
    (GEO_EARTH_RADIUS * arg.acos() + 1.0) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f32, y: f32) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn keyword_round_trip() {
        for m in [
            Metric::Euc2d,
            Metric::Ceil2d,
            Metric::Man2d,
            Metric::Max2d,
            Metric::Att,
            Metric::Geo,
            Metric::Explicit,
        ] {
            assert_eq!(Metric::from_keyword(m.keyword()), Some(m));
        }
        assert_eq!(Metric::from_keyword("NO_SUCH"), None);
    }

    #[test]
    fn euc_2d_345_triangle() {
        assert_eq!(Metric::Euc2d.dist(&p(0.0, 0.0), &p(3.0, 4.0)), 5);
    }

    #[test]
    fn ceil_2d_rounds_up() {
        assert_eq!(Metric::Ceil2d.dist(&p(0.0, 0.0), &p(1.0, 1.0)), 2);
        assert_eq!(Metric::Ceil2d.dist(&p(0.0, 0.0), &p(3.0, 4.0)), 5);
    }

    #[test]
    fn man_2d_sums_components() {
        assert_eq!(Metric::Man2d.dist(&p(0.0, 0.0), &p(3.0, 4.0)), 7);
        assert_eq!(Metric::Man2d.dist(&p(1.0, 1.0), &p(-1.0, -1.0)), 4);
    }

    #[test]
    fn max_2d_takes_larger_component() {
        assert_eq!(Metric::Max2d.dist(&p(0.0, 0.0), &p(3.0, 4.0)), 4);
        assert_eq!(Metric::Max2d.dist(&p(0.0, 0.0), &p(-6.0, 2.0)), 6);
    }

    #[test]
    fn att_matches_spec_shape() {
        // ATT distance is ceil-like on sqrt(d2/10).
        // d2 = 90 -> rij = 3.0 -> tij = 3.
        assert_eq!(att(&p(0.0, 0.0), &p(3.0, 9.0)), 3);
        // d2 = 100 -> rij = sqrt(10) = 3.162 -> tij = nint = 3 < rij -> 4.
        assert_eq!(att(&p(0.0, 0.0), &p(10.0, 0.0)), 4);
    }

    #[test]
    fn geo_is_symmetric() {
        let a = p(49.30, 8.33); // ~ ulysses-style DDD.MM data
        let b = p(36.08, -86.46);
        assert_eq!(geo(&a, &b), geo(&b, &a));
        // Note: the TSPLIB GEO formula gives d(i,i) = (int)(0 + 1.0) = 1;
        // self-distances are never used by tours, so this is by design.
        assert_eq!(geo(&a, &a), 1);
        // Distances between far-apart places are thousands of km.
        assert!(geo(&a, &b) > 5000, "got {}", geo(&a, &b));
    }

    #[test]
    #[should_panic(expected = "EXPLICIT")]
    fn explicit_panics_on_coordinate_dispatch() {
        let _ = Metric::Explicit.dist(&p(0.0, 0.0), &p(1.0, 1.0));
    }
}
