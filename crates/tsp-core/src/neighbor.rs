//! k-nearest-neighbour candidate lists.
//!
//! The paper's §VI/§VII name **neighbourhood pruning** as the natural next
//! step ("simple ideas such as neighborhood pruning can be applied at the
//! cost of the quality of the solution"). Candidate lists restrict the
//! 2-opt neighbourhood to pairs whose first removed edge endpoint is near
//! the second, dropping the sweep from O(n²) to O(n·k). This module builds
//! the lists; the pruned search itself lives in `tsp-2opt::pruned`.

use crate::instance::Instance;

/// Per-city lists of the `k` nearest other cities, sorted by distance.
#[derive(Debug, Clone)]
pub struct NeighborLists {
    k: usize,
    /// Flattened `n × k` city indices.
    lists: Vec<u32>,
}

impl NeighborLists {
    /// Build lists of the `k` nearest neighbours for every city.
    ///
    /// `k` is clamped to `n - 1`. Complexity O(n² + n·k·log k) via
    /// selection; fine for the instance sizes the lists are worthwhile on.
    pub fn build(inst: &Instance, k: usize) -> Self {
        let n = inst.len();
        let k = k.min(n.saturating_sub(1));
        let mut lists = Vec::with_capacity(n * k);
        let mut scratch: Vec<(i32, u32)> = Vec::with_capacity(n - 1);
        for i in 0..n {
            scratch.clear();
            for j in 0..n {
                if i != j {
                    scratch.push((inst.dist(i, j), j as u32));
                }
            }
            // Partial selection of the k smallest, then sort those.
            if k < scratch.len() {
                scratch.select_nth_unstable(k - 1);
                scratch.truncate(k);
            }
            scratch.sort_unstable();
            lists.extend(scratch.iter().map(|&(_, j)| j));
        }
        NeighborLists { k, lists }
    }

    /// Number of neighbours per city.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of cities.
    #[inline]
    pub fn len(&self) -> usize {
        self.lists.len().checked_div(self.k).unwrap_or(0)
    }

    /// `true` when no lists were built.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The neighbours of city `c`, nearest first.
    #[inline]
    pub fn neighbors(&self, c: usize) -> &[u32] {
        &self.lists[c * self.k..(c + 1) * self.k]
    }

    /// Bytes held by the lists (for memory-budget reporting).
    pub fn bytes(&self) -> usize {
        self.lists.len() * core::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Metric;
    use crate::point::Point;

    fn line_instance(n: usize) -> Instance {
        // Cities on a line at x = 0, 1, 2, ... so nearest neighbours are
        // trivially the adjacent indices.
        let pts = (0..n).map(|i| Point::new(i as f32, 0.0)).collect();
        Instance::new("line", Metric::Euc2d, pts).unwrap()
    }

    #[test]
    fn nearest_on_a_line() {
        let inst = line_instance(10);
        let nl = NeighborLists::build(&inst, 3);
        assert_eq!(nl.k(), 3);
        assert_eq!(nl.len(), 10);
        // City 0's nearest are 1, 2, 3.
        assert_eq!(nl.neighbors(0), &[1, 2, 3]);
        // City 5's nearest are 4 and 6 (tie broken by index), then 3 or 7.
        let nb5 = nl.neighbors(5);
        assert!(nb5.contains(&4) && nb5.contains(&6));
    }

    #[test]
    fn k_clamped_to_n_minus_1() {
        let inst = line_instance(4);
        let nl = NeighborLists::build(&inst, 100);
        assert_eq!(nl.k(), 3);
        assert_eq!(nl.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn lists_never_contain_self() {
        let inst = line_instance(12);
        let nl = NeighborLists::build(&inst, 5);
        for c in 0..12 {
            assert!(!nl.neighbors(c).contains(&(c as u32)));
        }
    }

    #[test]
    fn lists_are_sorted_by_distance() {
        let inst = line_instance(20);
        let nl = NeighborLists::build(&inst, 7);
        for c in 0..20 {
            let ds: Vec<i32> = nl
                .neighbors(c)
                .iter()
                .map(|&j| inst.dist(c, j as usize))
                .collect();
            let mut sorted = ds.clone();
            sorted.sort_unstable();
            assert_eq!(ds, sorted);
        }
    }

    #[test]
    fn bytes_accounting() {
        let inst = line_instance(8);
        let nl = NeighborLists::build(&inst, 2);
        assert_eq!(nl.bytes(), 8 * 2 * 4);
    }
}
