//! 2-D point type — the `float2` of the paper's CUDA/OpenCL kernels.

use serde::{Deserialize, Serialize};

/// A city location in the plane.
///
/// Coordinates are `f32` to match the paper's kernels (Listing 1 computes
/// distances in single precision: `sqrtf(dx*dx + dy*dy) + 0.5f`). TSPLIB
/// files may carry more precision; parsing truncates to `f32` exactly as a
/// GPU port would.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate.
    pub x: f32,
    /// Y coordinate.
    pub y: f32,
}

impl Point {
    /// Create a point from its coordinates.
    #[inline]
    pub const fn new(x: f32, y: f32) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`, in `f32` as on the device.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The paper's Listing 1: rounded integer Euclidean distance,
    /// `(int)(sqrtf(dx*dx + dy*dy) + 0.5f)`.
    #[inline]
    pub fn euc_2d(&self, other: &Point) -> i32 {
        (self.dist2(other).sqrt() + 0.5) as i32
    }

    /// Size in bytes of one point on the device (`float2`).
    pub const DEVICE_BYTES: usize = 8;

    /// Pack the point into one 64-bit device word (`x` in the low half,
    /// `y` in the high half) — the layout device-resident coordinate
    /// buffers use, since kernel-visible writes go through 64-bit atomic
    /// words.
    #[inline]
    pub fn to_device_word(self) -> u64 {
        self.x.to_bits() as u64 | ((self.y.to_bits() as u64) << 32)
    }

    /// Unpack a point from its 64-bit device word.
    #[inline]
    pub fn from_device_word(w: u64) -> Self {
        Point::new(f32::from_bits(w as u32), f32::from_bits((w >> 32) as u32))
    }
}

impl From<(f32, f32)> for Point {
    fn from((x, y): (f32, f32)) -> Self {
        Point::new(x, y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x as f32, y as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_distance_rounds_to_nearest() {
        let a = Point::new(0.0, 0.0);
        assert_eq!(a.euc_2d(&Point::new(3.0, 4.0)), 5);
        // 1.4142... rounds to 1.
        assert_eq!(a.euc_2d(&Point::new(1.0, 1.0)), 1);
        // 2.236... rounds to 2.
        assert_eq!(a.euc_2d(&Point::new(1.0, 2.0)), 2);
        // 2.828... rounds to 3.
        assert_eq!(a.euc_2d(&Point::new(2.0, 2.0)), 3);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(12.5, -3.75);
        let b = Point::new(-7.25, 99.0);
        assert_eq!(a.euc_2d(&b), b.euc_2d(&a));
        assert_eq!(a.euc_2d(&a), 0);
    }

    #[test]
    fn device_size_matches_float2() {
        assert_eq!(Point::DEVICE_BYTES, core::mem::size_of::<Point>());
    }

    #[test]
    fn device_word_roundtrip_is_bit_exact() {
        for p in [
            Point::new(0.0, 0.0),
            Point::new(-0.0, 1.5),
            Point::new(1234.5678, -99.25),
            Point::new(f32::MIN_POSITIVE, f32::MAX),
        ] {
            let q = Point::from_device_word(p.to_device_word());
            assert_eq!(p.x.to_bits(), q.x.to_bits());
            assert_eq!(p.y.to_bits(), q.y.to_bits());
        }
        // Known layout: x occupies the low 32 bits.
        let w = Point::new(1.0, 2.0).to_device_word();
        assert_eq!(w as u32, 1.0f32.to_bits());
        assert_eq!((w >> 32) as u32, 2.0f32.to_bits());
    }
}
