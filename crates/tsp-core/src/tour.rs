//! Tours: permutations of the cities, plus the move primitives used by
//! 2-opt and Iterated Local Search.

use crate::error::CoreError;
use crate::instance::Instance;
use crate::point::Point;
use rand::seq::SliceRandom;
use rand::Rng;

/// A perturbation move in replayable form: the cut points actually
/// drawn, with the RNG already consumed. [`Tour::double_bridge`] returns
/// one, and [`Tour::apply_kick`] re-applies it deterministically — which
/// is what lets a flight recording reproduce a perturbation without
/// replaying the generator that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KickMove {
    /// The 4-opt double bridge with sorted interior cut points
    /// `0 < a < b < c < n`: segments `A B C D` become `A C B D`.
    DoubleBridge {
        /// First cut point.
        a: usize,
        /// Second cut point.
        b: usize,
        /// Third cut point.
        c: usize,
    },
    /// A 2-opt style segment reversal of `order[i+1..=j]` (the small-`n`
    /// fallback of [`Tour::double_bridge`], and the `RandomReversal`
    /// perturbation).
    SegmentReversal {
        /// Left edge position of the reversed segment.
        i: usize,
        /// Right edge position of the reversed segment.
        j: usize,
    },
    /// No structural change (tour too small to perturb).
    Noop,
}

/// A closed tour visiting every city exactly once.
///
/// The tour is stored as the visiting order `order[0], order[1], …,
/// order[n-1], order[0]`. City indices are `u32` (the paper's route array
/// uses 32-bit indices; Table I accounts `n * sizeof(route data type)`
/// with 4-byte entries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tour {
    order: Vec<u32>,
}

impl Tour {
    /// Wrap a visiting order, validating that it is a permutation of
    /// `0..n`.
    pub fn new(order: Vec<u32>) -> Result<Self, CoreError> {
        let n = order.len();
        let mut seen = vec![false; n];
        for &c in &order {
            let c = c as usize;
            if c >= n {
                return Err(CoreError::InvalidTour(format!(
                    "city {c} out of range for tour of length {n}"
                )));
            }
            if seen[c] {
                return Err(CoreError::InvalidTour(format!("city {c} visited twice")));
            }
            seen[c] = true;
        }
        Ok(Tour { order })
    }

    /// The identity tour `0, 1, …, n-1`.
    pub fn identity(n: usize) -> Self {
        Tour {
            order: (0..n as u32).collect(),
        }
    }

    /// A uniformly random tour.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(rng);
        Tour { order }
    }

    /// Number of cities.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when the tour is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// City at tour position `pos`.
    #[inline]
    pub fn city(&self, pos: usize) -> u32 {
        self.order[pos]
    }

    /// The visiting order as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.order
    }

    /// Consume the tour, returning the visiting order.
    pub fn into_inner(self) -> Vec<u32> {
        self.order
    }

    /// Total tour length under `inst`, including the closing edge
    /// `order[n-1] -> order[0]`.
    pub fn length(&self, inst: &Instance) -> i64 {
        let n = self.order.len();
        if n < 2 {
            return 0;
        }
        let mut total = 0i64;
        for k in 0..n {
            let a = self.order[k] as usize;
            let b = self.order[(k + 1) % n] as usize;
            total += inst.dist(a, b) as i64;
        }
        total
    }

    /// Check the permutation invariant (used by tests and debug builds).
    pub fn validate(&self) -> Result<(), CoreError> {
        Tour::new(self.order.clone()).map(|_| ())
    }

    /// Apply the 2-opt move for the candidate pair `(i, j)` (tour
    /// positions, `i < j`): remove edges `(i, i+1)` and `(j, j+1)`,
    /// reconnect by reversing the segment `order[i+1..=j]` (the paper's
    /// Fig. 1/2).
    ///
    /// `j == i + 1` is a no-op (the reversed segment has length 1), which
    /// matches the zero delta such pairs evaluate to.
    #[inline]
    pub fn apply_two_opt(&mut self, i: usize, j: usize) {
        debug_assert!(i < j && j < self.order.len());
        self.order[i + 1..=j].reverse();
    }

    /// Reverse an arbitrary segment `[from..=to]` of the visiting order.
    pub fn reverse_segment(&mut self, from: usize, to: usize) {
        debug_assert!(from <= to && to < self.order.len());
        self.order[from..=to].reverse();
    }

    /// Reverse the cyclic segment of `len` positions starting at `from`,
    /// allowing the segment to wrap past the end of the order — the host
    /// mirror of the device reversal kernel's swap schedule: swap `k`
    /// exchanges positions `(from + k) mod n` and `(from + len - 1 - k)
    /// mod n` for `k < len / 2`. `len <= 1` is a no-op.
    ///
    /// # Panics
    /// Panics when the tour is non-empty and `from` is out of range, or
    /// when `len` exceeds the tour length.
    pub fn reverse_segment_wrapping(&mut self, from: usize, len: usize) {
        let n = self.order.len();
        if n == 0 || len <= 1 {
            return;
        }
        assert!(from < n, "segment start {from} out of range for {n}");
        assert!(len <= n, "segment of {len} positions exceeds tour of {n}");
        for k in 0..len / 2 {
            let a = (from + k) % n;
            let b = (from + len - 1 - k) % n;
            self.order.swap(a, b);
        }
    }

    /// The double-bridge 4-opt perturbation used by the paper's ILS (§V:
    /// "We used a simple double-bridge move as a perturbation technique").
    ///
    /// Picks three random cut points `0 < a < b < c < n` and rearranges the
    /// four segments `A B C D` into `A C B D`. The move cannot be undone by
    /// any sequence of 2-opt moves that only shortens the tour, which is
    /// exactly why ILS uses it to escape 2-opt local minima.
    /// Returns the move actually applied (the cut points drawn), so a
    /// recording can re-apply it later with [`Tour::apply_kick`].
    pub fn double_bridge<R: Rng + ?Sized>(&mut self, rng: &mut R) -> KickMove {
        let n = self.order.len();
        if n < 8 {
            // Too small for three distinct interior cut points to matter;
            // fall back to a random 2-exchange.
            if n >= 4 {
                let i = rng.gen_range(0..n - 2);
                let j = rng.gen_range(i + 1..n - 1);
                self.apply_two_opt(i, j);
                return KickMove::SegmentReversal { i, j };
            }
            return KickMove::Noop;
        }
        let mut cuts = [
            rng.gen_range(1..n),
            rng.gen_range(1..n),
            rng.gen_range(1..n),
        ];
        cuts.sort_unstable();
        let [a, b, c] = cuts;
        if a == b || b == c {
            // Degenerate draw: retry (probability of repeated degeneracy
            // vanishes quickly).
            return self.double_bridge(rng);
        }
        self.apply_double_bridge(a, b, c);
        KickMove::DoubleBridge { a, b, c }
    }

    fn apply_double_bridge(&mut self, a: usize, b: usize, c: usize) {
        let n = self.order.len();
        debug_assert!(0 < a && a < b && b < c && c < n);
        let mut next = Vec::with_capacity(n);
        next.extend_from_slice(&self.order[..a]);
        next.extend_from_slice(&self.order[b..c]);
        next.extend_from_slice(&self.order[a..b]);
        next.extend_from_slice(&self.order[c..]);
        self.order = next;
    }

    /// Re-apply a recorded perturbation move. Deterministic: applying
    /// the [`KickMove`] returned by [`Tour::double_bridge`] to a copy of
    /// the pre-perturbation tour reproduces the perturbed tour exactly.
    pub fn apply_kick(&mut self, kick: &KickMove) {
        match *kick {
            KickMove::DoubleBridge { a, b, c } => self.apply_double_bridge(a, b, c),
            KickMove::SegmentReversal { i, j } => self.apply_two_opt(i, j),
            KickMove::Noop => {}
        }
    }

    /// Coordinates in visiting order — the paper's **Optimization 2**
    /// (Fig. 6): the host materialises `ordered_coordinates[k] =
    /// coordinates[route[k]]` before the device copy, so the kernel needs
    /// neither the route array nor the indirection.
    ///
    /// # Errors
    /// Fails when the instance is not coordinate-based.
    pub fn ordered_points(&self, inst: &Instance) -> Result<Vec<Point>, CoreError> {
        if !inst.is_coordinate_based() {
            return Err(CoreError::MissingCoordinates);
        }
        Ok(self.order.iter().map(|&c| inst.point(c as usize)).collect())
    }

    /// Iterate over the tour's edges as position pairs `(k, k+1 mod n)`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let n = self.order.len();
        (0..n).map(move |k| (self.order[k], self.order[(k + 1) % n]))
    }

    /// Number of undirected edges this tour shares with `other` — the
    /// standard tour-similarity measure (n shared edges ⇔ identical
    /// cycles up to rotation/reflection). O(n).
    ///
    /// # Panics
    /// Panics when the tours have different lengths.
    pub fn shared_edges(&self, other: &Tour) -> usize {
        assert_eq!(self.len(), other.len(), "tours must have equal length");
        let n = self.len();
        if n < 2 {
            return 0;
        }
        // successor/predecessor of each city in `other`.
        let mut next = vec![0u32; n];
        let mut prev = vec![0u32; n];
        for (a, b) in other.edges() {
            next[a as usize] = b;
            prev[b as usize] = a;
        }
        self.edges()
            .filter(|&(a, b)| next[a as usize] == b || prev[a as usize] == b)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Metric;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn square() -> Instance {
        Instance::new(
            "square4",
            Metric::Euc2d,
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 10.0),
                Point::new(10.0, 10.0),
                Point::new(10.0, 0.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn identity_tour_length_on_square() {
        let inst = square();
        let t = Tour::identity(4);
        assert_eq!(t.length(&inst), 40);
    }

    #[test]
    fn crossing_tour_is_longer_and_two_opt_fixes_it() {
        let inst = square();
        // 0 -> 2 -> 1 -> 3 crosses the square's diagonals.
        let mut t = Tour::new(vec![0, 2, 1, 3]).unwrap();
        let before = t.length(&inst);
        assert_eq!(before, 48); // two sides + two diagonals = 10+14+10+14
                                // Reversing positions 1..=2 yields 0 -> 1 -> 2 -> 3.
        t.apply_two_opt(0, 2);
        assert_eq!(t.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(t.length(&inst), 40);
    }

    #[test]
    fn new_rejects_duplicates_and_out_of_range() {
        assert!(Tour::new(vec![0, 1, 1]).is_err());
        assert!(Tour::new(vec![0, 1, 3]).is_err());
        assert!(Tour::new(vec![0, 1, 2]).is_ok());
    }

    #[test]
    fn adjacent_two_opt_is_identity() {
        let mut t = Tour::identity(6);
        t.apply_two_opt(2, 3);
        assert_eq!(t.as_slice(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn double_bridge_preserves_permutation() {
        let mut rng = SmallRng::seed_from_u64(42);
        for n in [8usize, 9, 50, 257] {
            let mut t = Tour::random(n, &mut rng);
            for _ in 0..20 {
                t.double_bridge(&mut rng);
                t.validate().unwrap();
                assert_eq!(t.len(), n);
            }
        }
    }

    #[test]
    fn double_bridge_small_n_still_valid() {
        let mut rng = SmallRng::seed_from_u64(7);
        for n in [3usize, 4, 5, 6, 7] {
            let mut t = Tour::identity(n);
            for _ in 0..10 {
                t.double_bridge(&mut rng);
                t.validate().unwrap();
            }
        }
    }

    #[test]
    fn recorded_kicks_replay_exactly() {
        let mut rng = SmallRng::seed_from_u64(0x5eed);
        for n in [4usize, 6, 8, 40, 129] {
            let mut live = Tour::random(n, &mut rng);
            for _ in 0..25 {
                let before = live.clone();
                let kick = live.double_bridge(&mut rng);
                let mut replayed = before;
                replayed.apply_kick(&kick);
                assert_eq!(live, replayed, "n={n} kick={kick:?}");
            }
        }
    }

    #[test]
    fn ordered_points_follows_route() {
        let inst = square();
        let t = Tour::new(vec![2, 0, 3, 1]).unwrap();
        let pts = t.ordered_points(&inst).unwrap();
        assert_eq!(pts[0], Point::new(10.0, 10.0));
        assert_eq!(pts[1], Point::new(0.0, 0.0));
        assert_eq!(pts[3], Point::new(0.0, 10.0));
    }

    #[test]
    fn edges_wrap_around() {
        let t = Tour::new(vec![3, 1, 0, 2]).unwrap();
        let edges: Vec<_> = t.edges().collect();
        assert_eq!(edges, vec![(3, 1), (1, 0), (0, 2), (2, 3)]);
    }

    #[test]
    fn shared_edges_counts_undirected_overlap() {
        let a = Tour::identity(6);
        // Same cycle reversed: all 6 edges shared.
        let r = Tour::new(vec![5, 4, 3, 2, 1, 0]).unwrap();
        assert_eq!(a.shared_edges(&r), 6);
        // Same cycle rotated: all 6 edges shared.
        let rot = Tour::new(vec![2, 3, 4, 5, 0, 1]).unwrap();
        assert_eq!(a.shared_edges(&rot), 6);
        // One 2-opt move changes exactly 2 edges.
        let mut b = a.clone();
        b.apply_two_opt(1, 4);
        assert_eq!(a.shared_edges(&b), 4);
        // Self-similarity is n.
        assert_eq!(a.shared_edges(&a), 6);
    }

    #[test]
    fn shared_edges_of_disjoint_cycles() {
        // 0-1-2-3 vs 0-2-1-3: edges {01,12,23,30} vs {02,21,13,30}
        // share {12, 30} = 2.
        let a = Tour::identity(4);
        let b = Tour::new(vec![0, 2, 1, 3]).unwrap();
        assert_eq!(a.shared_edges(&b), 2);
    }

    #[test]
    fn wrapping_reversal_agrees_with_slice_reversal_inside_bounds() {
        let mut a = Tour::new(vec![4, 0, 3, 1, 5, 2]).unwrap();
        let mut b = a.clone();
        a.reverse_segment(1, 4);
        b.reverse_segment_wrapping(1, 4);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn wrapping_reversal_wraps_past_the_end() {
        // Segment of 4 starting at position 4 of a 6-tour covers
        // positions 4, 5, 0, 1 -> reversed order 1, 0, 5, 4.
        let mut t = Tour::identity(6);
        t.reverse_segment_wrapping(4, 4);
        assert_eq!(t.as_slice(), &[5, 4, 2, 3, 1, 0]);
        t.validate().unwrap();
    }

    #[test]
    fn wrapping_reversal_degenerate_segments_are_noops() {
        let mut t = Tour::new(vec![2, 0, 1]).unwrap();
        let orig = t.clone();
        t.reverse_segment_wrapping(1, 0);
        t.reverse_segment_wrapping(2, 1);
        assert_eq!(t, orig);
        // A full-length wrap reversal is still a permutation.
        t.reverse_segment_wrapping(2, 3);
        t.validate().unwrap();
    }

    #[test]
    fn random_tours_are_valid() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            let t = Tour::random(100, &mut rng);
            t.validate().unwrap();
        }
    }
}
