//! Property tests for the core data structures.

use proptest::prelude::*;
use tsp_core::{lut::DistanceLut, metric, Instance, Metric, Point, Tour};

fn arb_point() -> impl Strategy<Value = Point> {
    (-10_000i32..10_000, -10_000i32..10_000).prop_map(|(x, y)| Point::new(x as f32, y as f32))
}

fn arb_instance(metric: Metric) -> impl Strategy<Value = Instance> {
    proptest::collection::vec(arb_point(), 3..30)
        .prop_map(move |pts| Instance::new("prop", metric, pts).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn euclidean_distance_is_a_near_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        // Symmetry and identity hold exactly.
        prop_assert_eq!(a.euc_2d(&b), b.euc_2d(&a));
        prop_assert_eq!(a.euc_2d(&a), 0);
        prop_assert!(a.euc_2d(&b) >= 0);
        // Rounding can break the triangle inequality by at most 1 per
        // rounding site (2 total).
        prop_assert!(a.euc_2d(&c) <= a.euc_2d(&b) + b.euc_2d(&c) + 2);
    }

    #[test]
    fn all_coordinate_metrics_are_symmetric_nonnegative(
        a in arb_point(),
        b in arb_point(),
    ) {
        for m in [Metric::Euc2d, Metric::Ceil2d, Metric::Man2d, Metric::Max2d, Metric::Att] {
            prop_assert_eq!(m.dist(&a, &b), m.dist(&b, &a), "{:?}", m);
            prop_assert!(m.dist(&a, &b) >= 0, "{:?}", m);
            prop_assert_eq!(m.dist(&a, &a), 0, "{:?}", m);
        }
    }

    #[test]
    fn ceil_dominates_round_dominates_components(a in arb_point(), b in arb_point()) {
        let e = a.euc_2d(&b);
        let c = metric::ceil_2d(&a, &b);
        let mx = metric::max_2d(&a, &b);
        let mn = metric::man_2d(&a, &b);
        prop_assert!(c >= e);
        prop_assert!(c <= e + 1);
        // L_inf <= L2(+1 rounding slack) <= L1 (+ slack).
        prop_assert!(mx <= e + 1);
        prop_assert!(e <= mn + 1);
    }

    #[test]
    fn tour_length_is_rotation_invariant(inst in arb_instance(Metric::Euc2d), rot in 0usize..30) {
        let n = inst.len();
        let t = Tour::identity(n);
        let mut rotated: Vec<u32> = (0..n as u32).collect();
        rotated.rotate_left(rot % n);
        let tr = Tour::new(rotated).unwrap();
        prop_assert_eq!(t.length(&inst), tr.length(&inst));
    }

    #[test]
    fn tour_length_is_reversal_invariant(inst in arb_instance(Metric::Euc2d)) {
        let n = inst.len();
        let t = Tour::identity(n);
        let mut rev: Vec<u32> = (0..n as u32).collect();
        rev.reverse();
        let tr = Tour::new(rev).unwrap();
        prop_assert_eq!(t.length(&inst), tr.length(&inst));
    }

    #[test]
    fn two_opt_is_an_involution(
        inst in arb_instance(Metric::Euc2d),
        i_raw in 0usize..100,
        j_raw in 0usize..100,
    ) {
        let n = inst.len();
        let i = i_raw % (n - 2);
        let j = i + 1 + (j_raw % (n - 1 - i));
        let t0 = Tour::identity(n);
        let mut t = t0.clone();
        t.apply_two_opt(i, j);
        t.apply_two_opt(i, j);
        prop_assert_eq!(t.as_slice(), t0.as_slice());
    }

    #[test]
    fn lut_agrees_with_direct_distances(inst in arb_instance(Metric::Euc2d)) {
        let lut = DistanceLut::build(&inst);
        let n = inst.len();
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(lut.dist(i, j), inst.dist(i, j));
            }
        }
        prop_assert_eq!(lut.bytes(), n * n * 4);
    }

    #[test]
    fn ordered_points_is_route_indexed(inst in arb_instance(Metric::Euc2d), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let t = Tour::random(inst.len(), &mut rng);
        let pts = t.ordered_points(&inst).unwrap();
        for (k, p) in pts.iter().enumerate() {
            prop_assert_eq!(*p, inst.point(t.city(k) as usize));
        }
    }

    #[test]
    fn neighbor_lists_are_true_nearest(inst in arb_instance(Metric::Euc2d), k in 1usize..6) {
        use tsp_core::neighbor::NeighborLists;
        let nl = NeighborLists::build(&inst, k);
        let n = inst.len();
        for c in 0..n {
            let nb = nl.neighbors(c);
            // The k-th neighbour's distance equals the true k-th
            // smallest distance.
            let mut all: Vec<i32> = (0..n).filter(|&j| j != c).map(|j| inst.dist(c, j)).collect();
            all.sort_unstable();
            for (rank, &j) in nb.iter().enumerate() {
                prop_assert_eq!(inst.dist(c, j as usize), all[rank], "city {} rank {}", c, rank);
            }
        }
    }
}
