//! The workspace-wide error type.
//!
//! Every layer of the stack keeps its own precise error enum
//! ([`SimError`], [`CoreError`], [`TsplibError`], `EngineError`);
//! [`TspError`] is the union the facade surfaces, so one `?` works
//! across loading an instance, building an engine and running a solve.

use gpu_sim::SimError;
use std::fmt;
use tsp_2opt::EngineError;
use tsp_core::CoreError;
use tsp_tsplib::TsplibError;

/// Any error the TSP stack can raise, by originating layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum TspError {
    /// Simulated-device failure (launch config, memory, streams, …).
    Sim(SimError),
    /// Core data-structure failure (invalid tour, bad matrix, …).
    Core(CoreError),
    /// TSPLIB parsing or I/O failure.
    Tsplib(TsplibError),
    /// The requested configuration cannot run (e.g. a GPU engine on an
    /// explicit-matrix instance, or streams on a CPU engine).
    Unsupported(String),
    /// A flight recording cannot be replayed against this solver or
    /// instance (digest/config mismatch, malformed recording, or a
    /// nondeterministic knob such as a wall-clock budget).
    Replay(String),
    /// A textual artifact (CSV, JSONL, manifest) is malformed or
    /// truncated.
    Parse(String),
}

impl fmt::Display for TspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TspError::Sim(e) => write!(f, "simulator error: {e}"),
            TspError::Core(e) => write!(f, "core error: {e}"),
            TspError::Tsplib(e) => write!(f, "tsplib error: {e}"),
            TspError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            TspError::Replay(msg) => write!(f, "replay: {msg}"),
            TspError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for TspError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TspError::Sim(e) => Some(e),
            TspError::Core(e) => Some(e),
            TspError::Tsplib(e) => Some(e),
            TspError::Unsupported(_) | TspError::Replay(_) | TspError::Parse(_) => None,
        }
    }
}

impl From<SimError> for TspError {
    fn from(e: SimError) -> Self {
        TspError::Sim(e)
    }
}

impl From<CoreError> for TspError {
    fn from(e: CoreError) -> Self {
        TspError::Core(e)
    }
}

impl From<TsplibError> for TspError {
    fn from(e: TsplibError) -> Self {
        TspError::Tsplib(e)
    }
}

impl From<std::io::Error> for TspError {
    fn from(e: std::io::Error) -> Self {
        TspError::Tsplib(TsplibError::Io(e))
    }
}

/// `EngineError` flattens: its `Sim`/`Core` arms map onto the matching
/// [`TspError`] arms rather than nesting a fourth level.
impl From<EngineError> for TspError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Sim(e) => TspError::Sim(e),
            EngineError::Core(e) => TspError::Core(e),
            EngineError::Unsupported(msg) => TspError::Unsupported(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_converts_and_displays() {
        let e: TspError = CoreError::MissingCoordinates.into();
        assert!(e.to_string().starts_with("core error:"));

        let e: TspError = TsplibError::MissingKeyword("DIMENSION").into();
        assert!(e.to_string().contains("DIMENSION"));

        let e: TspError = EngineError::Unsupported("matrix instance".into()).into();
        assert!(
            matches!(e, TspError::Unsupported(_)),
            "EngineError flattens"
        );

        let e: TspError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, TspError::Tsplib(TsplibError::Io(_))));
    }

    #[test]
    fn source_chain_reaches_the_layer_error() {
        use std::error::Error;
        let e: TspError = CoreError::MissingCoordinates.into();
        assert!(e.source().is_some());
        assert!(TspError::Unsupported("x".into()).source().is_none());
    }
}
