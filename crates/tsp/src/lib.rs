//! # tsp
//!
//! The facade crate: one import, one builder, one error type over the
//! whole stack — instance loading ([`tsplib`]), construction
//! heuristics, the simulated-GPU 2-opt engines ([`twoopt`]), ILS and
//! sharded multistart ([`ils`]), and structured tracing ([`trace`]).
//!
//! ```
//! use tsp::prelude::*;
//!
//! let inst = tsp::tsplib::generate("quick", 48, tsp::tsplib::Style::Uniform, 1);
//! let solution = Solver::builder()
//!     .ils(IlsOptions::default().with_max_iterations(3u64))
//!     .build()
//!     .run(&inst)
//!     .unwrap();
//! assert!(solution.length <= solution.initial_length);
//! ```
//!
//! The pre-facade entry points (`GpuTwoOpt` + `optimize`,
//! `iterated_local_search`, `parallel_multistart`) remain available —
//! re-exported here as deprecated shims — but new code should go
//! through [`Solver`].

pub mod error;
pub mod solver;

pub use error::TspError;
pub use solver::{Construction, EngineKind, Solution, Solver, SolverBuilder};

// The layer crates, under stable facade names.
pub use gpu_sim as sim;
pub use tsp_2opt as twoopt;
pub use tsp_construction as construction;
pub use tsp_core as core;
pub use tsp_ils as ils;
pub use tsp_trace as trace;
pub use tsp_tsplib as tsplib;

/// Everything a typical solve needs, one `use` away.
pub mod prelude {
    pub use crate::error::TspError;
    pub use crate::solver::{Construction, EngineKind, Solution, Solver, SolverBuilder};
    pub use gpu_sim::{spec, DevicePool, DeviceSpec, StreamId, StreamReport};
    pub use tsp_2opt::{SearchOptions, Strategy, TwoOptEngine};
    pub use tsp_core::{Instance, Metric, Point, Tour};
    pub use tsp_ils::{Acceptance, IlsOptions, Perturbation, ShardedMultistart, ShardedOutcome};
    pub use tsp_trace::Recorder;
}

/// Deprecated pre-facade engine type. `tsp_2opt::GpuTwoOpt` re-exported
/// so old call sites keep compiling; new code configures the same
/// engine through [`SolverBuilder`].
#[deprecated(note = "use `tsp::Solver` (see `SolverBuilder`) instead")]
pub type GpuTwoOpt = tsp_2opt::GpuTwoOpt;

/// Deprecated pre-facade ILS entry point. Thin wrapper over
/// `tsp_ils::iterated_local_search` returning the facade error type;
/// new code calls [`SolverBuilder::ils`].
#[deprecated(note = "use `tsp::Solver` with `SolverBuilder::ils` instead")]
pub fn iterated_local_search<E: tsp_2opt::TwoOptEngine + ?Sized>(
    engine: &mut E,
    inst: &tsp_core::Instance,
    initial: tsp_core::Tour,
    opts: tsp_ils::IlsOptions,
) -> Result<tsp_ils::IlsOutcome, TspError> {
    tsp_ils::iterated_local_search(engine, inst, initial, opts).map_err(TspError::from)
}

/// Deprecated pre-facade multistart driver: holds the starting tours
/// and options, runs one host thread per chain. New code calls
/// [`SolverBuilder::restarts`] (optionally with
/// [`SolverBuilder::devices`] / [`SolverBuilder::streams`] to shard
/// over a device pool).
#[deprecated(note = "use `tsp::Solver` with `SolverBuilder::restarts` instead")]
pub struct MultiStart {
    /// One ILS chain per starting tour.
    pub starts: Vec<tsp_core::Tour>,
    /// Shared options; chain `i` runs with seed `opts.seed + i`.
    pub opts: tsp_ils::IlsOptions,
}

#[allow(deprecated)]
impl MultiStart {
    /// Bundle starts and options.
    pub fn new(starts: Vec<tsp_core::Tour>, opts: tsp_ils::IlsOptions) -> Self {
        MultiStart { starts, opts }
    }

    /// Run every chain (engine per chain from `factory`) and return
    /// `(best, all)` exactly like `tsp_ils::parallel_multistart`.
    pub fn run<E, F>(
        self,
        factory: F,
        inst: &tsp_core::Instance,
    ) -> Result<(tsp_ils::IlsOutcome, Vec<tsp_ils::IlsOutcome>), TspError>
    where
        E: tsp_2opt::TwoOptEngine + Send,
        F: Fn() -> E + Sync,
    {
        tsp_ils::parallel_multistart(factory, inst, self.starts, self.opts).map_err(TspError::from)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod shim_tests {
    use super::*;
    use tsp_core::Tour;
    use tsp_tsplib::{generate, Style};

    #[test]
    fn deprecated_shims_agree_with_the_facade_paths() {
        let inst = generate("shim", 50, Style::Uniform, 2);
        let opts = tsp_ils::IlsOptions::default()
            .with_max_iterations(4u64)
            .with_seed(17);

        // Old style: engine + free function.
        let mut engine = GpuTwoOpt::new(gpu_sim::spec::gtx_680_cuda());
        let old =
            iterated_local_search(&mut engine, &inst, Tour::identity(50), opts.clone()).unwrap();

        // New style: the facade.
        let new = Solver::builder()
            .construction(Construction::Identity)
            .ils(opts.clone())
            .build()
            .run(&inst)
            .unwrap();
        assert_eq!(old.best_length, new.length);
        assert_eq!(old.best.as_slice(), new.tour.as_slice());

        // MultiStart shim delegates to parallel_multistart.
        let starts = vec![Tour::identity(50), Tour::identity(50)];
        let (best, all) = MultiStart::new(starts.clone(), opts.clone())
            .run(|| GpuTwoOpt::new(gpu_sim::spec::gtx_680_cuda()), &inst)
            .unwrap();
        let (best2, all2) = tsp_ils::parallel_multistart(
            || GpuTwoOpt::new(gpu_sim::spec::gtx_680_cuda()),
            &inst,
            starts,
            opts,
        )
        .unwrap();
        assert_eq!(best.best_length, best2.best_length);
        assert_eq!(all.len(), all2.len());
    }
}
