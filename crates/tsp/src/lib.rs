//! # tsp
//!
//! The facade crate: one import, one builder, one error type over the
//! whole stack — instance loading ([`tsplib`]), construction
//! heuristics, the simulated-GPU 2-opt engines ([`twoopt`]), ILS and
//! sharded multistart ([`ils`]), and structured tracing ([`trace`]).
//!
//! ```
//! use tsp::prelude::*;
//!
//! let inst = tsp::tsplib::generate("quick", 48, tsp::tsplib::Style::Uniform, 1);
//! let solution = Solver::builder()
//!     .ils(IlsOptions::default().with_max_iterations(3u64))
//!     .build()
//!     .run(&inst)
//!     .unwrap();
//! assert!(solution.length <= solution.initial_length);
//! ```
//!
//! The pre-facade entry points live on in the layer crates
//! (`tsp::twoopt`, `tsp::ils`, …); new code should go through
//! [`Solver`].

pub mod error;
pub mod replay;
pub mod solver;

pub use error::TspError;
pub use solver::{Construction, EngineKind, Solution, Solver, SolverBuilder, TelemetryOptions};

/// Every kernel strategy, in one place, so the differential suites
/// iterate a single list and a freshly added strategy cannot be
/// silently skipped. `tile` parameterizes [`Strategy::Tiled`], `k` the
/// candidate family (clamped to `n - 1` by the engine).
///
/// [`Strategy::Tiled`]: tsp_2opt::Strategy::Tiled
pub fn all_strategies(tile: usize, k: usize) -> Vec<tsp_2opt::Strategy> {
    use tsp_2opt::Strategy;
    vec![
        Strategy::Auto,
        Strategy::Shared,
        Strategy::Tiled { tile },
        Strategy::GlobalOnly,
        Strategy::Unordered,
        Strategy::DeviceResident,
        Strategy::Candidate { k },
        Strategy::CandidateResident { k },
    ]
}

// The layer crates, under stable facade names.
pub use gpu_sim as sim;
pub use tsp_2opt as twoopt;
pub use tsp_construction as construction;
pub use tsp_core as core;
pub use tsp_ils as ils;
pub use tsp_prof as prof;
pub use tsp_replay as flight;
pub use tsp_telemetry as telemetry;
pub use tsp_trace as trace;
pub use tsp_tsplib as tsplib;

/// Everything a typical solve needs, one `use` away.
pub mod prelude {
    pub use crate::all_strategies;
    pub use crate::error::TspError;
    pub use crate::solver::{
        Construction, EngineKind, Solution, Solver, SolverBuilder, TelemetryOptions,
    };
    pub use gpu_sim::{spec, DevicePool, DeviceSpec, StreamId, StreamReport};
    pub use tsp_2opt::{SearchOptions, Strategy, TwoOptEngine};
    pub use tsp_core::{Instance, Metric, Point, Tour};
    pub use tsp_ils::{Acceptance, IlsOptions, Perturbation, ShardedMultistart, ShardedOutcome};
    pub use tsp_prof::{Manifest, MemoryReport, ProfileReport, Profiler};
    pub use tsp_replay::{Divergence, FlightRecorder, Recording, ReplayReport};
    pub use tsp_telemetry::{Journal, JournalRecord, MetricsServer, Telemetry};
    pub use tsp_trace::Recorder;
}

#[cfg(test)]
mod facade_tests {
    use super::*;
    use tsp_core::Tour;
    use tsp_tsplib::{generate, Style};

    #[test]
    fn all_strategies_is_exhaustive() {
        use tsp_2opt::Strategy;
        // Compile-time canary: a new Strategy variant breaks this match,
        // pointing at the helper that must grow with it.
        let list = all_strategies(8, 4);
        for s in &list {
            match s {
                Strategy::Auto
                | Strategy::Shared
                | Strategy::Tiled { .. }
                | Strategy::GlobalOnly
                | Strategy::Unordered
                | Strategy::DeviceResident
                | Strategy::Candidate { .. }
                | Strategy::CandidateResident { .. } => {}
            }
        }
        assert_eq!(list.len(), 8);
        assert!(list.contains(&Strategy::Tiled { tile: 8 }));
        assert!(list.contains(&Strategy::Candidate { k: 4 }));
    }

    // The facade's single-chain and multistart paths agree with the
    // layer-crate entry points they wrap (this replaced the deprecated
    // shim test when the shims were removed).
    #[test]
    fn facade_agrees_with_the_layer_crate_paths() {
        let inst = generate("shim", 50, Style::Uniform, 2);
        let opts = tsp_ils::IlsOptions::default()
            .with_max_iterations(4u64)
            .with_seed(17);

        // Layer style: engine + free function.
        let mut engine = tsp_2opt::GpuTwoOpt::new(gpu_sim::spec::gtx_680_cuda());
        let old =
            tsp_ils::iterated_local_search(&mut engine, &inst, Tour::identity(50), opts.clone())
                .unwrap();

        // Facade style.
        let new = Solver::builder()
            .construction(Construction::Identity)
            .ils(opts.clone())
            .build()
            .run(&inst)
            .unwrap();
        assert_eq!(old.best_length, new.length);
        assert_eq!(old.best.as_slice(), new.tour.as_slice());

        // Facade restarts reduce exactly like parallel_multistart.
        let starts = vec![Tour::identity(50), Tour::identity(50)];
        let (best, all) = tsp_ils::parallel_multistart(
            || tsp_2opt::GpuTwoOpt::new(gpu_sim::spec::gtx_680_cuda()),
            &inst,
            starts,
            opts.clone(),
        )
        .unwrap();
        let sharded = Solver::builder()
            .construction(Construction::Identity)
            .ils(opts)
            .restarts(2)
            .build()
            .run(&inst)
            .unwrap();
        assert_eq!(all.len(), sharded.chains);
        assert_eq!(best.best_length, sharded.length);
        assert_eq!(best.best.as_slice(), sharded.tour.as_slice());
    }
}
