//! Record → replay through the [`Solver`] facade.
//!
//! A solver built with [`SolverBuilder::record`] logs every decision of
//! the run into a [`FlightRecorder`]; [`Solver::recording`] packages
//! the log with a header (instance digest, device-spec digest, full
//! solver configuration, chain 0's start tour) into a portable
//! [`Recording`]; [`Solver::replay`] re-executes a recording on an
//! identically-configured solver and bisects the event streams to the
//! first divergent event — clean when the run reproduced bit-for-bit.
//!
//! [`SolverBuilder::record`]: crate::SolverBuilder::record

use crate::solver::{EngineKind, Solution, Solver, SolverBuilder};
use crate::TspError;
use tsp_core::{Instance, Tour};
use tsp_replay::{
    compare_streams, digest_instance, FlightRecorder, Header, Recording, ReplayReport,
};

/// FNV-1a over a byte string — folds the config pairs into one u64 for
/// the run id (not a cryptographic digest; collisions only blur the
/// *correlation* id, never replay compatibility, which compares the
/// pairs verbatim).
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A recorded run must be free of wall-clock dependence: a real-time
/// budget truncates the loop at a nondeterministic iteration.
fn reject_wall_clock(cfg: &SolverBuilder) -> Result<(), TspError> {
    if cfg
        .ils
        .as_ref()
        .is_some_and(|o| o.max_host_seconds.is_some())
    {
        return Err(TspError::Replay(
            "max_host_seconds is wall-clock-dependent and cannot be recorded \
             or replayed deterministically; bound the run with max_iterations \
             or max_modeled_seconds instead"
                .into(),
        ));
    }
    if cfg.cancel.is_armed() {
        return Err(TspError::Replay(
            "an armed cancel token makes the run wall-clock-dependent and \
             cannot be recorded or replayed deterministically; bound the run \
             with max_iterations or max_modeled_seconds instead"
                .into(),
        ));
    }
    Ok(())
}

impl Solver {
    /// The full solver configuration as ordered key/value pairs — the
    /// `config` block of a recording header. Replay compares these
    /// verbatim, so every knob that affects the search is included.
    fn config_pairs(&self) -> Vec<(String, String)> {
        let cfg = &self.cfg;
        let mut pairs = vec![
            ("engine".into(), format!("{:?}", cfg.engine)),
            ("device".into(), cfg.spec.name.clone()),
            ("devices".into(), cfg.devices.to_string()),
            ("streams".into(), cfg.streams.to_string()),
            ("restarts".into(), cfg.restarts.to_string()),
            ("strategy".into(), format!("{:?}", cfg.strategy)),
            (
                "launch".into(),
                match cfg.launch {
                    Some((g, b)) => format!("{g}x{b}"),
                    None => "default".into(),
                },
            ),
            (
                "overlapped_transfers".into(),
                cfg.overlapped_transfers.to_string(),
            ),
            ("construction".into(), format!("{:?}", cfg.construction)),
            ("max_sweeps".into(), format!("{:?}", cfg.search.max_sweeps)),
        ];
        match &cfg.ils {
            None => pairs.push(("ils".into(), "off".into())),
            Some(o) => {
                pairs.push(("ils".into(), "on".into()));
                pairs.push((
                    "ils.max_iterations".into(),
                    format!("{:?}", o.max_iterations),
                ));
                pairs.push((
                    "ils.max_modeled_seconds".into(),
                    format!("{:?}", o.max_modeled_seconds),
                ));
                pairs.push(("ils.seed".into(), o.seed.to_string()));
                pairs.push(("ils.perturbation".into(), format!("{:?}", o.perturbation)));
                pairs.push(("ils.acceptance".into(), format!("{:?}", o.acceptance)));
                pairs.push((
                    "ils.stagnation_restart".into(),
                    format!("{:?}", o.stagnation_restart),
                ));
            }
        }
        pairs
    }

    /// The deterministic run id of `inst` under this configuration: a
    /// pure function of the instance digest, the device-spec digest
    /// and every solver knob (the same `config_pairs` the replay
    /// guards compare). Two runs share
    /// an id exactly when they are bit-for-bit the same search, so the
    /// id safely correlates the journal, recording, trace and profiler
    /// artifacts of one run across files and processes.
    pub fn run_id(&self, inst: &Instance) -> String {
        let cfg_digest = fnv1a(
            self.config_pairs()
                .iter()
                .flat_map(|(k, v)| {
                    // `=`/`;` separators keep ("a", "b=c") and
                    // ("a=b", "c") from folding identically.
                    k.bytes()
                        .chain([b'='])
                        .chain(v.bytes())
                        .chain([b';'])
                        .collect::<Vec<u8>>()
                })
                .collect::<Vec<u8>>(),
        );
        tsp_prof::run_id_from_parts(&[digest_instance(inst), self.spec_digest(), cfg_digest])
    }

    /// Package the attached flight recorder's log into a portable
    /// [`Recording`] for `inst` — call after [`Solver::run`]. Errors
    /// when no recorder was attached ([`SolverBuilder::record`]), when
    /// nothing was recorded, or when the configuration is wall-clock
    /// dependent.
    ///
    /// [`SolverBuilder::record`]: crate::SolverBuilder::record
    pub fn recording(&self, inst: &Instance) -> Result<Recording, TspError> {
        reject_wall_clock(&self.cfg)?;
        if !self.cfg.flight.is_enabled() {
            return Err(TspError::Replay(
                "no flight recorder attached; build the solver with .record(FlightRecorder::attached())".into(),
            ));
        }
        if self.cfg.flight.is_empty() {
            return Err(TspError::Replay(
                "the flight recorder is empty; run the solver before packaging a recording".into(),
            ));
        }
        let header = Header {
            run_id: self.run_id(inst),
            // The serving layer stamps the distributed trace id onto
            // the journal handle; the recording inherits it from there.
            trace_id: self.cfg.telemetry.journal().trace_id().to_string(),
            instance_name: inst.name().to_string(),
            n: inst.len(),
            instance_digest: digest_instance(inst),
            spec_digest: self.spec_digest(),
            chains: self.cfg.restarts as u64,
            start: self.construct(inst, 0).as_slice().to_vec(),
            config: self.config_pairs(),
        };
        Ok(Recording::from_flight(header, &self.cfg.flight))
    }

    /// The configured device spec's digest — zero for host engines,
    /// whose modeled times do not depend on the spec.
    fn spec_digest(&self) -> u64 {
        match self.cfg.engine {
            EngineKind::Gpu => self.cfg.spec.digest(),
            _ => 0,
        }
    }

    /// Re-execute `recording` on this solver and compare the live event
    /// stream against the recorded one, chain by chain. The header must
    /// match this solver's configuration, the instance digest, and (for
    /// GPU engines) the device-spec digest — a replay on different
    /// hardware parameters would silently diverge in modeled seconds.
    ///
    /// Returns the live run's [`Solution`] and a [`ReplayReport`]:
    /// [`ReplayReport::is_clean`] means every event — applied moves,
    /// RNG checkpoints, acceptance verdicts, tour digests, bit-exact
    /// modeled seconds — reproduced; otherwise
    /// [`ReplayReport::divergence`] pins the first disagreement.
    pub fn replay(
        &self,
        inst: &Instance,
        recording: &Recording,
    ) -> Result<(Solution, ReplayReport), TspError> {
        reject_wall_clock(&self.cfg)?;
        let header = &recording.header;
        if header.n != inst.len() || header.instance_digest != digest_instance(inst) {
            return Err(TspError::Replay(format!(
                "instance mismatch: recording was taken on '{}' (n={}, digest {:016x}), \
                 got '{}' (n={}, digest {:016x})",
                header.instance_name,
                header.n,
                header.instance_digest,
                inst.name(),
                inst.len(),
                digest_instance(inst),
            )));
        }
        if header.spec_digest != self.spec_digest() {
            return Err(TspError::Replay(format!(
                "device-spec mismatch: recording digest {:016x}, solver digest {:016x} \
                 (device '{}'); replaying on a different timing model would diverge",
                header.spec_digest,
                self.spec_digest(),
                self.cfg.spec.name,
            )));
        }
        let live_pairs = self.config_pairs();
        for (key, recorded) in &header.config {
            match live_pairs.iter().find(|(k, _)| k == key) {
                Some((_, live)) if live == recorded => {}
                Some((_, live)) => {
                    return Err(TspError::Replay(format!(
                        "config mismatch on '{key}': recorded '{recorded}', solver has '{live}'"
                    )));
                }
                None => {
                    return Err(TspError::Replay(format!(
                        "config mismatch: recorded key '{key}' is absent from this solver"
                    )));
                }
            }
        }
        if header.config.len() != live_pairs.len() {
            return Err(TspError::Replay(format!(
                "config mismatch: recording has {} keys, solver has {}",
                header.config.len(),
                live_pairs.len()
            )));
        }

        let live = FlightRecorder::attached();
        let solver = Solver {
            cfg: SolverBuilder {
                flight: live.clone(),
                ..self.cfg.clone()
            },
        };
        let start = Tour::new(header.start.clone()).map_err(TspError::Core)?;
        let solution = solver.run_from(inst, start)?;
        let report = compare_streams(&recording.entries, &live.entries());
        Ok((solution, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Construction;
    use tsp_ils::IlsOptions;
    use tsp_tsplib::{generate, Style};

    fn recorded_solver(flight: FlightRecorder) -> Solver {
        Solver::builder()
            .construction(Construction::Random(3))
            .ils(IlsOptions::default().with_max_iterations(5u64).with_seed(7))
            .record(flight)
            .build()
    }

    #[test]
    fn record_then_replay_is_clean() {
        let inst = generate("rr", 48, Style::Uniform, 2);
        let flight = FlightRecorder::attached();
        let solver = recorded_solver(flight.clone());
        let ran = solver.run(&inst).unwrap();
        let recording = solver.recording(&inst).unwrap();
        assert!(!recording.is_empty());

        let fresh = recorded_solver(FlightRecorder::detached());
        let (solution, report) = fresh.replay(&inst, &recording).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(solution.tour.as_slice(), ran.tour.as_slice());
        assert_eq!(
            solution.modeled_seconds().to_bits(),
            ran.modeled_seconds().to_bits()
        );
    }

    #[test]
    fn mismatched_configuration_is_rejected() {
        let inst = generate("rr-cfg", 40, Style::Uniform, 4);
        let flight = FlightRecorder::attached();
        let solver = recorded_solver(flight.clone());
        solver.run(&inst).unwrap();
        let recording = solver.recording(&inst).unwrap();

        // Different seed: refused before any work happens.
        let other = Solver::builder()
            .construction(Construction::Random(3))
            .ils(IlsOptions::default().with_max_iterations(5u64).with_seed(8))
            .build();
        let err = other.replay(&inst, &recording).unwrap_err();
        assert!(
            err.to_string().contains("ils.seed"),
            "unexpected error: {err}"
        );

        // Different instance: refused by digest.
        let other_inst = generate("rr-cfg2", 40, Style::Uniform, 5);
        let same = recorded_solver(FlightRecorder::detached());
        let err = same.replay(&other_inst, &recording).unwrap_err();
        assert!(matches!(err, TspError::Replay(_)), "{err}");
    }

    #[test]
    fn wall_clock_budgets_cannot_be_recorded() {
        let inst = generate("rr-wall", 32, Style::Uniform, 6);
        let solver = Solver::builder()
            .ils(IlsOptions::default().with_max_host_seconds(1.0))
            .record(FlightRecorder::attached())
            .build();
        solver.run(&inst).unwrap();
        let err = solver.recording(&inst).unwrap_err();
        assert!(err.to_string().contains("wall-clock"), "{err}");
    }

    #[test]
    fn recording_requires_an_attached_recorder_with_events() {
        let inst = generate("rr-empty", 32, Style::Uniform, 7);
        let solver = Solver::builder().build();
        assert!(matches!(solver.recording(&inst), Err(TspError::Replay(_))));
        let solver = Solver::builder().record(FlightRecorder::attached()).build();
        let err = solver.recording(&inst).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
    }
}
