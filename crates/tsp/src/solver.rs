//! The [`Solver`] facade.
//!
//! One builder configures the whole stack — device spec, pool shape,
//! kernel strategy, construction heuristic, descent/ILS knobs,
//! tracing sinks — and [`Solver::run`] drives construction → local
//! search (→ ILS → sharded multistart) end to end, returning a single
//! [`Solution`] and a single error type ([`TspError`]).

use crate::TspError;
use gpu_sim::{Device, StreamId};
use gpu_sim::{DevicePool, DeviceSpec, Recorder, StreamReport, Timeline};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use tsp_2opt::{
    optimize_profiled, CpuParallelTwoOpt, GpuTwoOpt, SearchOptions, SequentialTwoOpt, StepProfile,
    Strategy, TwoOptEngine,
};
use tsp_construction::{multiple_fragment, nearest_neighbor, space_filling};
use tsp_core::{CancelToken, Instance, Tour};
use tsp_ils::{
    iterated_local_search, IlsOptions, IlsOutcome, ShardedMultistart, ShardedOutcome, TracePoint,
};
use tsp_prof::{MemoryReport, Profiler};
use tsp_replay::{hash_tour, FlightRecorder, ReplayEvent};
use tsp_telemetry::{Journal, Telemetry};

/// Live-observability knobs for [`SolverBuilder::telemetry`]: a
/// metrics-registry handle and a convergence journal. Both are
/// disabled by default and cost a single branch per observation site
/// when left detached.
///
/// ```
/// use tsp::prelude::*;
///
/// let inst = tsp::tsplib::generate("obs", 48, tsp::tsplib::Style::Uniform, 1);
/// let solution = Solver::builder()
///     .ils(IlsOptions::default().with_max_iterations(3u64))
///     .telemetry(TelemetryOptions::attached())
///     .build()
///     .run(&inst)
///     .unwrap();
/// // The handles come back on the Solution, ready to expose or dump.
/// let text = solution.telemetry.expose();
/// assert!(text.contains("tsp_ils_iterations_total"));
/// assert!(!solution.journal.is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct TelemetryOptions {
    registry: Telemetry,
    journal: Journal,
}

impl TelemetryOptions {
    /// Both handles detached (the default).
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh attached registry and journal — the one-liner for "turn
    /// everything on".
    pub fn attached() -> Self {
        TelemetryOptions {
            registry: Telemetry::attached(),
            journal: Journal::attached(),
        }
    }

    /// Use this metrics-registry handle (share it with a
    /// [`tsp_telemetry::MetricsServer`] to scrape a live run).
    pub fn with_registry(mut self, registry: Telemetry) -> Self {
        self.registry = registry;
        self
    }

    /// Use this convergence journal.
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }

    /// The registry handle.
    pub fn registry(&self) -> &Telemetry {
        &self.registry
    }

    /// The journal handle.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }
}

/// Which local-search engine executes the sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum EngineKind {
    /// The simulated-GPU engine (the paper's kernels). Default.
    #[default]
    Gpu,
    /// Multi-threaded host engine.
    CpuParallel,
    /// Single-threaded reference engine.
    Sequential,
}

/// Construction heuristic for the initial tour(s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Construction {
    /// Greedy multiple-fragment (Bentley). Default.
    #[default]
    MultipleFragment,
    /// Nearest neighbour from city 0.
    NearestNeighbor,
    /// Hilbert space-filling curve order.
    SpaceFilling,
    /// Uniform random permutation from the given seed. Under restarts,
    /// chain `i` draws from `seed + i`, so every chain gets a distinct
    /// start (the deterministic heuristics give all chains the same
    /// start and rely on ILS seeds for diversity).
    Random(u64),
    /// The identity permutation `0, 1, …, n-1`.
    Identity,
}

/// Configures and builds a [`Solver`].
///
/// ```
/// use tsp::prelude::*;
///
/// let inst = tsp_tsplib::generate("demo", 64, tsp_tsplib::Style::Uniform, 1);
/// let solution = Solver::builder()
///     .engine(EngineKind::Gpu)
///     .device(spec::gtx_680_cuda())
///     .strategy(Strategy::Auto)
///     .ils(IlsOptions::default().with_max_iterations(5u64))
///     .build()
///     .run(&inst)
///     .unwrap();
/// assert!(solution.length <= solution.initial_length);
/// ```
#[derive(Clone)]
pub struct SolverBuilder {
    pub(crate) engine: EngineKind,
    pub(crate) spec: DeviceSpec,
    pub(crate) devices: usize,
    pub(crate) streams: usize,
    pub(crate) restarts: usize,
    pub(crate) strategy: Strategy,
    pub(crate) launch: Option<(u32, u32)>,
    pub(crate) overlapped_transfers: bool,
    pub(crate) construction: Construction,
    pub(crate) search: SearchOptions,
    pub(crate) ils: Option<IlsOptions>,
    pub(crate) timeline: Option<Timeline>,
    pub(crate) recorder: Option<Recorder>,
    pub(crate) telemetry: TelemetryOptions,
    pub(crate) flight: FlightRecorder,
    pub(crate) prof: Profiler,
    pub(crate) cancel: CancelToken,
}

impl Default for SolverBuilder {
    fn default() -> Self {
        SolverBuilder {
            engine: EngineKind::Gpu,
            spec: gpu_sim::spec::gtx_680_cuda(),
            devices: 1,
            streams: 1,
            restarts: 1,
            strategy: Strategy::Auto,
            launch: None,
            overlapped_transfers: false,
            construction: Construction::MultipleFragment,
            search: SearchOptions::default(),
            ils: None,
            timeline: None,
            recorder: None,
            telemetry: TelemetryOptions::default(),
            flight: FlightRecorder::detached(),
            prof: Profiler::detached(),
            cancel: CancelToken::none(),
        }
    }
}

impl SolverBuilder {
    /// Start from the defaults: one GTX 680, `Strategy::Auto`,
    /// multiple-fragment construction, plain 2-opt descent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the engine kind (default [`EngineKind::Gpu`]).
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Device spec for GPU engines (default the paper's GTX 680).
    pub fn device(mut self, spec: DeviceSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Shard restarts over `n` simulated devices (default 1; GPU only).
    pub fn devices(mut self, n: usize) -> Self {
        self.devices = n;
        self
    }

    /// Streams per device (default 1; GPU only). With more than one,
    /// concurrent chains overlap transfers and kernels on each device.
    pub fn streams(mut self, s: usize) -> Self {
        self.streams = s;
        self
    }

    /// Run `k` independent ILS chains (seed `i` = ILS seed + `i`) and
    /// keep the best (default 1). Implies ILS with default options if
    /// [`SolverBuilder::ils`] was not called.
    pub fn restarts(mut self, k: usize) -> Self {
        self.restarts = k;
        self
    }

    /// Kernel selection strategy (default [`Strategy::Auto`]).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the launch geometry (e.g. the paper's 28 × 1024).
    pub fn launch(mut self, grid_dim: u32, block_dim: u32) -> Self {
        self.launch = Some((grid_dim, block_dim));
        self
    }

    /// Model double-buffered transfers inside a descent (see
    /// `GpuTwoOpt::with_overlapped_transfers`).
    pub fn overlapped_transfers(mut self, on: bool) -> Self {
        self.overlapped_transfers = on;
        self
    }

    /// Construction heuristic for the initial tour (default
    /// [`Construction::MultipleFragment`]).
    pub fn construction(mut self, construction: Construction) -> Self {
        self.construction = construction;
        self
    }

    /// Descent options applied to every local-search call.
    pub fn search(mut self, search: SearchOptions) -> Self {
        self.search = search;
        self
    }

    /// Enable ILS around the descent with these options.
    pub fn ils(mut self, opts: IlsOptions) -> Self {
        self.ils = Some(opts);
        self
    }

    /// Attach a profiler timeline (single-device runs only).
    pub fn timeline(mut self, timeline: Timeline) -> Self {
        self.timeline = Some(timeline);
        self
    }

    /// Attach a structured-event recorder; it receives device events
    /// (kernels, transfers, stream schedules) and search events
    /// (sweeps, descents, ILS iterations).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Attach a flight recorder: the run logs every decision needed to
    /// reproduce it bit-for-bit (start-tour digest, applied moves, RNG
    /// checkpoints, acceptance verdicts). Package the result with
    /// [`Solver::recording`] and re-execute it with [`Solver::replay`].
    pub fn record(mut self, flight: FlightRecorder) -> Self {
        self.flight = flight;
        self
    }

    /// Attach a span profiler and device-memory ledger. The handle is
    /// wired through every layer the run touches — the facade's
    /// `solve`/`construct` spans, ILS `ils`/`iteration`/`kick` spans,
    /// descent `sweep`/`apply_move` spans, device `kernel:*`/`h2d`/
    /// `d2h` leaves, and every buffer alloc/free/upload on the modeled
    /// devices — and comes back on [`Solution::prof`] alongside the
    /// finished [`Solution::memory`] ledger report. Detached (the
    /// default) it costs one branch per site and the solve is
    /// bit-identical.
    pub fn profiler(mut self, prof: Profiler) -> Self {
        self.prof = prof;
        self
    }

    /// Attach live metrics and/or a convergence journal. The handles
    /// are wired through every layer the run touches — device kernels
    /// and transfers, pool lanes, search sweeps, ILS iterations — and
    /// come back on the [`Solution`].
    pub fn telemetry(mut self, telemetry: TelemetryOptions) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attach a cooperative cancellation token: ILS runs poll it once
    /// per iteration (next to the budget checks) and stop early with
    /// the best tour found so far when it trips — the serving layer's
    /// `DELETE /v1/jobs/{id}` and per-job deadlines ride on this. An
    /// armed token makes the run wall-clock dependent, so recording it
    /// is rejected exactly like `max_host_seconds`.
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Finalize the configuration.
    pub fn build(self) -> Solver {
        Solver { cfg: self }
    }
}

/// Result of a [`Solver::run`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Solution {
    /// The best tour found.
    pub tour: Tour,
    /// Its length.
    pub length: i64,
    /// Length of the constructed initial tour.
    pub initial_length: i64,
    /// ILS iterations of the best chain (0 for a plain descent).
    pub iterations: u64,
    /// Independent chains run (1 unless restarts were requested).
    pub chains: usize,
    /// Aggregate modeled cost over every sweep of every chain.
    pub profile: StepProfile,
    /// Real host time, seconds.
    pub host_seconds: f64,
    /// Convergence trace of the best chain (ILS runs only).
    pub trace: Vec<TracePoint>,
    /// Per-device modeled schedules (sharded runs only).
    pub reports: Vec<StreamReport>,
    /// The run's metrics-registry handle — detached unless one was
    /// attached via [`SolverBuilder::telemetry`]; expose or snapshot
    /// it after the run.
    pub telemetry: Telemetry,
    /// The run's convergence journal — detached unless one was
    /// attached via [`SolverBuilder::telemetry`].
    pub journal: Journal,
    /// Deterministic run id: a pure function of the instance digest,
    /// the device-spec digest and every solver knob. The same id is
    /// stamped on the journal lines, the recording header and the
    /// profiler artifacts of this run, and never on anything else.
    pub run_id: String,
    /// The run's span profiler — detached unless one was attached via
    /// [`SolverBuilder::profiler`]; render `prof.report()` for the
    /// flamegraph and hot paths.
    pub prof: Profiler,
    /// Device-memory ledger totals at the end of the run (empty when
    /// no profiler was attached).
    pub memory: MemoryReport,
}

impl Solution {
    /// Total modeled device time across all chains, seconds.
    pub fn modeled_seconds(&self) -> f64 {
        self.profile.modeled_seconds()
    }

    /// Modeled wall time: the slowest device's makespan on sharded
    /// runs, otherwise the serial modeled time.
    pub fn wall_seconds(&self) -> f64 {
        if self.reports.is_empty() {
            self.modeled_seconds()
        } else {
            self.reports
                .iter()
                .map(|r| r.wall_seconds)
                .fold(0.0, f64::max)
        }
    }

    /// Fraction of modeled busy time hidden by stream/device overlap
    /// (0 for serial runs).
    pub fn overlap(&self) -> f64 {
        let busy: f64 = self.reports.iter().map(|r| r.busy_seconds).sum();
        if busy == 0.0 {
            return 0.0;
        }
        self.reports
            .iter()
            .map(|r| r.overlap() * r.busy_seconds)
            .sum::<f64>()
            / busy
    }
}

/// The configured facade. Build with [`Solver::builder`], run with
/// [`Solver::run`] or [`Solver::run_from`].
pub struct Solver {
    pub(crate) cfg: SolverBuilder,
}

impl Solver {
    /// Start configuring a solver.
    pub fn builder() -> SolverBuilder {
        SolverBuilder::new()
    }

    /// Construct an initial tour and solve.
    pub fn run(&self, inst: &Instance) -> Result<Solution, TspError> {
        let start = self.construct(inst, 0);
        self.run_from(inst, start)
    }

    /// Solve from the given initial tour. Under restarts the first
    /// chain uses `start` and the remaining chains use freshly
    /// constructed tours.
    pub fn run_from(&self, inst: &Instance, start: Tour) -> Result<Solution, TspError> {
        let cfg = &self.cfg;
        if cfg.devices == 0 || cfg.streams == 0 || cfg.restarts == 0 {
            return Err(TspError::Unsupported(
                "devices, streams and restarts must all be at least 1".into(),
            ));
        }
        let pooled = cfg.devices > 1 || cfg.streams > 1;
        if pooled && cfg.engine != EngineKind::Gpu {
            return Err(TspError::Unsupported(
                "multi-device / multi-stream runs require the GPU engine".into(),
            ));
        }
        if pooled && cfg.timeline.is_some() {
            return Err(TspError::Unsupported(
                "timelines attach to a single device; use a recorder on pooled runs".into(),
            ));
        }
        let run_id = self.run_id(inst);
        let _solve = cfg.prof.span("solve");
        let initial_length = start.length(inst);

        if cfg.restarts > 1 || pooled {
            return self.run_sharded(inst, start, initial_length, &run_id);
        }

        // Single chain: one engine, serial submission path.
        let mut engine = self.single_engine();
        match &cfg.ils {
            None => self.run_descent(inst, start, initial_length, run_id, engine.as_mut()),
            Some(opts) => {
                let outcome = iterated_local_search(
                    engine.as_mut(),
                    inst,
                    start,
                    self.ils_opts(opts, &run_id),
                )?;
                Ok(self.stamp(
                    run_id,
                    solution_from_outcome(outcome, initial_length, 1, Vec::new()),
                ))
            }
        }
    }

    /// Solve on an externally owned `(device, stream)` lane — the entry
    /// point `tsp-serve`'s slot pool drives. The builder's pool-shape
    /// knobs must stay at their defaults (`devices == 1 && streams == 1`):
    /// the lane is the caller's, carved from their own [`DevicePool`].
    /// Timelines are rejected because the device is shared; attach
    /// telemetry and a profiler to the pool once instead. Tours are
    /// bit-identical to [`Solver::run`] under the same knobs — restarts
    /// reduce through the same `parallel_multistart` min-by-length rule
    /// the pooled facade pins.
    pub fn run_on(
        &self,
        inst: &Instance,
        device: &Arc<Device>,
        stream: StreamId,
    ) -> Result<Solution, TspError> {
        let cfg = &self.cfg;
        if cfg.engine != EngineKind::Gpu {
            return Err(TspError::Unsupported(
                "run_on drives a device lane and requires the GPU engine".into(),
            ));
        }
        if cfg.devices != 1 || cfg.streams != 1 {
            return Err(TspError::Unsupported(
                "run_on executes on one external lane; leave devices and streams at 1".into(),
            ));
        }
        if cfg.restarts == 0 {
            return Err(TspError::Unsupported("restarts must be at least 1".into()));
        }
        if cfg.timeline.is_some() {
            return Err(TspError::Unsupported(
                "timelines attach to a private device; run_on lanes share one".into(),
            ));
        }
        let run_id = self.run_id(inst);
        let _solve = cfg.prof.span("solve");
        let start = self.construct(inst, 0);
        let initial_length = start.length(inst);

        if cfg.restarts == 1 && cfg.ils.is_none() {
            // Device-level recorder events need exclusive device
            // ownership, which a pooled lane never has (the device Arc
            // is shared with the pool and its sibling lanes); the
            // recorder still gets the sweep-level events through
            // `run_descent`.
            let mut engine = self.gpu_engine_on(GpuTwoOpt::on_stream(device.clone(), stream));
            return self.run_descent(inst, start, initial_length, run_id, &mut engine);
        }

        // ILS and/or restarts: the same multistart reduction the pooled
        // facade uses, every chain on this one lane.
        let opts = self.ils_opts(cfg.ils.as_ref().unwrap_or(&IlsOptions::default()), &run_id);
        let starts: Vec<Tour> = (0..cfg.restarts)
            .map(|i| {
                if i == 0 {
                    start.clone()
                } else {
                    self.construct(inst, i as u64)
                }
            })
            .collect();
        let (best, chains) = tsp_ils::parallel_multistart(
            || self.gpu_engine_on(GpuTwoOpt::on_stream(device.clone(), stream)),
            inst,
            starts,
            opts,
        )?;
        Ok(self.stamp(run_id, aggregate_host_chains(best, &chains, initial_length)))
    }

    /// The plain-descent arm shared by `run_from` and `run_on`: one
    /// 2-opt descent to a local optimum, flight-recorded and profiled.
    fn run_descent(
        &self,
        inst: &Instance,
        mut tour: Tour,
        initial_length: i64,
        run_id: String,
        engine: &mut dyn TwoOptEngine,
    ) -> Result<Solution, TspError> {
        let cfg = &self.cfg;
        let recorder = cfg.recorder.clone().unwrap_or_else(Recorder::disabled);
        cfg.flight.record_with(|| ReplayEvent::Start {
            tour_hash: hash_tour(&tour),
        });
        let stats = optimize_profiled(
            engine,
            inst,
            &mut tour,
            cfg.search,
            &recorder,
            cfg.telemetry.registry(),
            &cfg.flight,
            &cfg.prof,
        )?;
        cfg.flight.record_with(|| ReplayEvent::DescentEnd {
            iteration: 0,
            sweeps: stats.sweeps,
            length: stats.final_length,
            tour_hash: hash_tour(&tour),
            modeled_seconds: stats.profile.modeled_seconds(),
        });
        cfg.flight.record_with(|| ReplayEvent::Final {
            iterations: 0,
            best_length: stats.final_length,
            tour_hash: hash_tour(&tour),
            modeled_seconds: stats.profile.modeled_seconds(),
        });
        Ok(self.stamp(
            run_id,
            Solution {
                length: stats.final_length,
                tour,
                initial_length,
                iterations: 0,
                chains: 1,
                profile: stats.profile,
                host_seconds: stats.host_seconds,
                trace: Vec::new(),
                reports: Vec::new(),
                telemetry: Telemetry::detached(),
                journal: Journal::detached(),
                run_id: String::new(),
                prof: Profiler::detached(),
                memory: MemoryReport::default(),
            },
        ))
    }

    /// Restarts (and/or pool shards): every chain is an independent ILS
    /// run; outcomes are bit-identical to `parallel_multistart` under
    /// the same seeds regardless of the pool shape.
    fn run_sharded(
        &self,
        inst: &Instance,
        start: Tour,
        initial_length: i64,
        run_id: &str,
    ) -> Result<Solution, TspError> {
        let cfg = &self.cfg;
        let opts = self.ils_opts(cfg.ils.as_ref().unwrap_or(&IlsOptions::default()), run_id);
        let starts: Vec<Tour> = (0..cfg.restarts)
            .map(|i| {
                if i == 0 {
                    start.clone()
                } else {
                    self.construct(inst, i as u64)
                }
            })
            .collect();

        match cfg.engine {
            EngineKind::Gpu => {
                let mut pool = DevicePool::homogeneous(cfg.spec.clone(), cfg.devices, cfg.streams);
                if let Some(rec) = &cfg.recorder {
                    pool.attach_recorder(rec.clone());
                }
                pool.attach_telemetry(cfg.telemetry.registry());
                pool.attach_profiler(&cfg.prof);
                let sharded = ShardedMultistart::new(pool);
                let out = sharded.run(
                    |device, stream| {
                        self.gpu_engine_on(GpuTwoOpt::on_stream(device.clone(), stream))
                    },
                    inst,
                    starts,
                    opts,
                )?;
                let ShardedOutcome {
                    best,
                    chains,
                    reports,
                } = out;
                let mut profile = StepProfile::default();
                for c in &chains {
                    profile.accumulate(&c.profile);
                }
                let mut solution =
                    solution_from_outcome(best, initial_length, chains.len(), reports);
                solution.profile = profile;
                Ok(self.stamp(run_id.to_string(), solution))
            }
            EngineKind::CpuParallel => {
                let (best, chains) =
                    tsp_ils::parallel_multistart(CpuParallelTwoOpt::new, inst, starts, opts)?;
                Ok(self.stamp(
                    run_id.to_string(),
                    aggregate_host_chains(best, &chains, initial_length),
                ))
            }
            EngineKind::Sequential => {
                let (best, chains) =
                    tsp_ils::parallel_multistart(SequentialTwoOpt::new, inst, starts, opts)?;
                Ok(self.stamp(
                    run_id.to_string(),
                    aggregate_host_chains(best, &chains, initial_length),
                ))
            }
        }
    }

    /// The configured ILS options plus the facade-level recorder and
    /// observability handles; the journal handle is stamped with the
    /// run id so every journal line correlates with this run.
    fn ils_opts(&self, opts: &IlsOptions, run_id: &str) -> IlsOptions {
        let mut opts = opts.clone();
        if let Some(rec) = &self.cfg.recorder {
            opts = opts.with_recorder(rec.clone());
        }
        opts.with_telemetry(self.cfg.telemetry.registry().clone())
            .with_journal(self.cfg.telemetry.journal().with_run_id(run_id))
            .with_flight(self.cfg.flight.clone())
            .with_prof(self.cfg.prof.clone())
            .with_cancel(self.cfg.cancel.clone())
    }

    /// Hand the run's observability handles back on the solution.
    fn stamp(&self, run_id: String, mut solution: Solution) -> Solution {
        solution.telemetry = self.cfg.telemetry.registry().clone();
        solution.journal = self.cfg.telemetry.journal().clone();
        solution.run_id = run_id;
        solution.prof = self.cfg.prof.clone();
        solution.memory = self.cfg.prof.memory_report();
        solution
    }

    /// One engine on a private device (serial path).
    fn single_engine(&self) -> Box<dyn TwoOptEngine> {
        match self.cfg.engine {
            EngineKind::Gpu => {
                let mut engine = self.gpu_engine_on(GpuTwoOpt::new(self.cfg.spec.clone()));
                if let Some(tl) = &self.cfg.timeline {
                    engine = engine.with_timeline(tl.clone());
                }
                if let Some(rec) = &self.cfg.recorder {
                    engine = engine.with_recorder(rec.clone());
                }
                engine = engine.with_telemetry(self.cfg.telemetry.registry());
                engine = engine.with_profiler(&self.cfg.prof);
                Box::new(engine)
            }
            EngineKind::CpuParallel => Box::new(CpuParallelTwoOpt::new()),
            EngineKind::Sequential => Box::new(SequentialTwoOpt::new()),
        }
    }

    /// Apply the strategy/launch/overlap knobs to a GPU engine.
    fn gpu_engine_on(&self, engine: GpuTwoOpt) -> GpuTwoOpt {
        let mut engine = engine.with_strategy(self.cfg.strategy);
        if let Some((grid, block)) = self.cfg.launch {
            engine = engine.with_launch(grid, block);
        }
        if self.cfg.overlapped_transfers {
            engine = engine.with_overlapped_transfers();
        }
        engine
    }

    /// Build chain `i`'s initial tour.
    pub(crate) fn construct(&self, inst: &Instance, chain: u64) -> Tour {
        let _construct = self.cfg.prof.span("construct");
        match self.cfg.construction {
            Construction::MultipleFragment => multiple_fragment(inst),
            Construction::NearestNeighbor => nearest_neighbor(inst, 0),
            Construction::SpaceFilling => space_filling(inst),
            Construction::Random(seed) => {
                let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(chain));
                Tour::random(inst.len(), &mut rng)
            }
            Construction::Identity => Tour::identity(inst.len()),
        }
    }
}

fn solution_from_outcome(
    outcome: IlsOutcome,
    initial_length: i64,
    chains: usize,
    reports: Vec<StreamReport>,
) -> Solution {
    Solution {
        tour: outcome.best,
        length: outcome.best_length,
        initial_length,
        iterations: outcome.iterations,
        chains,
        profile: outcome.profile,
        host_seconds: outcome.host_seconds,
        trace: outcome.trace,
        reports,
        telemetry: Telemetry::detached(),
        journal: Journal::detached(),
        run_id: String::new(),
        prof: Profiler::detached(),
        memory: MemoryReport::default(),
    }
}

fn aggregate_host_chains(best: IlsOutcome, chains: &[IlsOutcome], initial_length: i64) -> Solution {
    let mut profile = StepProfile::default();
    for c in chains {
        profile.accumulate(&c.profile);
    }
    let mut solution = solution_from_outcome(best, initial_length, chains.len(), Vec::new());
    solution.profile = profile;
    solution
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_tsplib::{generate, Style};

    fn instance(n: usize, seed: u64) -> Instance {
        generate(&format!("solver{n}"), n, Style::Uniform, seed)
    }

    #[test]
    fn plain_descent_reaches_a_local_minimum() {
        let inst = instance(72, 3);
        let s = Solver::builder().build().run(&inst).unwrap();
        assert!(s.length <= s.initial_length);
        assert_eq!(s.iterations, 0);
        assert_eq!(s.chains, 1);
        assert!(s.reports.is_empty());
        assert!(s.modeled_seconds() > 0.0);
        s.tour.validate().unwrap();
    }

    #[test]
    fn facade_descent_matches_raw_engine() {
        let inst = instance(64, 4);
        let start = Tour::identity(64);

        let facade = Solver::builder()
            .construction(Construction::Identity)
            .build()
            .run_from(&inst, start.clone())
            .unwrap();

        let mut raw_tour = start;
        let mut raw = GpuTwoOpt::new(gpu_sim::spec::gtx_680_cuda());
        let stats =
            tsp_2opt::optimize(&mut raw, &inst, &mut raw_tour, SearchOptions::default()).unwrap();

        assert_eq!(facade.tour.as_slice(), raw_tour.as_slice());
        assert_eq!(facade.length, stats.final_length);
        assert_eq!(facade.profile, stats.profile);
    }

    #[test]
    fn ils_facade_matches_raw_ils() {
        let inst = instance(60, 5);
        let opts = IlsOptions::default().with_max_iterations(6u64).with_seed(9);

        let facade = Solver::builder()
            .construction(Construction::Identity)
            .ils(opts.clone())
            .build()
            .run(&inst)
            .unwrap();

        let mut raw = GpuTwoOpt::new(gpu_sim::spec::gtx_680_cuda());
        let outcome = iterated_local_search(&mut raw, &inst, Tour::identity(60), opts).unwrap();

        assert_eq!(facade.length, outcome.best_length);
        assert_eq!(facade.tour.as_slice(), outcome.best.as_slice());
        assert_eq!(facade.iterations, outcome.iterations);
    }

    #[test]
    fn sharded_facade_reduces_over_all_chains() {
        let inst = instance(56, 6);
        let s = Solver::builder()
            .construction(Construction::Random(11))
            .ils(IlsOptions::default().with_max_iterations(4u64))
            .devices(2)
            .streams(2)
            .restarts(6)
            .build()
            .run(&inst)
            .unwrap();
        assert_eq!(s.chains, 6);
        assert_eq!(s.reports.len(), 2);
        assert!(s.wall_seconds() > 0.0);
        assert!(s.wall_seconds() < s.modeled_seconds());
        s.tour.validate().unwrap();
    }

    #[test]
    fn cpu_engines_run_and_reject_pooling() {
        let inst = instance(40, 7);
        for kind in [EngineKind::CpuParallel, EngineKind::Sequential] {
            let s = Solver::builder().engine(kind).build().run(&inst).unwrap();
            assert!(s.length <= s.initial_length);

            let err = Solver::builder()
                .engine(kind)
                .streams(2)
                .build()
                .run(&inst)
                .unwrap_err();
            assert!(matches!(err, TspError::Unsupported(_)));
        }
    }

    #[test]
    fn telemetry_spans_every_layer_on_a_sharded_run() {
        let inst = instance(48, 9);
        let s = Solver::builder()
            .construction(Construction::Random(5))
            .ils(IlsOptions::default().with_max_iterations(3u64))
            .devices(2)
            .streams(2)
            .restarts(4)
            .telemetry(TelemetryOptions::attached())
            .build()
            .run(&inst)
            .unwrap();
        let reg = s.telemetry.registry().unwrap();
        // Every layer reported: devices, pool lanes, sweeps, ILS.
        for family in [
            "tsp_gpu_kernel_launches_total",
            "tsp_pool_lane_jobs_total",
            "tsp_search_sweeps_total",
            "tsp_ils_iterations_total",
        ] {
            assert!(
                reg.family_names().contains(&family.to_string()),
                "missing {family}"
            );
        }
        assert_eq!(
            reg.counter_value("tsp_ils_iterations_total"),
            Some(3.0 * 4.0)
        );
        // Journal: 4 chains, each with Initial + 3 iterations + Final.
        assert_eq!(s.journal.len(), 4 * 5);
        let chains: std::collections::BTreeSet<u64> =
            s.journal.records().iter().map(|r| r.chain).collect();
        assert_eq!(chains.len(), 4);

        // A telemetry-free run of the same configuration is untouched
        // by the observability machinery.
        let plain = Solver::builder()
            .construction(Construction::Random(5))
            .ils(IlsOptions::default().with_max_iterations(3u64))
            .devices(2)
            .streams(2)
            .restarts(4)
            .build()
            .run(&inst)
            .unwrap();
        assert_eq!(plain.tour.as_slice(), s.tour.as_slice());
        assert_eq!(plain.length, s.length);
        assert_eq!(plain.wall_seconds().to_bits(), s.wall_seconds().to_bits());
        assert!(!plain.telemetry.is_enabled());
        assert!(!plain.journal.is_enabled());
    }

    #[test]
    fn zero_shapes_are_rejected() {
        let inst = instance(32, 8);
        let err = Solver::builder().devices(0).build().run(&inst).unwrap_err();
        assert!(matches!(err, TspError::Unsupported(_)));
    }
}
