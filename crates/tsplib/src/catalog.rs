//! The paper-instance catalog: synthetic stand-ins with the exact sizes
//! of every TSPLIB/VLSI/national instance the paper evaluates.
//!
//! Table II runs 27 instances from berlin52 (52 cities) to lrb744710
//! (744 710 cities). The originals cannot be redistributed here, so each
//! entry generates a deterministic synthetic instance of the same size,
//! with a spatial style matched to the original's family:
//! drilling/board problems (`pr`, `pcb`, `fl`, `pla`) → jittered grid;
//! geographic/national sets (`usa`, `sw`, `d`, `ara`, `lra`, `lrb`,
//! `sra`, `vm`, `fnl`) → clustered; synthetic randoms (`rat`, `rl`,
//! `kro`, `ch`, `ts`, `berlin`) → uniform.

use crate::generator::{generate, Style};
use tsp_core::Instance;

/// One catalog row.
#[derive(Debug, Clone, Copy)]
pub struct CatalogEntry {
    /// Original TSPLIB name the stand-in mirrors.
    pub paper_name: &'static str,
    /// Number of cities.
    pub n: usize,
    /// Generation style for the stand-in.
    pub style: Style,
    /// Optimal/best-known length of the *original* (for documentation
    /// only; stand-ins have different optima), where the paper's Table II
    /// quotes tour lengths.
    pub paper_mf_length: Option<u64>,
}

/// Seed shared by all catalog stand-ins.
pub const CATALOG_SEED: u64 = 0x2013_1EEE;

const UNIFORM: Style = Style::Uniform;
const GRID: Style = Style::Grid;

const fn clustered(c: usize) -> Style {
    Style::Clustered { clusters: c }
}

/// All Table II instances, in the paper's row order.
pub const TABLE2_INSTANCES: &[CatalogEntry] = &[
    CatalogEntry {
        paper_name: "berlin52",
        n: 52,
        style: UNIFORM,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "kroE100",
        n: 100,
        style: UNIFORM,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "ch130",
        n: 130,
        style: UNIFORM,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "ch150",
        n: 150,
        style: UNIFORM,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "kroA200",
        n: 200,
        style: UNIFORM,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "ts225",
        n: 225,
        style: GRID,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "pr299",
        n: 299,
        style: GRID,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "pr439",
        n: 439,
        style: GRID,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "rat783",
        n: 783,
        style: UNIFORM,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "vm1084",
        n: 1084,
        style: clustered(12),
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "pr2392",
        n: 2392,
        style: GRID,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "pcb3038",
        n: 3038,
        style: GRID,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "fl3795",
        n: 3795,
        style: GRID,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "fnl4461",
        n: 4461,
        style: clustered(20),
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "rl5915",
        n: 5915,
        style: UNIFORM,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "pla7397",
        n: 7397,
        style: GRID,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "usa13509",
        n: 13509,
        style: clustered(40),
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "d15112",
        n: 15112,
        style: clustered(40),
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "d18512",
        n: 18512,
        style: clustered(48),
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "sw24978",
        n: 24978,
        style: clustered(60),
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "pla33810",
        n: 33810,
        style: GRID,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "pla85900",
        n: 85900,
        style: GRID,
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "sra104815",
        n: 104815,
        style: clustered(128),
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "usa115475",
        n: 115475,
        style: clustered(128),
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "ara238025",
        n: 238025,
        style: clustered(192),
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "lra498378",
        n: 498378,
        style: clustered(256),
        paper_mf_length: None,
    },
    CatalogEntry {
        paper_name: "lrb744710",
        n: 744710,
        style: clustered(256),
        paper_mf_length: None,
    },
];

/// Table I's 12 instances (memory-footprint comparison).
pub const TABLE1_SIZES: &[(&str, usize)] = &[
    ("kroE100", 100),
    ("ch130", 130),
    ("ch150", 150),
    ("kroA200", 200),
    ("ts225", 225),
    ("pr299", 299),
    ("pr439", 439),
    ("rat783", 783),
    ("vm1084", 1084),
    ("pr2392", 2392),
    ("pcb3038", 3038),
    ("fnl4461", 4461),
];

impl CatalogEntry {
    /// The stand-in's name (`syn-<paper name>`).
    pub fn name(&self) -> String {
        format!("syn-{}", self.paper_name)
    }

    /// Generate the stand-in instance (deterministic).
    pub fn instance(&self) -> Instance {
        generate(&self.name(), self.n, self.style, CATALOG_SEED)
    }
}

/// Find a catalog entry by its paper name (e.g. `"pr2392"`).
pub fn by_name(paper_name: &str) -> Option<&'static CatalogEntry> {
    TABLE2_INSTANCES
        .iter()
        .find(|e| e.paper_name.eq_ignore_ascii_case(paper_name))
}

/// Entries whose size does not exceed `max_n` — the harnesses use this to
/// bound functional (as opposed to analytic) execution.
pub fn up_to(max_n: usize) -> impl Iterator<Item = &'static CatalogEntry> {
    TABLE2_INSTANCES.iter().filter(move |e| e.n <= max_n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_27_rows_in_order() {
        assert_eq!(TABLE2_INSTANCES.len(), 27);
        assert_eq!(TABLE2_INSTANCES[0].paper_name, "berlin52");
        assert_eq!(TABLE2_INSTANCES[26].paper_name, "lrb744710");
        // Sizes are non-decreasing, as in the paper's table.
        for w in TABLE2_INSTANCES.windows(2) {
            assert!(w[0].n <= w[1].n);
        }
    }

    #[test]
    fn lookup_by_name() {
        let e = by_name("pr2392").unwrap();
        assert_eq!(e.n, 2392);
        assert_eq!(by_name("PR2392").unwrap().n, 2392);
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn instances_generate_with_right_sizes() {
        for e in up_to(1100) {
            let inst = e.instance();
            assert_eq!(inst.len(), e.n, "{}", e.paper_name);
            assert_eq!(inst.name(), e.name());
        }
    }

    #[test]
    fn up_to_filters() {
        assert_eq!(up_to(250).count(), 6); // 52,100,130,150,200,225
        assert_eq!(up_to(1_000_000).count(), 27);
    }

    #[test]
    fn table1_sizes_match_paper() {
        assert_eq!(TABLE1_SIZES.len(), 12);
        assert_eq!(TABLE1_SIZES[0], ("kroE100", 100));
        assert_eq!(TABLE1_SIZES[11], ("fnl4461", 4461));
    }
}
