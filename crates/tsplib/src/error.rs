//! Error type for TSPLIB parsing and I/O.

use std::fmt;

/// Errors from reading or writing TSPLIB data.
#[derive(Debug)]
pub enum TsplibError {
    /// A required header keyword was absent.
    MissingKeyword(&'static str),
    /// A line could not be tokenized.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Structurally valid but semantically broken input.
    Invalid(String),
    /// `EDGE_WEIGHT_TYPE` not supported by this library.
    UnsupportedEdgeWeightType(String),
    /// `EDGE_WEIGHT_FORMAT` not supported by this library.
    UnsupportedEdgeWeightFormat(String),
    /// `TYPE` is not a symmetric TSP.
    UnsupportedType(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for TsplibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsplibError::MissingKeyword(kw) => write!(f, "missing required keyword {kw}"),
            TsplibError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            TsplibError::Invalid(msg) => write!(f, "invalid instance: {msg}"),
            TsplibError::UnsupportedEdgeWeightType(t) => {
                write!(f, "unsupported EDGE_WEIGHT_TYPE: {t}")
            }
            TsplibError::UnsupportedEdgeWeightFormat(t) => {
                write!(f, "unsupported EDGE_WEIGHT_FORMAT: {t}")
            }
            TsplibError::UnsupportedType(t) => {
                write!(f, "unsupported TYPE: {t} (only TSP is handled)")
            }
            TsplibError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for TsplibError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TsplibError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TsplibError {
    fn from(e: std::io::Error) -> Self {
        TsplibError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            TsplibError::MissingKeyword("DIMENSION").to_string(),
            "missing required keyword DIMENSION"
        );
        let e = TsplibError::Syntax {
            line: 7,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "line 7: bad token");
    }
}
