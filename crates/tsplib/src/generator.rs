//! Deterministic synthetic instance generators.
//!
//! The paper benchmarks on TSPLIB files we cannot redistribute here, so
//! the harnesses run on synthetic stand-ins with the same sizes. The
//! 2-opt kernel cost is a function of `n` alone (a dense triangular
//! sweep), and point *distribution* only affects tour-quality numbers —
//! for those, uniform and clustered point fields are the standard
//! surrogates (cf. the DIMACS TSP Challenge generators).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tsp_core::{Instance, Metric, Point};

/// Spatial structure of generated points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Style {
    /// i.i.d. uniform in a square — like the `rat`/`rl` random instances.
    Uniform,
    /// Gaussian clusters — like the clustered DIMACS generators; a
    /// reasonable surrogate for road-network instances (`sw`, `usa`...).
    Clustered {
        /// Number of cluster centres.
        clusters: usize,
    },
    /// A jittered grid — like drilled-board instances (`pcb`, `pr`).
    Grid,
}

/// Side length of the generated square, chosen so coordinates stay well
/// inside `f32`/`i32` range while average nearest-neighbour distances
/// remain O(100) like typical TSPLIB data.
fn field_side(n: usize) -> f32 {
    // Keep density constant: side grows with sqrt(n).
    (n as f64).sqrt() as f32 * 100.0
}

/// Generate a deterministic synthetic instance.
///
/// The same `(name, n, style, seed)` always yields the same instance, so
/// every experiment in the repository is reproducible.
pub fn generate(name: &str, n: usize, style: Style, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed ^ fxhash(name));
    let side = field_side(n);
    let points = match style {
        Style::Uniform => (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect(),
        Style::Clustered { clusters } => {
            let clusters = clusters.max(1);
            let centers: Vec<Point> = (0..clusters)
                .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
                .collect();
            let sigma = side / (clusters as f32).sqrt() / 6.0;
            (0..n)
                .map(|_| {
                    let c = centers[rng.gen_range(0..clusters)];
                    let (gx, gy) = gaussian_pair(&mut rng);
                    Point::new(c.x + gx * sigma, c.y + gy * sigma)
                })
                .collect()
        }
        Style::Grid => {
            let cols = (n as f64).sqrt().ceil() as usize;
            let pitch = side / cols as f32;
            (0..n)
                .map(|i| {
                    let r = i / cols;
                    let c = i % cols;
                    let jx: f32 = rng.gen_range(-0.2..0.2);
                    let jy: f32 = rng.gen_range(-0.2..0.2);
                    Point::new((c as f32 + 0.5 + jx) * pitch, (r as f32 + 0.5 + jy) * pitch)
                })
                .collect()
        }
    };
    Instance::new(name, Metric::Euc2d, points)
        .expect("generator sizes are >= 3")
        .with_comment(format!("synthetic {style:?} n={n} seed={seed}"))
}

/// A standard Box–Muller pair of standard normals.
fn gaussian_pair<R: Rng>(rng: &mut R) -> (f32, f32) {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let th = 2.0 * std::f64::consts::PI * u2;
    ((r * th.cos()) as f32, (r * th.sin()) as f32)
}

/// Tiny deterministic string hash (FxHash-style) to fold instance names
/// into seeds without pulling in a hashing crate.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate("det", 64, Style::Uniform, 7);
        let b = generate("det", 64, Style::Uniform, 7);
        assert_eq!(a.points(), b.points());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate("det", 64, Style::Uniform, 7);
        let b = generate("det", 64, Style::Uniform, 8);
        assert_ne!(a.points(), b.points());
    }

    #[test]
    fn different_names_differ() {
        let a = generate("alpha", 64, Style::Uniform, 7);
        let b = generate("beta", 64, Style::Uniform, 7);
        assert_ne!(a.points(), b.points());
    }

    #[test]
    fn all_styles_produce_requested_size() {
        for style in [
            Style::Uniform,
            Style::Clustered { clusters: 5 },
            Style::Grid,
        ] {
            let inst = generate("sz", 123, style, 1);
            assert_eq!(inst.len(), 123);
        }
    }

    #[test]
    fn uniform_points_stay_in_field() {
        let inst = generate("bounds", 500, Style::Uniform, 3);
        let side = field_side(500);
        for p in inst.points() {
            assert!(p.x >= 0.0 && p.x <= side);
            assert!(p.y >= 0.0 && p.y <= side);
        }
    }

    #[test]
    fn clustered_points_cluster() {
        // Clustered instances should have a *shorter* greedy tour than a
        // uniform field of the same size: verify simple statistical
        // structure — mean nearest-neighbor distance is smaller.
        let u = generate("c", 300, Style::Uniform, 11);
        let c = generate("c", 300, Style::Clustered { clusters: 6 }, 11);
        let mean_nn = |inst: &Instance| -> f64 {
            let n = inst.len();
            let mut sum = 0f64;
            for i in 0..n {
                let mut best = i32::MAX;
                for j in 0..n {
                    if i != j {
                        best = best.min(inst.dist(i, j));
                    }
                }
                sum += best as f64;
            }
            sum / n as f64
        };
        assert!(mean_nn(&c) < mean_nn(&u));
    }

    #[test]
    fn grid_is_roughly_regular() {
        let inst = generate("g", 100, Style::Grid, 1);
        // 10x10 grid with pitch 100: nearest neighbour of every interior
        // point is ~pitch away, never tiny.
        for i in 0..inst.len() {
            for j in (i + 1)..inst.len() {
                assert!(inst.dist(i, j) > 30, "points {i},{j} too close");
            }
        }
    }
}
