//! # tsp-tsplib
//!
//! TSPLIB95 I/O and instance generation for the GPU 2-opt reproduction:
//!
//! * [`parser`] / [`writer`] — read and write TSPLIB95 files (coordinate
//!   sections for all supported metrics, explicit matrices in the common
//!   triangular formats);
//! * [`generator`] — deterministic synthetic point fields (uniform,
//!   clustered, jittered grid);
//! * [`catalog`] — stand-ins with the exact sizes of all 27 instances of
//!   the paper's Table II, plus the 12 rows of Table I.
//!
//! ```
//! use tsp_tsplib::catalog;
//!
//! let entry = catalog::by_name("berlin52").unwrap();
//! let inst = entry.instance();
//! assert_eq!(inst.len(), 52);
//! ```

pub mod catalog;
pub mod error;
pub mod generator;
pub mod parser;
pub mod tour_file;
pub mod writer;

pub use error::TsplibError;
pub use generator::{generate, Style};
pub use parser::parse;
pub use tour_file::{parse_tour, write_tour};
pub use writer::write;

use std::path::Path;
use tsp_core::Instance;

/// Load an instance from a `.tsp` file on disk.
pub fn load(path: impl AsRef<Path>) -> Result<Instance, TsplibError> {
    let text = std::fs::read_to_string(path)?;
    parse(&text)
}

/// Save an instance as TSPLIB text to disk.
pub fn save(inst: &Instance, path: impl AsRef<Path>) -> Result<(), TsplibError> {
    std::fs::write(path, write(inst))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::{Metric, Point};

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("tsp_tsplib_roundtrip_test.tsp");
        let inst = Instance::new(
            "disk4",
            Metric::Euc2d,
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(0.0, 1.0),
            ],
        )
        .unwrap();
        save(&inst, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back.name(), "disk4");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load("/nonexistent/definitely/not/here.tsp").unwrap_err();
        assert!(matches!(err, TsplibError::Io(_)));
    }
}
