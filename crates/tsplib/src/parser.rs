//! TSPLIB95 file parser.
//!
//! Supports the symmetric-TSP subset a 2-opt solver consumes:
//!
//! * header keywords `NAME`, `TYPE`, `COMMENT`, `DIMENSION`,
//!   `EDGE_WEIGHT_TYPE`, `EDGE_WEIGHT_FORMAT`, `NODE_COORD_TYPE`,
//!   `DISPLAY_DATA_TYPE` (both `KEY: value` and `KEY : value` forms);
//! * `NODE_COORD_SECTION` for all coordinate metrics;
//! * `EDGE_WEIGHT_SECTION` for `EXPLICIT` instances in `FULL_MATRIX`,
//!   `UPPER_ROW`, `UPPER_DIAG_ROW` and `LOWER_DIAG_ROW` formats;
//! * `DISPLAY_DATA_SECTION` (attached as display coordinates);
//! * `EOF` terminator (optional, per the many real files that omit it).

use crate::error::TsplibError;
use std::collections::HashMap;
use tsp_core::{ExplicitMatrix, Instance, Metric, Point};

/// Supported explicit edge-weight layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeWeightFormat {
    /// Square matrix, row by row.
    FullMatrix,
    /// Strict upper triangle, row by row.
    UpperRow,
    /// Upper triangle including diagonal.
    UpperDiagRow,
    /// Lower triangle including diagonal.
    LowerDiagRow,
}

impl EdgeWeightFormat {
    fn from_keyword(kw: &str) -> Option<Self> {
        Some(match kw {
            "FULL_MATRIX" => EdgeWeightFormat::FullMatrix,
            "UPPER_ROW" => EdgeWeightFormat::UpperRow,
            "UPPER_DIAG_ROW" => EdgeWeightFormat::UpperDiagRow,
            "LOWER_DIAG_ROW" => EdgeWeightFormat::LowerDiagRow,
            _ => return None,
        })
    }
}

/// Parse TSPLIB text into an [`Instance`].
pub fn parse(text: &str) -> Result<Instance, TsplibError> {
    let mut header: HashMap<String, String> = HashMap::new();
    let mut coords: Vec<(usize, f64, f64)> = Vec::new();
    let mut display: Vec<(usize, f64, f64)> = Vec::new();
    let mut weights: Vec<i32> = Vec::new();

    #[derive(PartialEq)]
    enum Section {
        Header,
        NodeCoords,
        EdgeWeights,
        DisplayData,
        Skip,
    }
    let mut section = Section::Header;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line == "EOF" {
            break;
        }
        // Section markers.
        match line {
            "NODE_COORD_SECTION" => {
                section = Section::NodeCoords;
                continue;
            }
            "EDGE_WEIGHT_SECTION" => {
                section = Section::EdgeWeights;
                continue;
            }
            "DISPLAY_DATA_SECTION" => {
                section = Section::DisplayData;
                continue;
            }
            // Sections we accept but ignore.
            "FIXED_EDGES_SECTION" | "TOUR_SECTION" | "EDGE_DATA_SECTION" => {
                section = Section::Skip;
                continue;
            }
            _ => {}
        }

        match section {
            Section::Header => {
                let (key, value) = line.split_once(':').ok_or_else(|| TsplibError::Syntax {
                    line: lineno + 1,
                    message: format!("expected `KEY: value`, got `{line}`"),
                })?;
                header.insert(key.trim().to_uppercase(), value.trim().to_string());
            }
            Section::NodeCoords => {
                coords.push(parse_coord_line(line, lineno + 1)?);
            }
            Section::DisplayData => {
                display.push(parse_coord_line(line, lineno + 1)?);
            }
            Section::EdgeWeights => {
                for tok in line.split_whitespace() {
                    let w: i64 = tok.parse().map_err(|_| TsplibError::Syntax {
                        line: lineno + 1,
                        message: format!("invalid weight `{tok}`"),
                    })?;
                    weights.push(w as i32);
                }
            }
            Section::Skip => {}
        }
    }

    let name = header
        .get("NAME")
        .cloned()
        .unwrap_or_else(|| "unnamed".to_string());
    let dimension: usize = header
        .get("DIMENSION")
        .ok_or(TsplibError::MissingKeyword("DIMENSION"))?
        .parse()
        .map_err(|_| TsplibError::Invalid("DIMENSION is not an integer".into()))?;
    let ewt = header
        .get("EDGE_WEIGHT_TYPE")
        .ok_or(TsplibError::MissingKeyword("EDGE_WEIGHT_TYPE"))?;
    let metric = Metric::from_keyword(ewt)
        .ok_or_else(|| TsplibError::UnsupportedEdgeWeightType(ewt.clone()))?;

    if let Some(t) = header.get("TYPE") {
        let t = t.trim();
        if t != "TSP" && t != "STSP" {
            return Err(TsplibError::UnsupportedType(t.to_string()));
        }
    }

    let instance = if metric == Metric::Explicit {
        let fmt_kw = header
            .get("EDGE_WEIGHT_FORMAT")
            .ok_or(TsplibError::MissingKeyword("EDGE_WEIGHT_FORMAT"))?;
        let fmt = EdgeWeightFormat::from_keyword(fmt_kw)
            .ok_or_else(|| TsplibError::UnsupportedEdgeWeightFormat(fmt_kw.clone()))?;
        let matrix = match fmt {
            EdgeWeightFormat::FullMatrix => ExplicitMatrix::from_full(dimension, weights),
            EdgeWeightFormat::UpperRow => ExplicitMatrix::from_upper_row(dimension, &weights),
            EdgeWeightFormat::UpperDiagRow => {
                ExplicitMatrix::from_upper_diag_row(dimension, &weights)
            }
            EdgeWeightFormat::LowerDiagRow => {
                ExplicitMatrix::from_lower_diag_row(dimension, &weights)
            }
        }
        .map_err(|e| TsplibError::Invalid(e.to_string()))?;
        let display_points = if display.is_empty() {
            None
        } else {
            Some(collect_points(display, dimension)?)
        };
        Instance::from_matrix(name, matrix, display_points)
            .map_err(|e| TsplibError::Invalid(e.to_string()))?
    } else {
        if coords.len() != dimension {
            return Err(TsplibError::Invalid(format!(
                "DIMENSION is {dimension} but NODE_COORD_SECTION has {} entries",
                coords.len()
            )));
        }
        let points = collect_points(coords, dimension)?;
        Instance::new(name, metric, points).map_err(|e| TsplibError::Invalid(e.to_string()))?
    };

    let instance = match header.get("COMMENT") {
        Some(c) => instance.with_comment(c.clone()),
        None => instance,
    };
    Ok(instance)
}

fn parse_coord_line(line: &str, lineno: usize) -> Result<(usize, f64, f64), TsplibError> {
    let mut it = line.split_whitespace();
    let err = |msg: &str| TsplibError::Syntax {
        line: lineno,
        message: msg.to_string(),
    };
    let id: usize = it
        .next()
        .ok_or_else(|| err("missing node id"))?
        .parse()
        .map_err(|_| err("node id is not an integer"))?;
    let x: f64 = it
        .next()
        .ok_or_else(|| err("missing x coordinate"))?
        .parse()
        .map_err(|_| err("x is not a number"))?;
    let y: f64 = it
        .next()
        .ok_or_else(|| err("missing y coordinate"))?
        .parse()
        .map_err(|_| err("y is not a number"))?;
    Ok((id, x, y))
}

fn collect_points(
    entries: Vec<(usize, f64, f64)>,
    dimension: usize,
) -> Result<Vec<Point>, TsplibError> {
    let mut points = vec![None; dimension];
    for (id, x, y) in entries {
        if id == 0 || id > dimension {
            return Err(TsplibError::Invalid(format!(
                "node id {id} out of range 1..={dimension}"
            )));
        }
        if points[id - 1].is_some() {
            return Err(TsplibError::Invalid(format!("node id {id} appears twice")));
        }
        points[id - 1] = Some(Point::new(x as f32, y as f32));
    }
    points
        .into_iter()
        .enumerate()
        .map(|(i, p)| p.ok_or_else(|| TsplibError::Invalid(format!("node id {} missing", i + 1))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SQUARE: &str = "\
NAME: square4
TYPE: TSP
COMMENT: unit test square
DIMENSION: 4
EDGE_WEIGHT_TYPE: EUC_2D
NODE_COORD_SECTION
1 0.0 0.0
2 0.0 10.0
3 10.0 10.0
4 10.0 0.0
EOF
";

    #[test]
    fn parses_euclidean_instance() {
        let inst = parse(SQUARE).unwrap();
        assert_eq!(inst.name(), "square4");
        assert_eq!(inst.len(), 4);
        assert_eq!(inst.metric(), Metric::Euc2d);
        assert_eq!(inst.comment(), "unit test square");
        assert_eq!(inst.dist(0, 1), 10);
        assert_eq!(inst.dist(0, 2), 14);
    }

    #[test]
    fn parses_header_with_spaced_colon() {
        let text = SQUARE.replace("NAME:", "NAME :");
        let inst = parse(&text).unwrap();
        assert_eq!(inst.name(), "square4");
    }

    #[test]
    fn parses_explicit_full_matrix() {
        let text = "\
NAME: m3
TYPE: TSP
DIMENSION: 3
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: FULL_MATRIX
EDGE_WEIGHT_SECTION
0 1 2
1 0 3
2 3 0
EOF
";
        let inst = parse(text).unwrap();
        assert_eq!(inst.dist(0, 1), 1);
        assert_eq!(inst.dist(1, 2), 3);
        assert!(!inst.is_coordinate_based());
    }

    #[test]
    fn parses_explicit_lower_diag_row_multiline() {
        let text = "\
NAME: bays3-like
DIMENSION: 3
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: LOWER_DIAG_ROW
EDGE_WEIGHT_SECTION
0
5 0
7 9
0
EOF
";
        let inst = parse(text).unwrap();
        assert_eq!(inst.dist(0, 1), 5);
        assert_eq!(inst.dist(2, 0), 7);
        assert_eq!(inst.dist(2, 1), 9);
    }

    #[test]
    fn rejects_missing_dimension() {
        let err = parse("NAME: x\nEDGE_WEIGHT_TYPE: EUC_2D\n").unwrap_err();
        assert!(matches!(err, TsplibError::MissingKeyword("DIMENSION")));
    }

    #[test]
    fn rejects_unknown_metric() {
        let text = SQUARE.replace("EUC_2D", "XRAY1");
        let err = parse(&text).unwrap_err();
        assert!(matches!(err, TsplibError::UnsupportedEdgeWeightType(_)));
    }

    #[test]
    fn rejects_non_tsp_type() {
        let text = SQUARE.replace("TYPE: TSP", "TYPE: CVRP");
        let err = parse(&text).unwrap_err();
        assert!(matches!(err, TsplibError::UnsupportedType(_)));
    }

    #[test]
    fn rejects_coordinate_count_mismatch() {
        let text = SQUARE.replace("DIMENSION: 4", "DIMENSION: 5");
        let err = parse(&text).unwrap_err();
        assert!(matches!(err, TsplibError::Invalid(_)));
    }

    #[test]
    fn rejects_duplicate_node_ids() {
        let text = SQUARE.replace("2 0.0 10.0", "1 0.0 10.0");
        let err = parse(&text).unwrap_err();
        assert!(matches!(err, TsplibError::Invalid(_)));
    }

    #[test]
    fn rejects_garbage_coordinates() {
        let text = SQUARE.replace("2 0.0 10.0", "2 zero ten");
        let err = parse(&text).unwrap_err();
        assert!(matches!(err, TsplibError::Syntax { .. }));
    }

    #[test]
    fn works_without_eof_marker() {
        let text = SQUARE.replace("EOF\n", "");
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn one_based_ids_in_any_order() {
        let text = "\
NAME: shuffled
DIMENSION: 3
EDGE_WEIGHT_TYPE: EUC_2D
NODE_COORD_SECTION
3 2.0 0.0
1 0.0 0.0
2 1.0 0.0
";
        let inst = parse(text).unwrap();
        assert_eq!(inst.point(0), Point::new(0.0, 0.0));
        assert_eq!(inst.point(2), Point::new(2.0, 0.0));
    }
}
