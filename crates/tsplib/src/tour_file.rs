//! TSPLIB `.tour` files (TYPE: TOUR) — reading reference/optimal tours
//! and exporting solutions for external verification.

use crate::error::TsplibError;
use std::fmt::Write as _;
use tsp_core::Tour;

/// Parse a TSPLIB tour file into a [`Tour`].
///
/// Expects a `TOUR_SECTION` of 1-based city ids, optionally terminated
/// by `-1`, and validates the permutation.
pub fn parse_tour(text: &str) -> Result<Tour, TsplibError> {
    let mut ids: Vec<i64> = Vec::new();
    let mut in_section = false;
    let mut dimension: Option<usize> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line == "EOF" {
            break;
        }
        if line == "TOUR_SECTION" {
            in_section = true;
            continue;
        }
        if !in_section {
            if let Some((key, value)) = line.split_once(':') {
                let key = key.trim().to_uppercase();
                if key == "DIMENSION" {
                    dimension = Some(value.trim().parse().map_err(|_| TsplibError::Syntax {
                        line: lineno + 1,
                        message: "DIMENSION is not an integer".into(),
                    })?);
                } else if key == "TYPE" && value.trim() != "TOUR" {
                    return Err(TsplibError::UnsupportedType(value.trim().to_string()));
                }
            }
            continue;
        }
        for tok in line.split_whitespace() {
            let id: i64 = tok.parse().map_err(|_| TsplibError::Syntax {
                line: lineno + 1,
                message: format!("invalid city id `{tok}`"),
            })?;
            if id == -1 {
                in_section = false;
                break;
            }
            ids.push(id);
        }
    }
    if ids.is_empty() {
        return Err(TsplibError::Invalid(
            "tour file has no TOUR_SECTION entries".into(),
        ));
    }
    if let Some(d) = dimension {
        if ids.len() != d {
            return Err(TsplibError::Invalid(format!(
                "DIMENSION is {d} but the tour lists {} cities",
                ids.len()
            )));
        }
    }
    let order: Result<Vec<u32>, TsplibError> = ids
        .iter()
        .map(|&id| {
            if id >= 1 && id <= ids.len() as i64 {
                Ok((id - 1) as u32)
            } else {
                Err(TsplibError::Invalid(format!(
                    "city id {id} out of range 1..={}",
                    ids.len()
                )))
            }
        })
        .collect();
    Tour::new(order?).map_err(|e| TsplibError::Invalid(e.to_string()))
}

/// Render a [`Tour`] as a TSPLIB tour file.
pub fn write_tour(name: &str, tour: &Tour) -> String {
    let mut out = String::new();
    writeln!(out, "NAME: {name}").unwrap();
    writeln!(out, "TYPE: TOUR").unwrap();
    writeln!(out, "DIMENSION: {}", tour.len()).unwrap();
    writeln!(out, "TOUR_SECTION").unwrap();
    for &c in tour.as_slice() {
        writeln!(out, "{}", c + 1).unwrap();
    }
    writeln!(out, "-1").unwrap();
    writeln!(out, "EOF").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let t = Tour::new(vec![2, 0, 3, 1]).unwrap();
        let text = write_tour("rt", &t);
        let back = parse_tour(&text).unwrap();
        assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn parses_without_terminator_or_dimension() {
        let text = "NAME: x\nTYPE: TOUR\nTOUR_SECTION\n3 1 2\nEOF\n";
        let t = parse_tour(text).unwrap();
        assert_eq!(t.as_slice(), &[2, 0, 1]);
    }

    #[test]
    fn rejects_duplicates() {
        let text = "TOUR_SECTION\n1 2 2\n-1\n";
        assert!(matches!(parse_tour(text), Err(TsplibError::Invalid(_))));
    }

    #[test]
    fn rejects_out_of_range_ids() {
        let text = "TOUR_SECTION\n1 2 9\n-1\n";
        assert!(matches!(parse_tour(text), Err(TsplibError::Invalid(_))));
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let text = "DIMENSION: 4\nTOUR_SECTION\n1 2 3\n-1\n";
        assert!(matches!(parse_tour(text), Err(TsplibError::Invalid(_))));
    }

    #[test]
    fn rejects_wrong_type() {
        let text = "TYPE: TSP\nTOUR_SECTION\n1 2 3\n-1\n";
        assert!(matches!(
            parse_tour(text),
            Err(TsplibError::UnsupportedType(_))
        ));
    }

    #[test]
    fn rejects_empty_section() {
        assert!(parse_tour("TOUR_SECTION\n-1\n").is_err());
        assert!(parse_tour("NAME: x\n").is_err());
    }
}
