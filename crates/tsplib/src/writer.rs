//! TSPLIB95 writer — enables round-trip tests and exporting generated
//! instances for use with other solvers.

use std::fmt::Write as _;
use tsp_core::{Instance, Metric};

/// Render an instance as TSPLIB95 text.
///
/// Coordinate instances emit a `NODE_COORD_SECTION`; explicit instances
/// emit a `FULL_MATRIX` `EDGE_WEIGHT_SECTION`.
pub fn write(inst: &Instance) -> String {
    let mut out = String::new();
    writeln!(out, "NAME: {}", inst.name()).unwrap();
    writeln!(out, "TYPE: TSP").unwrap();
    if !inst.comment().is_empty() {
        writeln!(out, "COMMENT: {}", inst.comment()).unwrap();
    }
    writeln!(out, "DIMENSION: {}", inst.len()).unwrap();
    writeln!(out, "EDGE_WEIGHT_TYPE: {}", inst.metric().keyword()).unwrap();
    if inst.metric() == Metric::Explicit {
        writeln!(out, "EDGE_WEIGHT_FORMAT: FULL_MATRIX").unwrap();
        writeln!(out, "EDGE_WEIGHT_SECTION").unwrap();
        let n = inst.len();
        for i in 0..n {
            let row: Vec<String> = (0..n).map(|j| inst.dist(i, j).to_string()).collect();
            writeln!(out, "{}", row.join(" ")).unwrap();
        }
    } else {
        writeln!(out, "NODE_COORD_SECTION").unwrap();
        for (i, p) in inst.points().iter().enumerate() {
            writeln!(out, "{} {} {}", i + 1, p.x, p.y).unwrap();
        }
    }
    writeln!(out, "EOF").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use tsp_core::{ExplicitMatrix, Point};

    #[test]
    fn coordinate_round_trip() {
        let inst = Instance::new(
            "rt4",
            Metric::Euc2d,
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 10.0),
                Point::new(10.0, 10.0),
                Point::new(10.0, 0.0),
            ],
        )
        .unwrap()
        .with_comment("round trip");
        let text = write(&inst);
        let back = parse(&text).unwrap();
        assert_eq!(back.name(), "rt4");
        assert_eq!(back.comment(), "round trip");
        assert_eq!(back.len(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(back.dist(i, j), inst.dist(i, j));
            }
        }
    }

    #[test]
    fn explicit_round_trip() {
        let m = ExplicitMatrix::from_upper_row(3, &[4, 8, 15]).unwrap();
        let inst = Instance::from_matrix("em3", m, None).unwrap();
        let text = write(&inst);
        let back = parse(&text).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(back.dist(i, j), inst.dist(i, j));
            }
        }
    }
}
