//! Candidate-list 2-opt smoke run: the sub-quadratic k-NN sweep with
//! don't-look bits, end to end on a 512-city instance.
//!
//! Descends with `Strategy::Candidate { k: 16 }` and its list-resident
//! variant from the same Multiple-Fragment start, then checks the
//! whole contract: both residencies agree bit-for-bit, the result is a
//! valid tour no longer than the start, the host-side mirror certifies
//! a candidate-local minimum, the candidate descent checks far fewer
//! pairs than the dense device-resident descent, and the quality gap
//! against that dense descent stays within 2 %.
//!
//! Run with: `cargo run --release --example candidate_smoke`
//!
//! The example is self-validating: every stage asserts, and the final
//! line prints `CANDIDATE SMOKE OK` only if all of them held.

use tsp::prelude::*;
use tsp::tsplib::{generate, Style};
use tsp_2opt::CandidateLists;

const N: usize = 512;
const K: usize = 16;

fn descend(inst: &Instance, strategy: Strategy) -> Solution {
    Solver::builder()
        .construction(Construction::MultipleFragment)
        .strategy(strategy)
        .build()
        .run(inst)
        .expect("generated instances are coordinate-based")
}

fn main() {
    let inst = generate("gen", N, Style::Uniform, 42);

    // ---- candidate descent, both residencies ---------------------
    let cand = descend(&inst, Strategy::Candidate { k: K });
    let resident = descend(&inst, Strategy::CandidateResident { k: K });
    assert_eq!(
        cand.tour.as_slice(),
        resident.tour.as_slice(),
        "the two residency variants run the identical search"
    );
    assert_eq!(cand.length, resident.length);
    assert!(cand.length <= cand.initial_length);
    cand.tour.validate().expect("final tour is a permutation");
    println!(
        "candidate descent: {} -> {} ({} cities, k = {K}, {:.3} ms modeled)",
        cand.initial_length,
        cand.length,
        N,
        cand.modeled_seconds() * 1e3,
    );

    // ---- certified candidate-local minimum -----------------------
    let lists = CandidateLists::build(&inst, K);
    assert_eq!(
        lists.best_candidate_move(&inst, &cand.tour),
        None,
        "host mirror must agree no k-NN improving move remains"
    );
    println!(
        "certified: no improving move within the {}-NN neighbourhood ({} closure entries)",
        lists.k(),
        (0..N).map(|c| lists.closure(c).len()).sum::<usize>(),
    );

    // ---- dense cross-check ---------------------------------------
    let dense = descend(&inst, Strategy::DeviceResident);
    let gap = 100.0 * (cand.length - dense.length) as f64 / dense.length as f64;
    assert!(
        gap <= 2.0,
        "quality gap {gap:.2}% vs the dense descent exceeds 2%"
    );
    println!(
        "dense cross-check: dense {} vs candidate {} ({gap:+.2}% gap)",
        dense.length, cand.length,
    );

    println!("CANDIDATE SMOKE OK");
}
