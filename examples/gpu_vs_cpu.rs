//! Head-to-head: the three engines on the same instance — verifies they
//! pick identical moves and contrasts their modeled per-sweep cost
//! (the single-run comparison behind the paper's Fig. 10).
//!
//! ```text
//! cargo run --release -p tsp-apps --example gpu_vs_cpu -- [n]
//! ```

use gpu_sim::spec;
use tsp_2opt::{CpuParallelTwoOpt, GpuTwoOpt, SequentialTwoOpt, TwoOptEngine};
use tsp_core::Tour;
use tsp_tsplib::{generate, Style};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let inst = generate("gpu-vs-cpu", n, Style::Uniform, 3);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(1);
    let tour = Tour::random(n, &mut rng);
    println!(
        "one full 2-opt sweep on {} cities ({} candidate pairs)\n",
        n,
        tsp_2opt::indexing::pair_count(n)
    );

    let mut engines: Vec<Box<dyn TwoOptEngine>> = vec![
        Box::new(SequentialTwoOpt::new()),
        Box::new(CpuParallelTwoOpt::with_spec(spec::xeon_e5_2660_x2())),
        Box::new(GpuTwoOpt::new(spec::gtx_680_cuda())),
        Box::new(GpuTwoOpt::new(spec::radeon_7970())),
    ];

    let mut reference = None;
    let mut baseline_time = None;
    println!(
        "{:<45} {:>12} {:>14} {:>10}",
        "engine", "modeled", "Mchecks/s", "speedup"
    );
    println!("{}", "-".repeat(85));
    for engine in engines.iter_mut() {
        let start = std::time::Instant::now();
        let (mv, prof) = engine
            .best_move(&inst, &tour)
            .expect("engines run on coordinate instances");
        let host = start.elapsed().as_secs_f64();
        match &reference {
            None => reference = Some(mv),
            Some(r) => assert_eq!(&mv, r, "engines must agree bit-for-bit on the best move"),
        }
        let t = prof.modeled_seconds();
        let speedup = match baseline_time {
            None => {
                baseline_time = Some(t);
                1.0
            }
            Some(b) => b / t,
        };
        println!(
            "{:<45} {:>9.3} ms {:>12.0} {:>9.1}x   (host: {:.1} ms)",
            engine.name(),
            t * 1e3,
            prof.checks_per_second() / 1e6,
            speedup,
            host * 1e3,
        );
    }
    let mv = reference
        .flatten()
        .expect("a random tour has improving moves");
    println!(
        "\nall engines found the same best move: delta {} at positions ({}, {})",
        mv.delta, mv.i, mv.j
    );
}
