//! The §IV.B division scheme in action: a single 2-opt sweep over an
//! instance far beyond the 6144-city shared-memory capacity, plus the
//! analytic pricing of the paper's largest rows.
//!
//! ```text
//! cargo run --release -p tsp-apps --example large_instance -- [n]
//! ```

use gpu_sim::spec;
use tsp_2opt::gpu::model::model_auto_sweep;
use tsp_2opt::gpu::tiled::{auto_tile, max_tile_for_shared};
use tsp_2opt::{GpuTwoOpt, SequentialTwoOpt, TwoOptEngine};
use tsp_core::Tour;
use tsp_tsplib::{generate, Style};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let dev = spec::gtx_680_cuda();
    println!(
        "device: {} — shared memory {} kB",
        dev.name,
        dev.shared_mem_per_block / 1024
    );
    println!(
        "single-range capacity: {} cities; this instance: {} cities",
        dev.shared_mem_per_block / 8,
        n
    );
    let cap = max_tile_for_shared(dev.shared_mem_per_block);
    let tile = auto_tile(n, dev.shared_mem_per_block, dev.compute_units * 4);
    println!("tile capacity (two ranges): {cap} positions; auto-selected tile: {tile}\n");

    // Functional sweep through the tiled kernel.
    let inst = generate("large", n, Style::Clustered { clusters: 40 }, 9);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(5);
    let tour = Tour::random(n, &mut rng);
    let mut gpu = GpuTwoOpt::new(dev.clone());
    let start = std::time::Instant::now();
    let (mv, prof) = gpu.best_move(&inst, &tour).expect("tiled kernel runs");
    println!("functional tiled sweep over {} pairs:", prof.pairs_checked);
    println!(
        "  modeled: kernel {:.3} ms + H2D {:.3} ms + D2H {:.3} ms = {:.3} ms",
        prof.kernel_seconds * 1e3,
        prof.h2d_seconds * 1e3,
        prof.d2h_seconds * 1e3,
        prof.modeled_seconds() * 1e3
    );
    println!("  host wall time: {:.2} s", start.elapsed().as_secs_f64());
    let mv = mv.expect("a random tour has improving moves");
    println!("  best move: delta {} at ({}, {})", mv.delta, mv.i, mv.j);

    // Cross-check against the sequential engine (on a smaller instance
    // this would be instant; here it is the slow path — skip above 30k).
    if n <= 30_000 {
        let mut seq = SequentialTwoOpt::new();
        let (expected, _) = seq.best_move(&inst, &tour).unwrap();
        assert_eq!(Some(mv), expected, "tiled kernel matches the exact scan");
        println!("  verified against the sequential engine.");
    }

    // Analytic pricing of the paper's biggest rows (Table II tail).
    println!("\nanalytic sweep model, paper's largest instances:");
    for (name, big_n) in [
        ("pla85900", 85_900usize),
        ("usa115475", 115_475),
        ("ara238025", 238_025),
        ("lra498378", 498_378),
        ("lrb744710", 744_710),
    ] {
        let m = model_auto_sweep(&dev, big_n);
        println!(
            "  {name:>10} ({big_n:>6} cities): kernel {:>8.3} s, {:>6.0} GFLOP/s, {:.1e} checks",
            m.kernel_seconds,
            m.gflops(),
            m.pairs as f64
        );
    }
}
