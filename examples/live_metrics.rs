//! Live metrics and a convergence journal on a 1000-city ILS run.
//!
//! ```text
//! cargo run --release -p tsp-apps --example live_metrics -- [n] [iterations] [journal.jsonl]
//! ```
//!
//! The run attaches a [`Telemetry`] registry and a [`Journal`] through
//! the `tsp::Solver` facade, prints the Prometheus exposition at the
//! end, writes the journal as JSONL, and self-validates both along the
//! way: the acceptance-rate gauge must stay in `[0, 1]`, the journal
//! must be monotone in iteration and modeled time, and the journal's
//! final record must agree with the solution the facade returned.
//! (For a *live* scrape of a run in flight, see `traced_ils`, which
//! serves `/metrics` over HTTP and scrapes itself.)

use tsp::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let iterations: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let out = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "journal.jsonl".into());

    let inst = tsp::tsplib::generate(
        "live-metrics",
        n,
        tsp::tsplib::Style::Clustered { clusters: 25 },
        0x2013,
    );
    let solution = Solver::builder()
        .construction(Construction::Random(0x2013))
        .ils(
            IlsOptions::default()
                .with_max_iterations(iterations)
                .with_seed(0x2013),
        )
        .telemetry(TelemetryOptions::attached())
        .build()
        .run(&inst)
        .expect("generated instances are coordinate-based");
    println!(
        "best length after {} iterations on n = {n}: {} (initial {})",
        solution.iterations, solution.length, solution.initial_length
    );

    // --- Registry self-validation ------------------------------------
    let registry = solution.telemetry.registry().expect("telemetry attached");
    let rate = registry
        .gauge_value("tsp_ils_acceptance_rate")
        .expect("acceptance-rate gauge present");
    assert!(
        (0.0..=1.0).contains(&rate),
        "acceptance rate {rate} outside [0, 1]"
    );
    assert_eq!(
        registry.counter_value("tsp_ils_iterations_total"),
        Some(solution.iterations as f64),
        "iterations counter must match the outcome"
    );
    assert_eq!(
        registry.gauge_value("tsp_ils_best_length"),
        Some(solution.length as f64),
        "best-length gauge must match the outcome"
    );
    let sweeps = registry
        .counter_value("tsp_search_sweeps_total")
        .expect("sweep counter present");
    assert!(sweeps > 0.0, "descents must have swept");

    // --- Journal self-validation -------------------------------------
    let records = solution.journal.records();
    assert!(!records.is_empty(), "journal must not be empty");
    for w in records.windows(2) {
        assert!(
            w[0].iteration <= w[1].iteration,
            "journal iterations must be monotone"
        );
        assert!(
            w[0].modeled_seconds <= w[1].modeled_seconds,
            "journal modeled time must be monotone"
        );
    }
    let last = records.last().unwrap();
    assert_eq!(last.event, tsp::telemetry::JournalEvent::Final);
    assert_eq!(
        last.tour_length, solution.length,
        "journal's final record must carry the solution length"
    );

    std::fs::write(&out, solution.journal.to_jsonl())
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "wrote {out} ({} records); acceptance rate {rate:.2}, {sweeps} sweeps",
        records.len()
    );

    // Full exposition, ready for any Prometheus scraper.
    print!("\n{}", solution.telemetry.expose());
}
