//! The paper's §VI future work, realized: split one 2-opt sweep across a
//! fleet of devices and watch the modeled makespan scale.
//!
//! ```text
//! cargo run --release -p tsp-apps --example multi_gpu -- [n]
//! ```

use gpu_sim::spec;
use tsp_2opt::{GpuTwoOpt, MultiGpuTwoOpt, SequentialTwoOpt, TwoOptEngine};
use tsp_core::Tour;
use tsp_tsplib::{generate, Style};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5000);
    let inst = generate("multi", n, Style::Uniform, 13);
    let tour = Tour::identity(n);
    println!("one 2-opt sweep, {} cities\n", n);

    let mut single = GpuTwoOpt::new(spec::gtx_680_cuda());
    let (expected, base) = single.best_move(&inst, &tour).unwrap();
    println!(
        "{:<24} modeled {:>10.3} ms   (kernel {:>9.3} ms)",
        "1 x GTX 680",
        base.modeled_seconds() * 1e3,
        base.kernel_seconds * 1e3
    );

    for count in [2usize, 3, 4, 8] {
        let mut fleet = MultiGpuTwoOpt::homogeneous(spec::gtx_680_cuda(), count);
        let (mv, p) = fleet.best_move(&inst, &tour).unwrap();
        assert_eq!(mv, expected, "fleet result must match the single device");
        println!(
            "{:<24} modeled {:>10.3} ms   (kernel {:>9.3} ms)  speedup {:>5.2}x",
            format!("{count} x GTX 680"),
            p.modeled_seconds() * 1e3,
            p.kernel_seconds * 1e3,
            base.modeled_seconds() / p.modeled_seconds()
        );
    }

    // A heterogeneous fleet also works — the contiguous range split does
    // not balance by device speed (a future-future-work item the paper
    // would enjoy), so the slowest device bounds the makespan.
    let mut mixed = MultiGpuTwoOpt::new(vec![
        spec::radeon_7970_ghz(),
        spec::gtx_680_cuda(),
        spec::radeon_6990_single(),
    ]);
    let (mv, p) = mixed.best_move(&inst, &tour).unwrap();
    assert_eq!(mv, expected);
    println!(
        "{:<24} modeled {:>10.3} ms   (bounded by the slowest device)",
        "7970GHz+680+6990",
        p.modeled_seconds() * 1e3
    );

    // Ground truth for the curious.
    let mut seq = SequentialTwoOpt::new();
    let (seq_mv, _) = seq.best_move(&inst, &tour).unwrap();
    assert_eq!(seq_mv, expected);
    println!("\nresult verified against the sequential engine.");
}
