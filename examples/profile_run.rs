//! Profile a full 2-opt descent with the simulator's timeline — the
//! `nvprof`-style view of the paper's Algorithm 2 loop: per-sweep H2D
//! copy, kernel, one-word D2H readback, and the transfer share that
//! shrinks as instances grow.
//!
//! ```text
//! cargo run --release -p tsp-apps --example profile_run -- [n]
//! ```

use gpu_sim::{spec, Timeline};
use tsp_2opt::{optimize, GpuTwoOpt, SearchOptions};
use tsp_construction::multiple_fragment;
use tsp_tsplib::{generate, Style};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(800);
    let inst = generate("profile", n, Style::Uniform, 21);
    let mut tour = multiple_fragment(&inst);

    // Kernels carry their own labels (Kernel::label), so no sticky
    // set_label is needed.
    let timeline = Timeline::new();
    let mut engine = GpuTwoOpt::new(spec::gtx_680_cuda()).with_timeline(timeline.clone());
    let stats =
        optimize(&mut engine, &inst, &mut tour, SearchOptions::default()).expect("descent runs");

    println!(
        "descent on {n} cities: {} sweeps to the local minimum ({} -> {})\n",
        stats.sweeps, stats.initial_length, stats.final_length
    );
    print!("{}", timeline.report());
    println!(
        "\ntransfer share of modeled time: {:.1}%  (the paper: the copy \
         proportion \"decreases with the problem size growing\")",
        timeline.transfer_share() * 100.0
    );
    println!("events recorded: {}", timeline.len());
}
