//! Profile a full ILS solve end to end and emit the correlated artifact
//! set DESIGN.md §13 describes: a collapsed-stack flamegraph, the
//! device-memory ledger report, and a `manifest.json` that ties both to
//! the run's deterministic `run_id`.
//!
//! ```text
//! cargo run --release -p tsp-apps --example profiled_run -- [n] [out_dir]
//! ```
//!
//! The example is self-validating (CI runs it as a smoke test): it
//! asserts the ledger balances to zero once the engine is dropped, that
//! the profiler captured a non-empty span tree, and that the manifest
//! round-trips. View the artifacts with:
//!
//! ```text
//! tsp-inspect flame --manifest <out_dir>/manifest.json
//! tsp-inspect mem   --manifest <out_dir>/manifest.json
//! ```

use std::fs;
use std::path::Path;

use tsp::prelude::*;
use tsp_tsplib::{generate, Style};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let out_dir = args.next().unwrap_or_else(|| "profiled_run_out".into());
    let inst = generate("profiled", n, Style::Uniform, 0x2013);

    let prof = Profiler::attached();
    let mut ils = IlsOptions::default();
    ils.max_iterations = Some(8);
    ils.seed = 7;
    let solver = Solver::builder().ils(ils).profiler(prof.clone()).build();
    let solution = solver.run(&inst).expect("solve succeeds");

    println!(
        "run {}: n={n}, length {:.1} after {} modeled seconds",
        solution.run_id,
        solution.length,
        solution.modeled_seconds()
    );

    // While the solver (and its device buffers) lived, the snapshot on
    // the solution carries live bytes; after `run` returns the engine
    // is dropped, so the profiler's current view must balance to zero.
    let report = prof.report();
    assert!(
        report.memory.balanced(),
        "device-memory ledger must balance once the engine is dropped:\n{}",
        report.memory.render()
    );
    assert!(
        report.spans.iter().any(|s| s.path.starts_with("solve")),
        "profiler captured no solve spans"
    );
    let flame = report.flamegraph();
    assert!(
        !flame.trim().is_empty(),
        "flamegraph export produced no stacks"
    );
    // The export must parse back with the library's own reader.
    let stacks = tsp::prof::parse_collapsed(&flame).expect("flamegraph round-trips");
    assert!(!stacks.is_empty());

    let out = Path::new(&out_dir);
    fs::create_dir_all(out).expect("cannot create output directory");
    fs::write(out.join("flamegraph.folded"), &flame).expect("write flamegraph");
    fs::write(out.join("memory.json"), report.memory.to_json_string()).expect("write memory");

    let mut manifest = Manifest::new(solution.run_id.clone());
    manifest
        .push("flamegraph", "flamegraph.folded")
        .push("memory", "memory.json");
    let manifest_json = manifest.to_json_string();
    let parsed = Manifest::parse(&manifest_json).expect("manifest round-trips");
    assert_eq!(parsed.run_id, solution.run_id);
    assert_eq!(parsed.path_of("flamegraph"), Some("flamegraph.folded"));
    fs::write(out.join("manifest.json"), &manifest_json).expect("write manifest");

    println!("\nhot paths (modeled time, self):");
    print!("{}", report.render_hot(5));
    println!("\nmemory ledger at solve time (resident buffers still live):");
    print!("{}", solution.memory.render());
    println!(
        "\nartifacts in {}: manifest.json, flamegraph.folded, memory.json",
        out.display()
    );
    println!("profiled_run: OK");
}
