//! Quickstart: build a tour for a synthetic 1000-city instance with the
//! GPU-accelerated 2-opt, exactly the paper's pipeline (Multiple
//! Fragment construction → 2-opt descent on the device).
//!
//! ```text
//! cargo run --release -p tsp-apps --example quickstart
//! ```

use gpu_sim::spec;
use tsp_2opt::{optimize, GpuTwoOpt, SearchOptions};
use tsp_construction::multiple_fragment;
use tsp_tsplib::{generate, Style};

fn main() {
    // 1. An instance: 1000 uniform points (or load a .tsp file with
    //    tsp_tsplib::load).
    let inst = generate("quickstart", 1000, Style::Uniform, 42);
    println!("instance: {} ({} cities)", inst.name(), inst.len());

    // 2. A starting tour from the Multiple Fragment (greedy) heuristic.
    let mut tour = multiple_fragment(&inst);
    println!("multiple-fragment tour length: {}", tour.length(&inst));

    // 3. 2-opt to the local minimum on a simulated GeForce GTX 680.
    let mut engine = GpuTwoOpt::new(spec::gtx_680_cuda());
    let stats = optimize(&mut engine, &inst, &mut tour, SearchOptions::default())
        .expect("coordinate instance runs on the GPU engine");

    println!("2-opt local minimum:           {}", stats.final_length);
    println!(
        "improvement:                   {:.2} %",
        stats.improvement_percent()
    );
    println!(
        "sweeps: {}  |  improving moves: {}",
        stats.sweeps, stats.improving_moves
    );
    println!(
        "modeled device time: {:.3} ms  (kernel {:.3} ms, transfers {:.3} ms)",
        stats.modeled_seconds() * 1e3,
        stats.profile.kernel_seconds * 1e3,
        (stats.profile.h2d_seconds + stats.profile.d2h_seconds) * 1e3,
    );
    println!(
        "checks: {} at {:.0} M checks/s (modeled)",
        stats.profile.pairs_checked,
        stats.profile.checks_per_second() / 1e6
    );
    println!("host wall time: {:.3} s", stats.host_seconds);
}
