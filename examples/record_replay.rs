//! Record → replay → bisect, end to end.
//!
//! Records a 512-city ILS run into a flight recording, round-trips it
//! through the JSONL codec, replays it on a freshly built solver and
//! checks the reproduction is bit-identical, then injects a flipped
//! acceptance decision into the recording and shows the bisector
//! pinning the fault to exactly the tampered event.
//!
//! Run with: `cargo run --release --example record_replay`
//!
//! The example is self-validating: every stage asserts, and the final
//! line prints `RECORD REPLAY OK` only if all of them held.

use tsp::prelude::*;
use tsp::tsplib::{generate, Style};
use tsp_replay::{parse_recording, ReplayEvent};

fn solver(flight: FlightRecorder) -> Solver {
    Solver::builder()
        .construction(Construction::NearestNeighbor)
        .ils(
            IlsOptions::default()
                .with_max_iterations(8u64)
                .with_seed(2026),
        )
        .record(flight)
        .build()
}

fn main() {
    // Generated exactly as `tsp-inspect --gen clustered:512:42` would
    // regenerate it, so a saved recording can be inspected offline.
    let inst = generate("gen", 512, Style::Clustered { clusters: 8 }, 42);

    // ---- record ---------------------------------------------------
    let flight = FlightRecorder::attached();
    let recorder = solver(flight.clone());
    let solution = recorder.run(&inst).expect("recorded run");
    let recording = recorder.recording(&inst).expect("package recording");
    println!(
        "recorded: {} cities, length {}, {} events, {:.3} ms modeled",
        inst.len(),
        solution.length,
        recording.len(),
        solution.modeled_seconds() * 1e3,
    );

    // ---- serialize round trip ------------------------------------
    let jsonl = recording.to_jsonl();
    let parsed = parse_recording(&jsonl).expect("recording parses back");
    assert_eq!(parsed, recording, "JSONL round trip must be lossless");
    println!(
        "serialized: {} lines, {} bytes, round-trips losslessly",
        jsonl.lines().count(),
        jsonl.len()
    );
    // An optional argument saves the recording for offline inspection
    // (`tsp-inspect <cmd> --recording <path> --gen clustered:512:42`).
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &jsonl).expect("save recording");
        println!("saved recording to {path}");
    }

    // ---- replay ---------------------------------------------------
    let fresh = solver(FlightRecorder::detached());
    let (replayed, report) = fresh.replay(&inst, &parsed).expect("replay accepted");
    assert!(report.is_clean(), "replay must be clean, got:\n{report}");
    assert_eq!(replayed.tour.as_slice(), solution.tour.as_slice());
    assert_eq!(
        replayed.modeled_seconds().to_bits(),
        solution.modeled_seconds().to_bits(),
        "modeled seconds must reproduce bit-for-bit"
    );
    println!("replay: {report}");

    // ---- inject a fault and bisect to it -------------------------
    // Flip the verdict of the third acceptance decision, the kind of
    // single-bit history corruption the bisector exists to localize.
    let mut tampered = parsed.clone();
    let fault_entry = tampered
        .entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.chain == 0 && matches!(e.event, ReplayEvent::Acceptance { .. }))
        .map(|(idx, _)| idx)
        .nth(2)
        .expect("run has at least three acceptance decisions");
    let chain_index = tampered.entries[..fault_entry]
        .iter()
        .filter(|e| e.chain == 0)
        .count();
    if let ReplayEvent::Acceptance { accepted, .. } = &mut tampered.entries[fault_entry].event {
        *accepted = !*accepted;
    }
    println!("injected: flipped acceptance at entry {fault_entry} (chain 0, event {chain_index})");

    let (_, fault_report) = fresh.replay(&inst, &tampered).expect("replay runs");
    let divergence = fault_report
        .divergence
        .as_ref()
        .expect("tampered recording must diverge");
    println!("bisected: {divergence}");
    assert_eq!(divergence.chain, 0);
    assert_eq!(
        divergence.index, chain_index,
        "bisector must localize the fault to exactly the tampered event"
    );

    println!("RECORD REPLAY OK");
}
