//! Fifty concurrent HTTP solves against a live `tsp-serve` instance.
//!
//! ```text
//! cargo run --release -p tsp-apps --example serve_smoke -- [BENCH_serve.json]
//! ```
//!
//! Boots a [`ServeServer`] on a loopback port with the default pool
//! (2 devices × 2 streams, one pre-installed arena per device), then
//! fires 50 deterministic solve requests from 50 client threads over
//! real HTTP and self-validates the service guarantees:
//!
//! * every job lands in `Done` with a tour;
//! * the device-memory ledger holds exactly **one** allocation per
//!   device (the arena) — zero per-request allocations once warm —
//!   and balances after shutdown;
//! * the drained stream schedules show non-zero overlap (concurrent
//!   solves actually shared each device's streams);
//! * the solve-latency histogram counted every job and the occupancy
//!   gauge returned to zero.
//!
//! Writes `BENCH_serve.json`: deterministic totals at the top level
//! (tour lengths and modeled seconds reduce in job-index order, so
//! they are bit-stable run to run) and wall-clock statistics under
//! `"wall"` (gated with a wide tolerance in CI).

use std::sync::Mutex;
use std::time::{Duration, Instant};
use tsp::prelude::*;
use tsp_serve::api::{JobState, JobStatus, SolveRequest, SolveResponse};
use tsp_serve::{ServeServer, ServiceConfig, SolveService};
use tsp_telemetry::http_request;
use tsp_trace::json::Json;

const JOBS: usize = 50;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".into());

    let telemetry = Telemetry::attached();
    let prof = Profiler::attached();
    let cfg = ServiceConfig::default();
    let devices = cfg.devices;
    let service =
        SolveService::start(cfg, telemetry.clone(), prof.clone()).expect("boot the solve service");
    let server = ServeServer::spawn("127.0.0.1:0", service).expect("bind a loopback port");
    let addr = server.addr();
    println!("tsp-serve listening on {addr} ({devices} devices)");

    // --- 50 deterministic jobs, one client thread each ---------------
    // Each job solves its own generated instance (seeded by index), so
    // the served results are reproducible regardless of which lane or
    // completion order the scheduler picks.
    let results: Mutex<Vec<(usize, JobStatus, f64)>> = Mutex::new(Vec::new());
    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..JOBS {
            let results = &results;
            scope.spawn(move || {
                let inst = tsp::tsplib::generate(
                    &format!("smoke-{i:02}"),
                    64,
                    tsp::tsplib::Style::Clustered { clusters: 4 },
                    100 + i as u64,
                );
                let req = SolveRequest::tsplib(tsp::tsplib::writer::write(&inst))
                    .with_tenant(format!("client-{}", i % 8))
                    .with_ils_iterations(2 + (i % 3) as u64)
                    .with_seed(i as u64);
                let started = Instant::now();
                let (status, _, body) = http_request(
                    addr,
                    "POST",
                    "/v1/solve",
                    "application/json",
                    &req.to_json().to_string(),
                )
                .expect("POST /v1/solve");
                assert_eq!(status, 202, "job {i} rejected: {body}");
                let job_id = SolveResponse::parse(&body).expect("valid response").job_id;
                let job = loop {
                    let (status, _, body) =
                        http_request(addr, "GET", &format!("/v1/jobs/{job_id}"), "", "")
                            .expect("GET /v1/jobs/{id}");
                    assert_eq!(status, 200, "{body}");
                    let job = JobStatus::parse(&body).expect("valid status");
                    if job.state.is_terminal() {
                        break job;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                };
                let latency = started.elapsed().as_secs_f64();
                results.lock().unwrap().push((i, job, latency));
            });
        }
    });
    let elapsed = wall_start.elapsed().as_secs_f64();

    let mut results = results.into_inner().unwrap();
    results.sort_by_key(|&(i, _, _)| i);
    let succeeded = results
        .iter()
        .filter(|(_, job, _)| job.state == JobState::Done)
        .count();
    assert_eq!(succeeded, JOBS, "every job must land in Done");

    // Deterministic reductions, in job-index order so the f64 sum is
    // bit-stable across runs.
    let tour_length_sum: i64 = results.iter().map(|(_, job, _)| job.length.unwrap()).sum();
    let mut modeled_seconds_total = 0.0;
    for (_, job, _) in &results {
        modeled_seconds_total += job.modeled_seconds.unwrap();
    }

    // Client-observed wall latency percentiles.
    let mut latencies: Vec<f64> = results.iter().map(|&(_, _, l)| l).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize] * 1e3;
    let (p50_ms, p99_ms) = (pct(0.50), pct(0.99));
    let throughput = JOBS as f64 / elapsed;

    // --- Telemetry self-validation -----------------------------------
    let registry = telemetry.registry().expect("telemetry attached");
    let (_, solve_count) = registry
        .histogram_totals("tsp_serve_solve_seconds")
        .expect("latency histogram present");
    assert_eq!(solve_count, JOBS as u64, "histogram counted every job");
    assert_eq!(
        registry.gauge_value("tsp_serve_slot_occupancy"),
        Some(0.0),
        "all slots returned"
    );
    assert_eq!(
        registry.gauge_value("tsp_serve_queue_depth"),
        Some(0.0),
        "queue drained"
    );

    // --- Shutdown: overlap + ledger ----------------------------------
    let (_service, reports) = server.shutdown();
    let overlap = reports.iter().map(|r| r.overlap()).fold(0.0, f64::max);
    for report in &reports {
        println!(
            "device {}: busy {:.4}s wall {:.4}s overlap {:.2}",
            report.device,
            report.busy_seconds,
            report.wall_seconds,
            report.overlap()
        );
    }
    assert!(
        overlap > 0.0,
        "concurrent solves must overlap on the shared streams"
    );

    let memory = prof.memory_report();
    assert!(memory.balanced(), "ledger must balance after shutdown");
    assert_eq!(memory.devices.len(), devices);
    let total_allocs: u64 = memory.devices.iter().map(|d| d.allocs).sum();
    let steady_state_allocs = total_allocs - devices as u64;
    assert_eq!(
        steady_state_allocs, 0,
        "only the arenas may allocate: {JOBS} jobs ran without a single device allocation"
    );

    // --- BENCH_serve.json --------------------------------------------
    let mut wall = Json::obj();
    wall.set("throughput_jobs_per_s", throughput.into());
    wall.set("p50_ms", p50_ms.into());
    wall.set("p99_ms", p99_ms.into());
    wall.set("overlap", overlap.into());
    let mut bench = Json::obj();
    bench.set("jobs", (JOBS as u64).into());
    bench.set("succeeded", (succeeded as u64).into());
    bench.set("rejected", 0u64.into());
    bench.set("devices", (devices as u64).into());
    bench.set("arena_allocs_per_device", 1u64.into());
    bench.set("steady_state_allocs", steady_state_allocs.into());
    bench.set("tour_length_sum", tour_length_sum.into());
    bench.set("modeled_seconds_total", modeled_seconds_total.into());
    bench.set("wall", wall);
    std::fs::write(&out, format!("{bench}\n"))
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
    println!(
        "{JOBS} jobs in {elapsed:.2}s ({throughput:.1} jobs/s), p50 {p50_ms:.1}ms p99 {p99_ms:.1}ms"
    );
    println!("tour_length_sum={tour_length_sum} modeled_seconds_total={modeled_seconds_total:.6}");
    println!("steady_state_allocs={steady_state_allocs} overlap={overlap:.2}");
    println!("SERVE SMOKE OK");
}
