//! Fifty concurrent HTTP solves against a live `tsp-serve` instance.
//!
//! ```text
//! cargo run --release -p tsp-apps --example serve_smoke -- \
//!     [BENCH_serve.json] [BENCH_serve_obs.json] [artifacts_dir]
//! ```
//!
//! Boots a [`ServeServer`] on a loopback port with the default pool
//! (2 devices × 2 streams, one pre-installed arena per device), then
//! fires 50 deterministic solve requests from 50 client threads over
//! real HTTP — each carrying its own W3C `traceparent` — and
//! self-validates the service guarantees:
//!
//! * every job lands in `Done` with a tour, echoing its trace id;
//! * the device-memory ledger holds exactly **one** allocation per
//!   device (the arena) — zero per-request allocations once warm —
//!   and balances after shutdown;
//! * the drained stream schedules show non-zero overlap (concurrent
//!   solves actually shared each device's streams);
//! * the solve-latency histogram counted every job and the occupancy
//!   gauge returned to zero;
//! * every job left a parseable, invariant-clean `request.json` span
//!   whose modeled seconds match the status, and the rolling
//!   `tsp_serve_latency_seconds{stage,quantile}` gauges are non-zero;
//! * `GET /v1/ops` snapshots every job with its lane and trace id;
//! * every client polls over a **keep-alive** connection (one TCP
//!   setup, dozens of requests), and the watchdog — ticked throughout
//!   the healthy run — records **zero** alert transitions;
//! * a second, fault-injected phase (one stalled lane, a storm tenant
//!   blowing its quota) makes exactly the right rules fire
//!   (`LaneStalled`, `QueueAgeSlo`, `TenantStarved`,
//!   `RejectionSpike`), resolve after the drain, and journal to an
//!   `alerts.jsonl` that round-trips through `tsp-inspect alerts`.
//!
//! Writes `BENCH_serve.json` (service throughput) and
//! `BENCH_serve_obs.json` (observability coverage): deterministic
//! totals at the top level (reduced in job-index order, so they are
//! bit-stable run to run) and wall-clock statistics under `"wall"`
//! (gated with a wide tolerance in CI).

use std::collections::BTreeSet;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tsp::prelude::*;
use tsp_apps::inspect;
use tsp_serve::api::{
    AlertsSnapshot, ErrorCode, JobState, JobStatus, OpsSnapshot, SolveRequest, SolveResponse,
};
use tsp_serve::{AlertConfig, RequestSpan, ServeServer, ServiceConfig, SolveService};
use tsp_telemetry::{http_request, AlertState, KeepAliveClient, TraceContext, TRACEPARENT};
use tsp_trace::json::Json;

const JOBS: usize = 50;

/// Quota-bouncing submissions from the storm tenant in the fault
/// phase — each lands a deterministic `quota_exceeded` rejection.
const STORM_REJECTS: usize = 8;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".into());
    let obs_out = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_serve_obs.json".into());
    let artifacts_dir = args.get(2).cloned().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("tsp-serve-smoke-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let _ = std::fs::remove_dir_all(&artifacts_dir);

    let telemetry = Telemetry::attached();
    let prof = Profiler::attached();
    // Manual watchdog ticks (interval 0) keep the alert evaluation
    // cadence under the smoke's control instead of a timer thread's.
    let cfg = ServiceConfig::default()
        .with_artifacts_dir(&artifacts_dir)
        .with_alerts(AlertConfig::default().with_watchdog_interval_ms(0));
    let devices = cfg.devices;
    let service =
        SolveService::start(cfg, telemetry.clone(), prof.clone()).expect("boot the solve service");
    let server = ServeServer::spawn("127.0.0.1:0", service).expect("bind a loopback port");
    let addr = server.addr();
    let svc = server.service().clone();
    println!("tsp-serve listening on {addr} ({devices} devices, artifacts in {artifacts_dir})");

    // --- 50 deterministic jobs, one client thread each ---------------
    // Each job solves its own generated instance (seeded by index), so
    // the served results are reproducible regardless of which lane or
    // completion order the scheduler picks. Each client mints a
    // deterministic trace context and expects it echoed end to end.
    let results: Mutex<Vec<(usize, JobStatus, f64, String)>> = Mutex::new(Vec::new());
    // (requests, connects) summed over every client's keep-alive
    // connection: each thread submits and polls on ONE TCP stream.
    let keepalive: Mutex<(u64, u64)> = Mutex::new((0, 0));
    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..JOBS {
            let results = &results;
            let keepalive = &keepalive;
            scope.spawn(move || {
                let inst = tsp::tsplib::generate(
                    &format!("smoke-{i:02}"),
                    64,
                    tsp::tsplib::Style::Clustered { clusters: 4 },
                    100 + i as u64,
                );
                let req = SolveRequest::tsplib(tsp::tsplib::writer::write(&inst))
                    .with_tenant(format!("client-{}", i % 8))
                    .with_ils_iterations(2 + (i % 3) as u64)
                    .with_seed(i as u64);
                let ctx = TraceContext::generate(&[0x5e_4e_5e_4e, i as u64]);
                let mut client = KeepAliveClient::new(addr);
                let started = Instant::now();
                let (status, _, body) = client
                    .request(
                        "POST",
                        "/v1/solve",
                        "application/json",
                        &req.to_json().to_string(),
                        &[(TRACEPARENT, &ctx.to_header())],
                    )
                    .expect("POST /v1/solve");
                assert_eq!(status, 202, "job {i} rejected: {body}");
                let resp = SolveResponse::parse(&body).expect("valid response");
                assert_eq!(
                    resp.trace_id.as_deref(),
                    Some(ctx.trace_id.as_str()),
                    "job {i}: the submitted trace id is echoed in the response"
                );
                let job_id = resp.job_id;
                let job = loop {
                    let (status, _, body) = client
                        .request("GET", &format!("/v1/jobs/{job_id}"), "", "", &[])
                        .expect("GET /v1/jobs/{id}");
                    assert_eq!(status, 200, "{body}");
                    let job = JobStatus::parse(&body).expect("valid status");
                    if job.state.is_terminal() {
                        break job;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                };
                let latency = started.elapsed().as_secs_f64();
                let mut totals = keepalive.lock().unwrap();
                totals.0 += client.requests();
                totals.1 += client.connects();
                drop(totals);
                results
                    .lock()
                    .unwrap()
                    .push((i, job, latency, ctx.trace_id));
            });
        }
        // Meanwhile the main thread plays watchdog: tick the alert
        // evaluator throughout the healthy run so "zero transitions"
        // below is a claim about the loaded service, not an idle one.
        while results.lock().unwrap().len() < JOBS {
            svc.watchdog_tick();
            std::thread::sleep(Duration::from_millis(5));
        }
    });
    let elapsed = wall_start.elapsed().as_secs_f64();

    let (poll_requests, poll_connects) = *keepalive.lock().unwrap();
    let poll_saved = poll_requests - poll_connects;
    assert!(
        poll_saved >= JOBS as u64,
        "keep-alive must save at least one setup per client ({poll_requests} requests, {poll_connects} connects)"
    );

    let mut results = results.into_inner().unwrap();
    results.sort_by_key(|&(i, _, _, _)| i);
    let succeeded = results
        .iter()
        .filter(|(_, job, _, _)| job.state == JobState::Done)
        .count();
    assert_eq!(succeeded, JOBS, "every job must land in Done");

    // Deterministic reductions, in job-index order so the f64 sum is
    // bit-stable across runs.
    let tour_length_sum: i64 = results
        .iter()
        .map(|(_, job, _, _)| job.length.unwrap())
        .sum();
    let mut modeled_seconds_total = 0.0;
    for (_, job, _, _) in &results {
        modeled_seconds_total += job.modeled_seconds.unwrap();
    }

    // Client-observed wall latency percentiles.
    let mut latencies: Vec<f64> = results.iter().map(|&(_, _, l, _)| l).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize] * 1e3;
    let (p50_ms, p99_ms) = (pct(0.50), pct(0.99));
    let throughput = JOBS as f64 / elapsed;

    // --- Request spans: one parseable request.json per job -----------
    // Deterministic observability reductions, again in job-index order.
    let mut spans_valid = 0usize;
    let mut stage_stamps_total = 0usize;
    let mut traces_propagated = 0usize;
    let mut span_modeled_seconds_total = 0.0;
    let mut e2e_wall_total = 0.0;
    for (i, job, _, trace_id) in &results {
        let path = std::path::Path::new(&artifacts_dir)
            .join(job.job_id.as_str())
            .join("request.json");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("job {i}: {}: {e}", path.display()));
        let span = RequestSpan::parse(&text).expect("request.json parses");
        span.validate()
            .unwrap_or_else(|e| panic!("job {i}: invalid span: {e}"));
        spans_valid += 1;
        stage_stamps_total += span.stages.len();
        traces_propagated += usize::from(span.trace_id == *trace_id);
        span_modeled_seconds_total += span.modeled_seconds().unwrap();
        e2e_wall_total += span.end_to_end_seconds().unwrap();
        assert_eq!(
            span.modeled_seconds(),
            job.modeled_seconds,
            "job {i}: span and status agree on modeled seconds"
        );
    }
    assert_eq!(spans_valid, JOBS, "one valid span per job");
    assert_eq!(
        traces_propagated, JOBS,
        "every span carries its client's trace id"
    );
    assert_eq!(
        span_modeled_seconds_total, modeled_seconds_total,
        "span modeled totals are bit-identical to the statuses'"
    );

    // --- Telemetry self-validation -----------------------------------
    let registry = telemetry.registry().expect("telemetry attached");
    let (_, solve_count) = registry
        .histogram_totals("tsp_serve_solve_seconds")
        .expect("latency histogram present");
    assert_eq!(solve_count, JOBS as u64, "histogram counted every job");
    assert_eq!(
        registry.gauge_value("tsp_serve_slot_occupancy"),
        Some(0.0),
        "all slots returned"
    );
    assert_eq!(
        registry.gauge_value("tsp_serve_queue_depth"),
        Some(0.0),
        "queue drained"
    );
    // The rolling quantile gauges saw all 50 jobs: every stage's p50,
    // p95 and p99 must be present and positive (queue/lease waits can
    // round to ~0 on an idle box, so those only need presence).
    let mut latency_gauges = Json::obj();
    for stage in ["queue_wait", "lease_wait", "solve", "end_to_end"] {
        let mut per_stage = Json::obj();
        for q in ["p50", "p95", "p99"] {
            let value = registry
                .gauge_value_with(
                    "tsp_serve_latency_seconds",
                    &[("stage", stage), ("quantile", q)],
                )
                .unwrap_or_else(|| panic!("gauge tsp_serve_latency_seconds {stage}/{q} missing"));
            if stage == "solve" || stage == "end_to_end" {
                assert!(value > 0.0, "{stage}/{q} must be non-zero, got {value}");
            }
            per_stage.set(q, value.into());
        }
        latency_gauges.set(stage, per_stage);
    }

    // --- /v1/ops snapshot --------------------------------------------
    let (status, _, body) = http_request(addr, "GET", "/v1/ops", "", "").expect("GET /v1/ops");
    assert_eq!(status, 200, "{body}");
    let ops = OpsSnapshot::parse(&body).expect("ops snapshot parses");
    assert_eq!(ops.jobs.len(), JOBS, "ops lists every job");
    assert!(
        ops.jobs
            .iter()
            .all(|j| j.state == JobState::Done && j.trace_id.is_some() && j.device.is_some()),
        "every ops row is terminal with a lane and trace id"
    );
    let e2e_latency = ops
        .latency
        .iter()
        .find(|l| l.stage == "end_to_end")
        .expect("end_to_end latency stage");
    assert_eq!(e2e_latency.count, JOBS as u64, "estimator saw every job");
    assert_eq!(
        ops.lane_health.len() as u64,
        ops.lanes,
        "ops reports every lane's health"
    );
    assert!(
        ops.lane_health.iter().all(|l| !l.busy),
        "all lanes idle after the drain"
    );
    assert_eq!(ops.alerts_firing, 0, "no alert fires on a healthy fleet");

    // --- /v1/alerts: zero false positives, over keep-alive -----------
    // The watchdog ticked ~every 5ms through the whole loaded run; a
    // healthy fleet must not have recorded a single state transition
    // (not even into Pending). The probe below rides one keep-alive
    // connection with a fixed request count, so its saved-setup
    // arithmetic is bit-deterministic for the bench file.
    svc.watchdog_tick();
    svc.watchdog_tick();
    let mut probe = KeepAliveClient::new(addr);
    let mut alerts_body = String::new();
    for k in 0..8 {
        let path = if k % 2 == 0 { "/v1/alerts" } else { "/healthz" };
        let (status, _, body) = probe
            .request("GET", path, "", "", &[])
            .expect("keep-alive probe");
        assert_eq!(status, 200, "{path}: {body}");
        if k % 2 == 0 {
            alerts_body = body;
        }
    }
    assert_eq!(probe.requests(), 8);
    assert_eq!(probe.connects(), 1, "the probe reuses one connection");
    assert_eq!(probe.saved_connects(), 7);
    let alerts = AlertsSnapshot::parse(&alerts_body).expect("alerts snapshot parses");
    assert_eq!(alerts.firing, 0, "healthy fleet: nothing firing");
    assert!(alerts.alerts.is_empty(), "healthy fleet: nothing active");
    assert_eq!(alerts.transitions_total, 0, "healthy fleet: no transitions");
    assert!(alerts.evaluations_total > 0, "the watchdog did evaluate");
    let alert_rules = alerts.rules;
    assert_eq!(alert_rules, 5, "the five built-in fleet rules are loaded");
    assert!(
        svc.alert_transitions().is_empty(),
        "zero false positives across the healthy phase"
    );

    // --- Shutdown: overlap + ledger ----------------------------------
    let (_service, reports) = server.shutdown();
    let overlap = reports.iter().map(|r| r.overlap()).fold(0.0, f64::max);
    for report in &reports {
        println!(
            "device {}: busy {:.4}s wall {:.4}s overlap {:.2}",
            report.device,
            report.busy_seconds,
            report.wall_seconds,
            report.overlap()
        );
    }
    assert!(
        overlap > 0.0,
        "concurrent solves must overlap on the shared streams"
    );

    let memory = prof.memory_report();
    assert!(memory.balanced(), "ledger must balance after shutdown");
    assert_eq!(memory.devices.len(), devices);
    let total_allocs: u64 = memory.devices.iter().map(|d| d.allocs).sum();
    let steady_state_allocs = total_allocs - devices as u64;
    assert_eq!(
        steady_state_allocs, 0,
        "only the arenas may allocate: {JOBS} jobs ran without a single device allocation"
    );

    // --- Fault phase: make the right rules fire ----------------------
    let fault = fault_phase(&artifacts_dir);
    println!(
        "fault phase: {} rules fired, {} rejections, {} transitions in {:.2}s",
        fault.rules_fired.len(),
        fault.rejections,
        fault.transitions,
        fault.wall_seconds
    );

    // --- BENCH_serve.json --------------------------------------------
    let mut wall = Json::obj();
    wall.set("throughput_jobs_per_s", throughput.into());
    wall.set("p50_ms", p50_ms.into());
    wall.set("p99_ms", p99_ms.into());
    wall.set("overlap", overlap.into());
    let mut bench = Json::obj();
    bench.set("jobs", (JOBS as u64).into());
    bench.set("succeeded", (succeeded as u64).into());
    bench.set("rejected", 0u64.into());
    bench.set("devices", (devices as u64).into());
    bench.set("arena_allocs_per_device", 1u64.into());
    bench.set("steady_state_allocs", steady_state_allocs.into());
    bench.set("tour_length_sum", tour_length_sum.into());
    bench.set("modeled_seconds_total", modeled_seconds_total.into());
    bench.set("wall", wall);
    std::fs::write(&out, format!("{bench}\n"))
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");

    // --- BENCH_serve_obs.json ----------------------------------------
    // Deterministic coverage totals at the top (zero tolerance in CI);
    // wall-clock latency summaries under "wall".
    let mut obs_wall = Json::obj();
    obs_wall.set("e2e_wall_total_s", e2e_wall_total.into());
    obs_wall.set("latency_gauges", latency_gauges);
    obs_wall.set("poll_requests", (poll_requests as f64).into());
    obs_wall.set("poll_saved_connects", (poll_saved as f64).into());
    obs_wall.set("fault_wall_s", fault.wall_seconds.into());
    obs_wall.set("fault_transitions", (fault.transitions as f64).into());
    let mut obs = Json::obj();
    obs.set("jobs", (JOBS as u64).into());
    obs.set("spans_valid", (spans_valid as u64).into());
    obs.set("stage_stamps_total", (stage_stamps_total as u64).into());
    obs.set("traces_propagated", (traces_propagated as u64).into());
    obs.set("rejections", 0u64.into());
    obs.set(
        "span_modeled_seconds_total",
        span_modeled_seconds_total.into(),
    );
    obs.set("alert_rules", alert_rules.into());
    obs.set("healthy_alert_transitions", 0u64.into());
    obs.set("keepalive_probe_requests", 8u64.into());
    obs.set("keepalive_probe_saved_connects", 7u64.into());
    obs.set("fault_rules_fired", (fault.rules_fired.len() as u64).into());
    obs.set("fault_rejections", (fault.rejections as u64).into());
    obs.set("wall", obs_wall);
    std::fs::write(&obs_out, format!("{obs}\n"))
        .unwrap_or_else(|e| panic!("cannot write {obs_out}: {e}"));
    println!("wrote {obs_out}");

    println!(
        "{JOBS} jobs in {elapsed:.2}s ({throughput:.1} jobs/s), p50 {p50_ms:.1}ms p99 {p99_ms:.1}ms"
    );
    println!("tour_length_sum={tour_length_sum} modeled_seconds_total={modeled_seconds_total:.6}");
    println!("steady_state_allocs={steady_state_allocs} overlap={overlap:.2}");
    println!("spans_valid={spans_valid} traces_propagated={traces_propagated}");
    println!(
        "keepalive: {poll_requests} polls over {poll_connects} connections (saved {poll_saved})"
    );
    println!("SERVE SMOKE OK");
}

/// What the fault phase proved, for the bench file.
struct FaultOutcome {
    rules_fired: BTreeSet<String>,
    rejections: usize,
    transitions: usize,
    wall_seconds: f64,
}

/// Fault-injected phase: a fresh 1×1 service where one tenant's job
/// holds the only lane without heartbeating, two bystander tenants
/// age in the queue behind it, and a storm tenant hammers past its
/// quota — then assert exactly the right rules fire, resolve after
/// the drain, and journal to a parseable `alerts.jsonl`.
fn fault_phase(artifacts_dir: &str) -> FaultOutcome {
    let dir = format!("{artifacts_dir}-fault");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServiceConfig::default()
        .with_devices(1)
        .with_streams(1)
        .with_per_tenant_quota(2)
        .with_queue_capacity(16)
        .with_artifacts_dir(&dir)
        // Hold the lane ~600ms without heartbeating right after the
        // Solving stamp; the solve itself is untouched (bit-inert).
        .with_injected_stall("stall-tenant", 600)
        .with_alerts(
            AlertConfig::default()
                .with_watchdog_interval_ms(0)
                .with_stall_seconds(0.05)
                .with_queue_age_slo_seconds(0.08)
                .with_starvation_for_seconds(0.0)
                .with_rejection_burn(0.05, 0.3, 0.1, 1.0),
        );
    let service = SolveService::start(cfg, Telemetry::attached(), Profiler::attached())
        .expect("boot the fault-phase service");
    let wall = Instant::now();
    let submit = |name: &str, seed: u64, tenant: &str| {
        let inst = tsp::tsplib::generate(name, 48, tsp::tsplib::Style::Uniform, seed);
        service.submit(
            SolveRequest::tsplib(tsp::tsplib::writer::write(&inst))
                .with_tenant(tenant)
                .with_seed(seed),
        )
    };

    // Baseline evaluation before any fault, so the burn-rate deltas
    // measured by later ticks are visible against a clean sample.
    service.watchdog_tick();

    // The stalled job grabs the only lane; everyone else queues.
    let mut ids = vec![submit("fault-stall", 1, "stall-tenant").unwrap().job_id];
    ids.push(submit("fault-q0", 2, "patient").unwrap().job_id);
    ids.push(submit("fault-q1", 3, "bystander").unwrap().job_id);
    ids.push(submit("fault-s0", 4, "storm").unwrap().job_id);
    ids.push(submit("fault-s1", 5, "storm").unwrap().job_id);

    // Storm: the tenant is now at quota (2 live) and stays there while
    // the lane is stalled, so every extra submission bounces — and the
    // bounces interleave with ticks so the burn-rate windows see them.
    let mut rejections = 0;
    for k in 0..STORM_REJECTS {
        let err = submit("fault-burst", 6 + k as u64, "storm").unwrap_err();
        assert_eq!(
            err.code,
            ErrorCode::QuotaExceeded,
            "storm submission {k} must bounce off the quota"
        );
        rejections += 1;
        service.watchdog_tick();
        std::thread::sleep(Duration::from_millis(15));
    }

    // Keep ticking until every expected rule has fired, all jobs are
    // terminal, and everything has resolved back to quiet.
    let expected: BTreeSet<String> = [
        "LaneStalled",
        "QueueAgeSlo",
        "TenantStarved",
        "RejectionSpike",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut fired: BTreeSet<String> = BTreeSet::new();
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        service.watchdog_tick();
        for tr in service.alert_transitions() {
            if tr.to == AlertState::Firing {
                fired.insert(tr.rule);
            }
        }
        let drained = ids
            .iter()
            .all(|id| service.status(id).unwrap().state.is_terminal());
        if drained && fired.len() >= expected.len() && service.alerts_snapshot().firing == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fault phase did not converge; fired so far: {fired:?}"
        );
        std::thread::sleep(Duration::from_millis(15));
    }
    assert_eq!(fired, expected, "exactly the injected faults fire");

    // Fired rules resolved once the fault cleared: the journal holds a
    // Firing and a Firing->Resolved edge for the stall and the queue.
    let transitions = service.alert_transitions();
    for rule in ["LaneStalled", "QueueAgeSlo"] {
        assert!(
            transitions
                .iter()
                .any(|t| t.rule == rule && t.to == AlertState::Firing),
            "{rule} never fired"
        );
        assert!(
            transitions.iter().any(|t| t.rule == rule
                && t.from == AlertState::Firing
                && t.to == AlertState::Resolved),
            "{rule} never resolved"
        );
    }

    // alerts.jsonl round-trips: the on-disk journal is the in-memory
    // transition log, line for line — and tsp-inspect renders it.
    let journal = inspect::load_alert_transitions(std::path::Path::new(&dir))
        .expect("alerts.jsonl parses back");
    assert_eq!(journal.len(), transitions.len(), "journal is complete");
    for (a, b) in journal.iter().zip(&transitions) {
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
    let timeline = inspect::render_alert_timeline(&journal);
    assert!(timeline.contains("LaneStalled"), "timeline names the stall");
    assert!(timeline.contains("firing intervals:"));
    print!("{timeline}");

    service.shutdown();
    FaultOutcome {
        rules_fired: fired,
        rejections,
        transitions: transitions.len(),
        wall_seconds: wall.elapsed().as_secs_f64(),
    }
}
