//! Fifty concurrent HTTP solves against a live `tsp-serve` instance.
//!
//! ```text
//! cargo run --release -p tsp-apps --example serve_smoke -- \
//!     [BENCH_serve.json] [BENCH_serve_obs.json] [artifacts_dir]
//! ```
//!
//! Boots a [`ServeServer`] on a loopback port with the default pool
//! (2 devices × 2 streams, one pre-installed arena per device), then
//! fires 50 deterministic solve requests from 50 client threads over
//! real HTTP — each carrying its own W3C `traceparent` — and
//! self-validates the service guarantees:
//!
//! * every job lands in `Done` with a tour, echoing its trace id;
//! * the device-memory ledger holds exactly **one** allocation per
//!   device (the arena) — zero per-request allocations once warm —
//!   and balances after shutdown;
//! * the drained stream schedules show non-zero overlap (concurrent
//!   solves actually shared each device's streams);
//! * the solve-latency histogram counted every job and the occupancy
//!   gauge returned to zero;
//! * every job left a parseable, invariant-clean `request.json` span
//!   whose modeled seconds match the status, and the rolling
//!   `tsp_serve_latency_seconds{stage,quantile}` gauges are non-zero;
//! * `GET /v1/ops` snapshots every job with its lane and trace id.
//!
//! Writes `BENCH_serve.json` (service throughput) and
//! `BENCH_serve_obs.json` (observability coverage): deterministic
//! totals at the top level (reduced in job-index order, so they are
//! bit-stable run to run) and wall-clock statistics under `"wall"`
//! (gated with a wide tolerance in CI).

use std::sync::Mutex;
use std::time::{Duration, Instant};
use tsp::prelude::*;
use tsp_serve::api::{JobState, JobStatus, OpsSnapshot, SolveRequest, SolveResponse};
use tsp_serve::{RequestSpan, ServeServer, ServiceConfig, SolveService};
use tsp_telemetry::{http_request, http_request_with_headers, TraceContext, TRACEPARENT};
use tsp_trace::json::Json;

const JOBS: usize = 50;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".into());
    let obs_out = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_serve_obs.json".into());
    let artifacts_dir = args.get(2).cloned().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("tsp-serve-smoke-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let _ = std::fs::remove_dir_all(&artifacts_dir);

    let telemetry = Telemetry::attached();
    let prof = Profiler::attached();
    let cfg = ServiceConfig::default().with_artifacts_dir(&artifacts_dir);
    let devices = cfg.devices;
    let service =
        SolveService::start(cfg, telemetry.clone(), prof.clone()).expect("boot the solve service");
    let server = ServeServer::spawn("127.0.0.1:0", service).expect("bind a loopback port");
    let addr = server.addr();
    println!("tsp-serve listening on {addr} ({devices} devices, artifacts in {artifacts_dir})");

    // --- 50 deterministic jobs, one client thread each ---------------
    // Each job solves its own generated instance (seeded by index), so
    // the served results are reproducible regardless of which lane or
    // completion order the scheduler picks. Each client mints a
    // deterministic trace context and expects it echoed end to end.
    let results: Mutex<Vec<(usize, JobStatus, f64, String)>> = Mutex::new(Vec::new());
    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..JOBS {
            let results = &results;
            scope.spawn(move || {
                let inst = tsp::tsplib::generate(
                    &format!("smoke-{i:02}"),
                    64,
                    tsp::tsplib::Style::Clustered { clusters: 4 },
                    100 + i as u64,
                );
                let req = SolveRequest::tsplib(tsp::tsplib::writer::write(&inst))
                    .with_tenant(format!("client-{}", i % 8))
                    .with_ils_iterations(2 + (i % 3) as u64)
                    .with_seed(i as u64);
                let ctx = TraceContext::generate(&[0x5e_4e_5e_4e, i as u64]);
                let started = Instant::now();
                let (status, _, body) = http_request_with_headers(
                    addr,
                    "POST",
                    "/v1/solve",
                    "application/json",
                    &req.to_json().to_string(),
                    &[(TRACEPARENT, &ctx.to_header())],
                )
                .expect("POST /v1/solve");
                assert_eq!(status, 202, "job {i} rejected: {body}");
                let resp = SolveResponse::parse(&body).expect("valid response");
                assert_eq!(
                    resp.trace_id.as_deref(),
                    Some(ctx.trace_id.as_str()),
                    "job {i}: the submitted trace id is echoed in the response"
                );
                let job_id = resp.job_id;
                let job = loop {
                    let (status, _, body) =
                        http_request(addr, "GET", &format!("/v1/jobs/{job_id}"), "", "")
                            .expect("GET /v1/jobs/{id}");
                    assert_eq!(status, 200, "{body}");
                    let job = JobStatus::parse(&body).expect("valid status");
                    if job.state.is_terminal() {
                        break job;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                };
                let latency = started.elapsed().as_secs_f64();
                results
                    .lock()
                    .unwrap()
                    .push((i, job, latency, ctx.trace_id));
            });
        }
    });
    let elapsed = wall_start.elapsed().as_secs_f64();

    let mut results = results.into_inner().unwrap();
    results.sort_by_key(|&(i, _, _, _)| i);
    let succeeded = results
        .iter()
        .filter(|(_, job, _, _)| job.state == JobState::Done)
        .count();
    assert_eq!(succeeded, JOBS, "every job must land in Done");

    // Deterministic reductions, in job-index order so the f64 sum is
    // bit-stable across runs.
    let tour_length_sum: i64 = results
        .iter()
        .map(|(_, job, _, _)| job.length.unwrap())
        .sum();
    let mut modeled_seconds_total = 0.0;
    for (_, job, _, _) in &results {
        modeled_seconds_total += job.modeled_seconds.unwrap();
    }

    // Client-observed wall latency percentiles.
    let mut latencies: Vec<f64> = results.iter().map(|&(_, _, l, _)| l).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize] * 1e3;
    let (p50_ms, p99_ms) = (pct(0.50), pct(0.99));
    let throughput = JOBS as f64 / elapsed;

    // --- Request spans: one parseable request.json per job -----------
    // Deterministic observability reductions, again in job-index order.
    let mut spans_valid = 0usize;
    let mut stage_stamps_total = 0usize;
    let mut traces_propagated = 0usize;
    let mut span_modeled_seconds_total = 0.0;
    let mut e2e_wall_total = 0.0;
    for (i, job, _, trace_id) in &results {
        let path = std::path::Path::new(&artifacts_dir)
            .join(job.job_id.as_str())
            .join("request.json");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("job {i}: {}: {e}", path.display()));
        let span = RequestSpan::parse(&text).expect("request.json parses");
        span.validate()
            .unwrap_or_else(|e| panic!("job {i}: invalid span: {e}"));
        spans_valid += 1;
        stage_stamps_total += span.stages.len();
        traces_propagated += usize::from(span.trace_id == *trace_id);
        span_modeled_seconds_total += span.modeled_seconds().unwrap();
        e2e_wall_total += span.end_to_end_seconds().unwrap();
        assert_eq!(
            span.modeled_seconds(),
            job.modeled_seconds,
            "job {i}: span and status agree on modeled seconds"
        );
    }
    assert_eq!(spans_valid, JOBS, "one valid span per job");
    assert_eq!(
        traces_propagated, JOBS,
        "every span carries its client's trace id"
    );
    assert_eq!(
        span_modeled_seconds_total, modeled_seconds_total,
        "span modeled totals are bit-identical to the statuses'"
    );

    // --- Telemetry self-validation -----------------------------------
    let registry = telemetry.registry().expect("telemetry attached");
    let (_, solve_count) = registry
        .histogram_totals("tsp_serve_solve_seconds")
        .expect("latency histogram present");
    assert_eq!(solve_count, JOBS as u64, "histogram counted every job");
    assert_eq!(
        registry.gauge_value("tsp_serve_slot_occupancy"),
        Some(0.0),
        "all slots returned"
    );
    assert_eq!(
        registry.gauge_value("tsp_serve_queue_depth"),
        Some(0.0),
        "queue drained"
    );
    // The rolling quantile gauges saw all 50 jobs: every stage's p50,
    // p95 and p99 must be present and positive (queue/lease waits can
    // round to ~0 on an idle box, so those only need presence).
    let mut latency_gauges = Json::obj();
    for stage in ["queue_wait", "lease_wait", "solve", "end_to_end"] {
        let mut per_stage = Json::obj();
        for q in ["p50", "p95", "p99"] {
            let value = registry
                .gauge_value_with(
                    "tsp_serve_latency_seconds",
                    &[("stage", stage), ("quantile", q)],
                )
                .unwrap_or_else(|| panic!("gauge tsp_serve_latency_seconds {stage}/{q} missing"));
            if stage == "solve" || stage == "end_to_end" {
                assert!(value > 0.0, "{stage}/{q} must be non-zero, got {value}");
            }
            per_stage.set(q, value.into());
        }
        latency_gauges.set(stage, per_stage);
    }

    // --- /v1/ops snapshot --------------------------------------------
    let (status, _, body) = http_request(addr, "GET", "/v1/ops", "", "").expect("GET /v1/ops");
    assert_eq!(status, 200, "{body}");
    let ops = OpsSnapshot::parse(&body).expect("ops snapshot parses");
    assert_eq!(ops.jobs.len(), JOBS, "ops lists every job");
    assert!(
        ops.jobs
            .iter()
            .all(|j| j.state == JobState::Done && j.trace_id.is_some() && j.device.is_some()),
        "every ops row is terminal with a lane and trace id"
    );
    let e2e_latency = ops
        .latency
        .iter()
        .find(|l| l.stage == "end_to_end")
        .expect("end_to_end latency stage");
    assert_eq!(e2e_latency.count, JOBS as u64, "estimator saw every job");

    // --- Shutdown: overlap + ledger ----------------------------------
    let (_service, reports) = server.shutdown();
    let overlap = reports.iter().map(|r| r.overlap()).fold(0.0, f64::max);
    for report in &reports {
        println!(
            "device {}: busy {:.4}s wall {:.4}s overlap {:.2}",
            report.device,
            report.busy_seconds,
            report.wall_seconds,
            report.overlap()
        );
    }
    assert!(
        overlap > 0.0,
        "concurrent solves must overlap on the shared streams"
    );

    let memory = prof.memory_report();
    assert!(memory.balanced(), "ledger must balance after shutdown");
    assert_eq!(memory.devices.len(), devices);
    let total_allocs: u64 = memory.devices.iter().map(|d| d.allocs).sum();
    let steady_state_allocs = total_allocs - devices as u64;
    assert_eq!(
        steady_state_allocs, 0,
        "only the arenas may allocate: {JOBS} jobs ran without a single device allocation"
    );

    // --- BENCH_serve.json --------------------------------------------
    let mut wall = Json::obj();
    wall.set("throughput_jobs_per_s", throughput.into());
    wall.set("p50_ms", p50_ms.into());
    wall.set("p99_ms", p99_ms.into());
    wall.set("overlap", overlap.into());
    let mut bench = Json::obj();
    bench.set("jobs", (JOBS as u64).into());
    bench.set("succeeded", (succeeded as u64).into());
    bench.set("rejected", 0u64.into());
    bench.set("devices", (devices as u64).into());
    bench.set("arena_allocs_per_device", 1u64.into());
    bench.set("steady_state_allocs", steady_state_allocs.into());
    bench.set("tour_length_sum", tour_length_sum.into());
    bench.set("modeled_seconds_total", modeled_seconds_total.into());
    bench.set("wall", wall);
    std::fs::write(&out, format!("{bench}\n"))
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");

    // --- BENCH_serve_obs.json ----------------------------------------
    // Deterministic coverage totals at the top (zero tolerance in CI);
    // wall-clock latency summaries under "wall".
    let mut obs_wall = Json::obj();
    obs_wall.set("e2e_wall_total_s", e2e_wall_total.into());
    obs_wall.set("latency_gauges", latency_gauges);
    let mut obs = Json::obj();
    obs.set("jobs", (JOBS as u64).into());
    obs.set("spans_valid", (spans_valid as u64).into());
    obs.set("stage_stamps_total", (stage_stamps_total as u64).into());
    obs.set("traces_propagated", (traces_propagated as u64).into());
    obs.set("rejections", 0u64.into());
    obs.set(
        "span_modeled_seconds_total",
        span_modeled_seconds_total.into(),
    );
    obs.set("wall", obs_wall);
    std::fs::write(&obs_out, format!("{obs}\n"))
        .unwrap_or_else(|e| panic!("cannot write {obs_out}: {e}"));
    println!("wrote {obs_out}");

    println!(
        "{JOBS} jobs in {elapsed:.2}s ({throughput:.1} jobs/s), p50 {p50_ms:.1}ms p99 {p99_ms:.1}ms"
    );
    println!("tour_length_sum={tour_length_sum} modeled_seconds_total={modeled_seconds_total:.6}");
    println!("steady_state_allocs={steady_state_allocs} overlap={overlap:.2}");
    println!("spans_valid={spans_valid} traces_propagated={traces_propagated}");
    println!("SERVE SMOKE OK");
}
