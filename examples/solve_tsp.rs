//! A small TSP solver CLI over the library: load a TSPLIB file (or a
//! catalog stand-in), construct, run ILS with the chosen 2-opt engine.
//!
//! ```text
//! cargo run --release -p tsp-apps --example solve_tsp -- pr2392 --engine gpu --iters 20
//! cargo run --release -p tsp-apps --example solve_tsp -- path/to/file.tsp --engine cpu
//! ```
//!
//! Arguments:
//! * `<instance>` — a `.tsp` file path, or a paper instance name from
//!   the catalog (`berlin52` … `lrb744710`), or `rand:<n>`;
//! * `--engine gpu|cpu|seq` — which 2-opt engine drives the ILS
//!   (default `gpu`);
//! * `--iters <k>` — ILS perturbation iterations (default 10);
//! * `--construction mf|nn|hilbert|random` — initial tour (default `mf`);
//! * `--out <file.tour>` — export the best tour as a TSPLIB tour file.

use gpu_sim::spec;
use tsp_2opt::{CpuParallelTwoOpt, GpuTwoOpt, SequentialTwoOpt, TwoOptEngine};
use tsp_construction::{multiple_fragment, nearest_neighbor, space_filling};
use tsp_core::{Instance, Tour};
use tsp_ils::{iterated_local_search, IlsOptions};

fn load_instance(arg: &str) -> Instance {
    if let Some(n) = arg.strip_prefix("rand:") {
        let n: usize = n.parse().expect("rand:<n> needs an integer");
        return tsp_tsplib::generate(&format!("rand{n}"), n, tsp_tsplib::Style::Uniform, 7);
    }
    if arg.ends_with(".tsp") {
        return tsp_tsplib::load(arg).unwrap_or_else(|e| panic!("cannot load {arg}: {e}"));
    }
    match tsp_tsplib::catalog::by_name(arg) {
        Some(entry) => entry.instance(),
        None => panic!("unknown instance `{arg}` (not a .tsp path, not in the catalog)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: solve_tsp <instance> [--engine gpu|cpu|seq] [--iters k] [--construction mf|nn|hilbert|random]");
        std::process::exit(2);
    }
    let mut engine_kind = "gpu".to_string();
    let mut construction = "mf".to_string();
    let mut iters: u64 = 10;
    let mut instance_arg = String::new();
    let mut out_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => engine_kind = it.next().expect("--engine needs a value"),
            "--iters" => {
                iters = it
                    .next()
                    .expect("--iters needs a value")
                    .parse()
                    .expect("--iters needs an integer")
            }
            "--construction" => construction = it.next().expect("--construction needs a value"),
            "--out" => out_path = Some(it.next().expect("--out needs a path")),
            other => instance_arg = other.to_string(),
        }
    }

    let inst = load_instance(&instance_arg);
    println!("instance: {} ({} cities)", inst.name(), inst.len());

    let initial = match construction.as_str() {
        "mf" => multiple_fragment(&inst),
        "nn" => nearest_neighbor(&inst, 0),
        "hilbert" => space_filling(&inst),
        "random" => {
            let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(7);
            Tour::random(inst.len(), &mut rng)
        }
        other => panic!("unknown construction `{other}`"),
    };
    println!(
        "initial tour ({construction}): length {}",
        initial.length(&inst)
    );

    let mut engine: Box<dyn TwoOptEngine> = match engine_kind.as_str() {
        "gpu" => Box::new(GpuTwoOpt::new(spec::gtx_680_cuda())),
        "cpu" => Box::new(CpuParallelTwoOpt::new()),
        "seq" => Box::new(SequentialTwoOpt::new()),
        other => panic!("unknown engine `{other}`"),
    };
    println!("engine: {}", engine.name());

    let out = iterated_local_search(
        engine.as_mut(),
        &inst,
        initial,
        IlsOptions::new().with_max_iterations(iters),
    )
    .expect("ILS runs on coordinate instances");

    println!("\nconvergence trace (improvements only):");
    for p in &out.trace {
        println!(
            "  iter {:>4}  modeled {:>10.3} ms  length {}",
            p.iteration,
            p.modeled_seconds * 1e3,
            p.best_length
        );
    }
    println!(
        "\nbest length: {}  ({} ILS iterations, {} accepted)",
        out.best_length, out.iterations, out.accepted
    );
    println!(
        "modeled device time: {:.3} s | host wall time: {:.3} s",
        out.profile.modeled_seconds(),
        out.host_seconds
    );

    if let Some(path) = out_path {
        let text = tsp_tsplib::write_tour(inst.name(), &out.best);
        std::fs::write(&path, text).expect("cannot write tour file");
        println!("tour written to {path}");
    }
}
