//! Run a traced, sharded GPU ILS through the `tsp::Solver` facade and
//! write the Chrome-trace JSON — the CI smoke proving the end-to-end
//! pipeline (facade → device pool → stream scheduler → trace exporter)
//! produces a valid, non-empty trace with per-device×stream tracks.
//! The run also attaches live telemetry, serves it on an embedded
//! `/metrics` endpoint, scrapes itself once over HTTP, and validates
//! the Prometheus payload — the telemetry half of the CI smoke.
//!
//! ```text
//! cargo run --release -p tsp-apps --example traced_ils -- [n] [iterations] [out.trace.json]
//! ```
//!
//! Load the output in <https://ui.perfetto.dev> (or `chrome://tracing`):
//! kernels and PCIe transfers appear as duration slices on their own
//! tracks, sweeps and ILS iterations as nested spans, the best tour
//! length as a counter track, and each simulated device contributes one
//! "device N (streams)" process with one track per stream showing the
//! overlapped schedule.

use tsp::prelude::*;
use tsp_trace::{chrome_trace, json, MetricsSnapshot, RooflineReport};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(512);
    let iterations: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let out = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "ils.trace.json".into());

    let inst = tsp::tsplib::generate(
        "traced-ils",
        n,
        tsp::tsplib::Style::Clustered { clusters: 16 },
        0x2013,
    );
    let recorder = Recorder::enabled();
    let solution = Solver::builder()
        .construction(Construction::Random(0x2013))
        .ils(
            IlsOptions::default()
                .with_max_iterations(iterations)
                .with_seed(0x2013),
        )
        .devices(2)
        .streams(2)
        .restarts(4)
        .recorder(recorder.clone())
        .telemetry(TelemetryOptions::attached())
        .build()
        .run(&inst)
        .expect("generated instances are coordinate-based");
    println!(
        "best length after {iterations} iterations x {} chains on n = {n}: {}",
        solution.chains, solution.length
    );
    println!(
        "modeled wall {:.3} ms over {} devices, stream overlap {:.1}%",
        solution.wall_seconds() * 1e3,
        solution.reports.len(),
        solution.overlap() * 100.0
    );

    // Self-check before writing: the document must re-parse, carry a
    // non-empty traceEvents array whose entries all have ph and pid,
    // and include at least one per-stream track (pid >= 10).
    let events = recorder.events();
    let text = chrome_trace(&events);
    let parsed = json::parse(&text).expect("exporter emits valid JSON");
    let trace_events = parsed
        .get("traceEvents")
        .and_then(json::Json::as_array)
        .expect("traceEvents array");
    assert!(!trace_events.is_empty(), "trace must be non-empty");
    let mut stream_tracks = 0usize;
    for e in trace_events {
        assert!(
            e.get("ph").is_some() && e.get("pid").is_some(),
            "malformed event"
        );
        if e.get("pid").and_then(json::Json::as_f64).unwrap_or(0.0) >= 10.0 {
            stream_tracks += 1;
        }
    }
    assert!(stream_tracks > 0, "no per-stream events in the trace");
    std::fs::write(&out, &text).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "wrote {out} ({} events, {} on stream tracks; load in https://ui.perfetto.dev)",
        trace_events.len(),
        stream_tracks
    );

    let snapshot = MetricsSnapshot::from_events(&events);
    print!("\n{}", snapshot.to_text());
    if let Some(roofline) = RooflineReport::from_events(&events) {
        print!("\n{}", roofline.to_text());
    }

    // Telemetry smoke: serve the run's registry on a loopback port,
    // scrape it once over real HTTP, and validate the payload as
    // Prometheus text format 0.0.4.
    let server = MetricsServer::spawn(solution.telemetry.clone(), "127.0.0.1:0")
        .expect("bind a loopback metrics port");
    let (status, body) = tsp::telemetry::http_get(server.addr(), "/metrics").expect("self-scrape");
    assert_eq!(status, 200, "metrics endpoint must answer 200");
    let families = tsp::telemetry::parse_text(&body).expect("payload is valid Prometheus text");
    for required in [
        "tsp_gpu_kernel_launches_total",
        "tsp_pool_lane_jobs_total",
        "tsp_search_sweeps_total",
        "tsp_ils_iterations_total",
        "tsp_ils_best_length",
    ] {
        assert!(
            families.iter().any(|f| f.name == required),
            "scrape is missing {required}"
        );
    }
    println!(
        "telemetry: scraped {} metric families from http://{}/metrics",
        families.len(),
        server.addr()
    );
    server.shutdown();
}
