//! Run a traced GPU ILS chain and write the Chrome-trace JSON — the CI
//! smoke proving the end-to-end tracing pipeline produces a valid,
//! non-empty trace from a real run.
//!
//! ```text
//! cargo run --release -p tsp-apps --example traced_ils -- [n] [iterations] [out.trace.json]
//! ```
//!
//! Load the output in <https://ui.perfetto.dev> (or `chrome://tracing`):
//! kernels and PCIe transfers appear as duration slices on their own
//! tracks, sweeps and ILS iterations as nested spans, and the best tour
//! length as a counter track.

use tsp_trace::{chrome_trace, json, MetricsSnapshot, Recorder, RooflineReport};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(512);
    let iterations: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let out = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "ils.trace.json".into());

    let recorder = Recorder::enabled();
    let outcome = tsp_bench::trace::traced_ils(n, iterations, 0x2013, &recorder);
    println!(
        "best length after {iterations} iterations on n = {n}: {}",
        outcome.best_length
    );

    // Self-check before writing: the document must re-parse and carry a
    // non-empty traceEvents array whose entries all have ph and pid.
    let events = recorder.events();
    let text = chrome_trace(&events);
    let parsed = json::parse(&text).expect("exporter emits valid JSON");
    let trace_events = parsed
        .get("traceEvents")
        .and_then(json::Json::as_array)
        .expect("traceEvents array");
    assert!(!trace_events.is_empty(), "trace must be non-empty");
    for e in trace_events {
        assert!(
            e.get("ph").is_some() && e.get("pid").is_some(),
            "malformed event"
        );
    }
    std::fs::write(&out, &text).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "wrote {out} ({} events; load in https://ui.perfetto.dev)",
        trace_events.len()
    );

    let snapshot = MetricsSnapshot::from_events(&events);
    print!("\n{}", snapshot.to_text());
    if let Some(roofline) = RooflineReport::from_events(&events) {
        print!("\n{}", roofline.to_text());
    }
}
