//! Offline stand-in for `criterion` (the API subset this workspace's
//! benches use). Statistical machinery is out of scope: each benchmark
//! runs its closure `sample_size` times and prints the mean wall-clock
//! time, which is enough to compare hot paths by hand and keeps the
//! `cargo bench` targets compiling and runnable without the registry.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.criterion.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let mean = if bencher.iters > 0 {
        bencher.total / bencher.iters as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {label:<48} {mean:>12.2?}/iter ({} iters)",
        bencher.iters
    );
}

pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

pub trait IntoLabel {
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures_the_requested_number_of_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("f", 42), &7u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn bench_function_and_black_box() {
        let mut c = Criterion::default().sample_size(2);
        let mut calls = 0;
        c.bench_function("direct", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 2);
        assert_eq!(black_box(5), 5);
    }
}
