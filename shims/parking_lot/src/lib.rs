//! Offline stand-in for `parking_lot` (the subset this workspace uses):
//! a [`Mutex`] whose `lock()` is infallible. Built on `std::sync::Mutex`,
//! recovering from poisoning the way parking_lot behaves (it has no
//! poisoning at all).

use std::fmt;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5u64);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_recovers_after_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        // parking_lot semantics: no poisoning observable by callers.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn default_and_debug() {
        let m: Mutex<Vec<u8>> = Mutex::default();
        assert!(m.lock().is_empty());
        let _ = format!("{m:?}");
    }
}
