//! Offline stand-in for `proptest` (the API subset this workspace uses).
//!
//! Implements deterministic random-input testing: the `proptest!` macro,
//! `Strategy` with `prop_map` / `prop_flat_map` / `prop_perturb`, range
//! and tuple strategies, `Just`, `any::<T>()`, `collection::vec`, a
//! printable-string strategy for `&str` patterns, and the assertion
//! macros. **No shrinking** — a failing case reports its case index and
//! seed instead of a minimized input; cases are reproducible because the
//! per-test RNG stream is seeded from the test's name.

pub mod test_runner {
    /// The RNG handed to strategies and `prop_perturb` closures. A type
    /// alias so the caller's `use rand::Rng` applies to it directly.
    pub type TestRng = rand::rngs::SmallRng;

    /// Why a strategy failed to produce a tree (never happens here; kept
    /// for API compatibility with `new_tree(..).unwrap()`).
    #[derive(Debug, Clone)]
    pub struct Reason(pub String);

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Drives strategies outside the `proptest!` macro.
    pub struct TestRunner {
        rng: TestRng,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            use rand::SeedableRng;
            TestRunner {
                rng: TestRng::seed_from_u64(0x70_72_6F_70_74_65_73_74),
            }
        }
    }

    impl TestRunner {
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

pub mod strategy {
    use crate::test_runner::{Reason, TestRng, TestRunner};

    /// A generator of test values. Unlike upstream proptest there is no
    /// shrinking; `generate` is the whole contract.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        fn prop_perturb<U, F: Fn(Self::Value, TestRng) -> U>(self, f: F) -> Perturb<Self, F>
        where
            Self: Sized,
        {
            Perturb { inner: self, f }
        }

        fn new_tree(&self, runner: &mut TestRunner) -> Result<SampledTree<Self::Value>, Reason>
        where
            Self::Value: Clone,
        {
            Ok(SampledTree(self.generate(runner.rng())))
        }
    }

    /// A sampled value pretending to be a shrink tree.
    pub trait ValueTree {
        type Value;
        fn current(&self) -> Self::Value;
    }

    pub struct SampledTree<T>(T);

    impl<T: Clone> ValueTree for SampledTree<T> {
        type Value = T;
        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Perturb<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value, TestRng) -> U> Strategy for Perturb<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            use rand::{RngCore, SeedableRng};
            let fork = TestRng::seed_from_u64(rng.next_u64());
            (self.f)(self.inner.generate(rng), fork)
        }
    }

    macro_rules! sampled_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    sampled_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// A `&str` pattern strategy. Upstream proptest interprets the string
    /// as a regex; this shim supports the printable-text patterns the
    /// test-suite uses (`\PC{m,n}`) by generating printable ASCII of a
    /// length drawn from the trailing `{m,n}` repetition (default 0..=64).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            use rand::Rng;
            let (min, max) = repeat_bounds(self).unwrap_or((0, 64));
            let len = rng.gen_range(min..=max.max(min));
            (0..len)
                .map(|_| {
                    let c = rng.gen_range(0x20u32..0x7F);
                    char::from_u32(c).unwrap()
                })
                .collect()
        }
    }

    fn repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
        let open = pattern.rfind('{')?;
        let close = pattern[open..].find('}')? + open;
        let body = &pattern[open + 1..close];
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    pub struct ArbAny<A>(core::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for ArbAny<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `A`.
    pub fn any<A: Arbitrary>() -> ArbAny<A> {
        ArbAny(core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, sizes)` — a vector of values from `element` whose
    /// length is drawn from `sizes`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Macro-internal driver: runs `body` for `cfg.cases` deterministic
/// seeds derived from the test name, panicking on the first failure.
pub fn run_proptest<F>(name: &str, cfg: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    use rand::SeedableRng;
    let base = fnv1a(name.as_bytes());
    for case in 0..cfg.cases {
        let seed = base ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = test_runner::TestRng::seed_from_u64(seed);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest '{name}' failed at case {case}/{} (seed {seed:#x}): {e}",
                cfg.cases
            );
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])+
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let cfg = $cfg;
            $crate::run_proptest(
                stringify!($name),
                &cfg,
                |__proptest_rng| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), ::std::format!($($fmt)+), l, r,
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                ),
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy, ValueTree};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10i32..20, y in 0u64..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0i32..100, 0i32..100).prop_map(|(a, b)| a + b), 3..10),
            s in "\\PC{0,40}",
            w in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, n)),
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 10);
            prop_assert!(v.iter().all(|&x| (0..200).contains(&x)));
            prop_assert!(s.len() <= 40);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            prop_assert!(!w.is_empty() && w.len() < 5);
        }

        #[test]
        fn perturb_forks_an_rng(n in 4usize..10, pair in Just(()).prop_perturb(|_, mut rng| {
            use rand::Rng;
            (rng.gen_range(0usize..100), rng.gen_range(0usize..100))
        })) {
            prop_assert!(n >= 4);
            prop_assert!(pair.0 < 100 && pair.1 < 100);
        }

        #[test]
        fn assume_skips_without_failing(a in 0i32..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }

    #[test]
    fn runner_and_trees_sample_values() {
        use crate::test_runner::TestRunner;
        let mut runner = TestRunner::default();
        let tree = (0u32..7).new_tree(&mut runner).unwrap();
        assert!(tree.current() < 7);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        crate::run_proptest("always_fails", &ProptestConfig::with_cases(3), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first: Vec<u64> = Vec::new();
        crate::run_proptest("det", &ProptestConfig::with_cases(5), |rng| {
            use rand::RngCore;
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        crate::run_proptest("det", &ProptestConfig::with_cases(5), |rng| {
            use rand::RngCore;
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
