//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::SmallRng`] (+ [`SeedableRng::seed_from_u64`]), the [`Rng`]
//! extension trait (`gen_range`, `gen_bool`, `gen`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic across
//! platforms, which is all the workspace's seeded tests require. Streams
//! are **not** bit-compatible with upstream `rand`; no test in this
//! repository depends on upstream streams.

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types producible by the blanket [`Rng::gen`].
pub trait Standard: Sized {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((self.start as i128) + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128) - (start as i128) + 1;
                let v = (rng.next_u64() as u128) % (span as u128);
                ((start as i128) + v as i128) as $t
            }
        }
        impl Standard for $t {
            fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_range_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_f64(rng) as $t;
                let v = self.start + (self.end - self.start) * unit;
                // Guard against rounding up onto the (exclusive) end.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = unit_f64(rng) as $t;
                (start + (end - start) * unit).clamp(start, end)
            }
        }
        impl Standard for $t {
            fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                unit_f64(rng) as $t
            }
        }
    )*};
}

float_range_impls!(f32, f64);

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A uniform draw from [0, 1) with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and deterministic across platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// Snapshot of the full 256-bit xoshiro256++ state.
        ///
        /// Together with [`SmallRng::from_state`] this lets a caller
        /// checkpoint a generator mid-stream and later resume it (or a
        /// copy) at exactly the same point — the flight-recorder replay
        /// path depends on this being loss-free.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`SmallRng::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }

        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                Self::splitmix64(&mut st),
                Self::splitmix64(&mut st),
                Self::splitmix64(&mut st),
                Self::splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10i32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let d = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_hits_members() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn state_round_trip_resumes_the_exact_stream() {
        let mut a = SmallRng::seed_from_u64(0x2013);
        for _ in 0..17 {
            a.next_u64();
        }
        let snapshot = a.state();
        let mut b = SmallRng::from_state(snapshot);
        assert_eq!(a, b);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn dyn_rng_works_through_unsized_refs() {
        // Mirrors `R: Rng + ?Sized` call sites in tsp-core.
        fn takes_dyn(rng: &mut dyn super::RngCore) -> usize {
            rng.gen_range(0..10usize)
        }
        let mut rng = SmallRng::seed_from_u64(9);
        let v = takes_dyn(&mut rng);
        assert!(v < 10);
    }
}
