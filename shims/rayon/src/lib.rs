//! Offline stand-in for `rayon` (the subset this workspace uses).
//!
//! `into_par_iter().map(..).collect()` / `.reduce(..)` over ranges and
//! vectors, executed on std scoped threads with order-preserving chunked
//! fan-out. No work stealing — items are split into `current_num_threads`
//! contiguous chunks up front, which matches how the workspace uses the
//! API (uniform per-item cost across a block grid or a pair space).
//! Panics in worker closures propagate to the caller like rayon's do.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel iterator will fan out to.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

pub mod iter {
    use super::current_num_threads;

    /// Conversion into a (materialized) parallel iterator.
    pub trait IntoParallelIterator {
        type Item: Send;
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    /// Marker trait mirroring rayon's `ParallelIterator`; the combinators
    /// the workspace uses are inherent methods on the concrete adapters.
    pub trait ParallelIterator {}

    /// A materialized parallel iterator over `items`.
    pub struct ParIter<T: Send> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for ParIter<T> {}

    macro_rules! range_into_par_iter {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for core::ops::Range<$t> {
                type Item = $t;
                fn into_par_iter(self) -> ParIter<$t> {
                    ParIter { items: self.collect() }
                }
            }
        )*};
    }

    range_into_par_iter!(u32, u64, usize, i32, i64);

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl<T: Send> ParIter<T> {
        pub fn map<U, F>(self, f: F) -> Map<T, F>
        where
            U: Send,
            F: Fn(T) -> U + Sync,
        {
            Map {
                items: self.items,
                f,
            }
        }

        pub fn count(self) -> usize {
            self.items.len()
        }
    }

    /// The `map` adapter; terminal ops run the parallel fan-out.
    pub struct Map<T: Send, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParallelIterator for Map<T, F> {}

    impl<T: Send, U: Send, F: Fn(T) -> U + Sync> Map<T, F> {
        pub fn collect<C: From<Vec<U>>>(self) -> C {
            C::from(par_map(self.items, &self.f))
        }

        /// Rayon-style reduce: fold the mapped values with `op`, seeded by
        /// `identity`. `op` must be associative and `identity()` neutral,
        /// exactly as rayon requires.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
        where
            ID: Fn() -> U + Sync,
            OP: Fn(U, U) -> U + Sync,
        {
            par_map(self.items, &self.f)
                .into_iter()
                .fold(identity(), op)
        }
    }

    /// Order-preserving parallel map over contiguous chunks.
    fn par_map<T: Send, U: Send>(items: Vec<T>, f: &(impl Fn(T) -> U + Sync)) -> Vec<U> {
        let n = items.len();
        let workers = current_num_threads().min(n);
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk = n.div_ceil(workers);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
        let mut it = items.into_iter();
        loop {
            let c: Vec<T> = it.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks.push(c);
        }
        let mut out: Vec<U> = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
                .collect();
            for h in handles {
                // Propagate worker panics to the caller, like rayon.
                out.extend(h.join().expect("rayon shim: worker thread panicked"));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..10_000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10_000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64 * 2);
        }
    }

    #[test]
    fn reduce_folds_all_items() {
        let total: u64 = (1u64..=100)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
    }

    #[test]
    fn reduce_with_option_mirrors_cpu_parallel_usage() {
        let best = (0u64..1000)
            .into_par_iter()
            .map(|x| if x % 7 == 0 { Some(x) } else { None })
            .reduce(
                || None,
                |a, b| match (a, b) {
                    (None, x) => x,
                    (x, None) => x,
                    (Some(a), Some(b)) => Some(a.max(b)),
                },
            );
        assert_eq!(best, Some(994));
    }

    #[test]
    fn empty_input_yields_identity() {
        let v: Vec<u32> = Vec::new();
        let sum = v.into_par_iter().map(|x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, 0);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
