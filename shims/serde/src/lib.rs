//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few plain-data
//! types (device specs, points, metrics) but never links a serializer, so
//! marker traits are the whole contract. The derive macros (re-exported
//! from the in-repo `serde_derive` shim) emit empty impls of these
//! traits, which keeps `T: Serialize` bounds honest if a future crate
//! adds them.

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! marker_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

marker_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
