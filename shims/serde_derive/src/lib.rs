//! Offline stand-in for `serde_derive`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (no
//! serializer crate is present), so the derives here expand to plain
//! marker-trait impls for the deriving type, ignoring generics-free
//! struct/enum bodies. All deriving types in this workspace are concrete
//! (no type parameters), which keeps the hand-rolled expansion trivial.

use proc_macro::{TokenStream, TokenTree};

/// Pull the type identifier out of `struct Foo {...}` / `enum Foo {...}`,
/// skipping attributes, visibility, and doc comments.
fn type_ident(input: TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return Some(s);
                }
                if s == "struct" || s == "enum" || s == "union" {
                    saw_kw = true;
                }
            }
            _ => continue,
        }
    }
    None
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_ident(input).expect("serde_derive shim: no type name");
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_ident(input).expect("serde_derive shim: no type name");
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
