//! Differential suite for the alert subsystem, mirroring
//! `telemetry_differential.rs`: evaluating an [`AlertEngine`] against
//! the live registry — before, between, and after solver stages, and
//! at watchdog ticks inside a running [`SolveService`] — must never
//! change what the engines compute. Identical moves and tours,
//! bit-identical modeled seconds, across every kernel strategy, for
//! both plain descent and ILS. Alerting reads metrics; it must never
//! write back into the solve.

use gpu_sim::spec;
use tsp_2opt::{optimize, optimize_observed, GpuTwoOpt, SearchOptions, Strategy, TwoOptEngine};
use tsp_core::Tour;
use tsp_ils::{iterated_local_search, IlsOptions};
use tsp_prof::Profiler;
use tsp_serve::api::{JobState, JobStatus, SolveRequest};
use tsp_serve::{AlertConfig, ServiceConfig, SolveService};
use tsp_telemetry::{AlertEngine, AlertRule, Cmp, Selector, Severity, Telemetry};
use tsp_trace::Recorder;
use tsp_tsplib::{generate, writer, Style};

fn scrambled_tour(n: usize) -> Tour {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(0xa1e7 ^ n as u64);
    Tour::random(n, &mut rng)
}

const ALL_STRATEGIES: [Strategy; 6] = [
    Strategy::Auto,
    Strategy::Shared,
    Strategy::Tiled { tile: 64 },
    Strategy::GlobalOnly,
    Strategy::Unordered,
    Strategy::DeviceResident,
];

/// A rule set that exercises every rule kind against metrics the
/// engines actually emit, so each evaluation genuinely reads the
/// registry rather than matching nothing.
fn fleet_rules() -> AlertEngine {
    AlertEngine::new()
        .with_rule(AlertRule::threshold(
            "KernelLaunches",
            Severity::Info,
            Selector::metric("tsp_gpu_kernel_launches_total"),
            Cmp::Ge,
            1.0,
        ))
        .with_rule(AlertRule::stale(
            "SweepsStale",
            Severity::Warning,
            Selector::metric("tsp_search_sweeps_total"),
            0.5,
        ))
        .with_rule(AlertRule::burn_rate(
            "LaunchBurn",
            Severity::Critical,
            Selector::metric("tsp_gpu_kernel_launches_total"),
            Selector::metric("tsp_search_sweeps_total"),
            0.5,
            2.0,
            0.5,
            1.0,
        ))
}

#[test]
fn alert_evaluation_is_invisible_to_every_strategy() {
    // Same instance, same tour: best_move with an attached registry
    // being actively evaluated by an alert engine must return the
    // identical move and a bit-identical cost profile for all six
    // kernel strategies.
    let n = 256;
    let inst = generate("alert-diff", n, Style::Clustered { clusters: 5 }, 17);
    let tour = scrambled_tour(n);
    for strategy in ALL_STRATEGIES {
        let mut plain = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
        let (mv_plain, p_plain) = plain.best_move(&inst, &tour).unwrap();

        let telemetry = Telemetry::attached();
        let registry = telemetry.registry().unwrap();
        let mut engine = fleet_rules();
        // Evaluate on the empty registry first: nothing matches yet.
        engine.evaluate(registry, 0.0);
        assert_eq!(engine.firing_count(), 0, "{strategy:?} fired on nothing");

        let mut observed = GpuTwoOpt::new(spec::gtx_680_cuda())
            .with_strategy(strategy)
            .with_telemetry(&telemetry);
        let (mv_observed, p_observed) = observed.best_move(&inst, &tour).unwrap();

        // Checkpoint evaluations after the kernel ran, journalling
        // state transitions and exposing ALERTS gauges back into the
        // same registry the engine reads from.
        for step in 1..=4u32 {
            engine.evaluate(registry, f64::from(step) * 0.25);
            engine.expose_into(registry);
        }
        assert!(
            engine.firing_count() >= 1,
            "{strategy:?}: the KernelLaunches rule must fire once kernels ran"
        );

        // And a second observed evaluation under an exposed registry
        // still matches the plain run bit for bit.
        let (mv_again, p_again) = observed.best_move(&inst, &tour).unwrap();
        assert_eq!(mv_plain, mv_observed, "{strategy:?}");
        assert_eq!(mv_plain, mv_again, "{strategy:?}");
        assert_eq!(p_plain, p_observed, "{strategy:?}");
        assert_eq!(
            p_plain.modeled_seconds().to_bits(),
            p_observed.modeled_seconds().to_bits(),
            "{strategy:?}"
        );
        assert_eq!(
            p_plain.modeled_seconds().to_bits(),
            p_again.modeled_seconds().to_bits(),
            "{strategy:?}"
        );
    }
}

#[test]
fn alert_evaluation_is_invisible_to_descent_and_ils() {
    // Full descent then ILS on every strategy, with the alert engine
    // evaluated between the stages and after — at checkpoints derived
    // from the run's own (deterministic) modeled seconds, so the
    // entire test is reproducible bit for bit.
    let n = 180;
    let inst = generate("alert-descent", n, Style::Uniform, 8);
    let start = scrambled_tour(n);
    let ils_opts = IlsOptions::new().with_max_iterations(3u64).with_seed(13);

    for strategy in ALL_STRATEGIES {
        // --- plain: no telemetry, no alerting ------------------------
        let mut t_plain = start.clone();
        let mut plain = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
        let a = optimize(&mut plain, &inst, &mut t_plain, SearchOptions::default()).unwrap();
        let a_ils =
            iterated_local_search(&mut plain, &inst, start.clone(), ils_opts.clone()).unwrap();

        // --- observed: registry attached, engine evaluated between --
        let telemetry = Telemetry::attached();
        let registry = telemetry.registry().unwrap();
        let mut engine = fleet_rules();
        let mut t_observed = start.clone();
        let mut observed = GpuTwoOpt::new(spec::gtx_680_cuda())
            .with_strategy(strategy)
            .with_telemetry(&telemetry);
        let b = optimize_observed(
            &mut observed,
            &inst,
            &mut t_observed,
            SearchOptions::default(),
            &Recorder::disabled(),
            &telemetry,
        )
        .unwrap();

        // Mid-run checkpoint: evaluate between descent and ILS at the
        // descent's own modeled-seconds mark, then expose the gauges.
        let checkpoint = b.modeled_seconds();
        let transitions = engine.evaluate(registry, checkpoint);
        assert!(
            !transitions.is_empty(),
            "{strategy:?}: the first post-descent evaluation must transition"
        );
        engine.expose_into(registry);

        let b_ils =
            iterated_local_search(&mut observed, &inst, start.clone(), ils_opts.clone()).unwrap();
        engine.evaluate(registry, checkpoint + 1.0);
        engine.expose_into(registry);

        // --- identical results, bit for bit --------------------------
        assert_eq!(t_plain.as_slice(), t_observed.as_slice(), "{strategy:?}");
        assert_eq!(a.sweeps, b.sweeps, "{strategy:?}");
        assert_eq!(a.final_length, b.final_length, "{strategy:?}");
        assert_eq!(
            a.modeled_seconds().to_bits(),
            b.modeled_seconds().to_bits(),
            "{strategy:?}"
        );
        assert_eq!(a_ils.best_length, b_ils.best_length, "{strategy:?}");
        assert_eq!(a_ils.best.as_slice(), b_ils.best.as_slice(), "{strategy:?}");
        assert_eq!(a_ils.accepted, b_ils.accepted, "{strategy:?}");
        assert_eq!(
            a_ils.profile.modeled_seconds().to_bits(),
            b_ils.profile.modeled_seconds().to_bits(),
            "{strategy:?}"
        );
    }
}

/// Run a fixed batch of seeded jobs through a service and collect the
/// terminal statuses in submission order.
fn run_service_batch(alerts: AlertConfig, tick: bool) -> Vec<JobStatus> {
    let cfg = ServiceConfig::default()
        .with_devices(1)
        .with_streams(1)
        .with_alerts(alerts);
    let service = SolveService::start(cfg, Telemetry::attached(), Profiler::attached()).unwrap();
    let ids: Vec<String> = (0..6u64)
        .map(|i| {
            let inst = generate(
                &format!("alert-batch-{i}"),
                64,
                Style::Clustered { clusters: 4 },
                40 + i,
            );
            let req = SolveRequest::tsplib(writer::write(&inst))
                .with_tenant(format!("tenant-{}", i % 3))
                .with_ils_iterations(2)
                .with_seed(i);
            if tick {
                service.watchdog_tick();
            }
            service.submit(req).unwrap().job_id
        })
        .collect();
    let statuses: Vec<JobStatus> = ids
        .iter()
        .map(|id| loop {
            if tick {
                service.watchdog_tick();
            }
            let status = service.status(id).unwrap();
            if status.state.is_terminal() {
                break status;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        })
        .collect();
    if tick {
        // A healthy drain fires nothing.
        service.watchdog_tick();
        assert_eq!(
            service.alerts_snapshot().firing,
            0,
            "a healthy batch must not fire alerts"
        );
    }
    service.shutdown();
    statuses
}

#[test]
fn service_watchdog_and_alerting_are_bit_inert() {
    // The same six seeded jobs through (a) a service with alerting
    // disabled entirely and (b) a service with the watchdog ticked
    // manually around every submission and poll: identical tours,
    // lengths, and bit-identical modeled seconds per job.
    let silent = run_service_batch(AlertConfig::disabled(), false);
    let watched = run_service_batch(
        AlertConfig::default()
            .with_watchdog_interval_ms(0)
            .with_stall_seconds(30.0),
        true,
    );
    assert_eq!(silent.len(), watched.len());
    for (i, (a, b)) in silent.iter().zip(&watched).enumerate() {
        assert_eq!(a.state, JobState::Done, "job {i} (silent)");
        assert_eq!(b.state, JobState::Done, "job {i} (watched)");
        assert_eq!(a.tour, b.tour, "job {i}: tour bytes diverged");
        assert_eq!(a.length, b.length, "job {i}: tour length diverged");
        assert_eq!(a.initial_length, b.initial_length, "job {i}");
        assert_eq!(a.chains, b.chains, "job {i}");
        assert_eq!(
            a.modeled_seconds.unwrap().to_bits(),
            b.modeled_seconds.unwrap().to_bits(),
            "job {i}: modeled seconds diverged"
        );
    }
}
