//! Differential suite for the candidate-list strategies (`Candidate`
//! and `CandidateResident`): the sub-quadratic k-nearest-neighbour
//! sweep with don't-look bits.
//!
//! The candidate search is deliberately *inexact* against the dense
//! sweep — it only sees moves whose removed edges touch a k-NN pair —
//! so its contract is different from the dense strategies':
//!
//! * every applied move is improving and the final tour is a valid
//!   permutation;
//! * a descent terminates exactly at a *candidate-local* minimum — no
//!   improving move within the k-NN neighbourhood remains, re-verified
//!   here with the independent host mirror
//!   [`CandidateLists::best_candidate_move`];
//! * both residency variants run the identical search and must agree
//!   bit-for-bit;
//! * where the dense descent is affordable, the quality gap against
//!   [`Strategy::DeviceResident`] stays within a pinned 2 % bound;
//! * recordings replay bit-identically, RNG checkpoints and don't-look
//!   state included.

use gpu_sim::spec;
use tsp::prelude::*;
use tsp_2opt::{optimize, CandidateLists, GpuTwoOpt, SearchOptions};
use tsp_construction::multiple_fragment;
use tsp_tsplib::{generate, Style};

/// Neighbours per city everywhere in this suite (the paper-realistic
/// setting; clamped to n - 1 on the tiny instances).
const K: usize = 16;

fn uniform(n: usize) -> Instance {
    generate("cand-uniform", n, Style::Uniform, 7)
}

fn clustered(n: usize) -> Instance {
    generate("cand-clustered", n, Style::Clustered { clusters: 5 }, 7)
}

/// Full descent (no ILS) from the Multiple-Fragment start.
fn descend(inst: &Instance, strategy: Strategy) -> Solution {
    Solver::builder()
        .construction(Construction::MultipleFragment)
        .strategy(strategy)
        .build()
        .run(inst)
        .unwrap()
}

fn assert_valid_permutation(tour: &Tour, n: usize) {
    assert_eq!(tour.len(), n);
    let mut seen = vec![false; n];
    for &c in tour.as_slice() {
        assert!(!seen[c as usize], "city {c} repeated");
        seen[c as usize] = true;
    }
}

#[test]
fn candidate_descents_reach_certified_local_minima_at_every_size() {
    // The full size ladder of the dense differential suite. The dense
    // descent itself is infeasible at the top sizes in debug builds
    // (O(n²) checks per sweep), which is exactly the gap the candidate
    // family exists to close — so here the contract is validity plus a
    // host-verified candidate-local minimum, and the quality gap is
    // pinned against the dense descent at the affordable sizes below.
    for n in [8usize, 52, 512, 3073, 7000] {
        let inst = uniform(n);
        let cand = descend(&inst, Strategy::Candidate { k: K });
        let resident = descend(&inst, Strategy::CandidateResident { k: K });

        assert_valid_permutation(&cand.tour, n);
        assert!(cand.length <= cand.initial_length, "n={n}");
        // Same search, different residency: bit-identical outcome.
        assert_eq!(cand.tour.as_slice(), resident.tour.as_slice(), "n={n}");
        assert_eq!(cand.length, resident.length, "n={n}");

        // The engine's `None` came from a wake-all certifying sweep;
        // the host mirror must agree that no k-NN move remains.
        let cl = CandidateLists::build(&inst, K);
        assert_eq!(
            cl.best_candidate_move(&inst, &cand.tour),
            None,
            "n={n}: descent stopped short of a candidate-local minimum"
        );
    }
}

#[test]
fn candidate_quality_tracks_the_dense_descent_within_two_percent() {
    for n in [8usize, 52, 512] {
        for inst in [uniform(n), clustered(n)] {
            let dense = descend(&inst, Strategy::DeviceResident);
            let cand = descend(&inst, Strategy::Candidate { k: K });
            assert_valid_permutation(&cand.tour, n);
            // Pinned bound: candidate length ≤ 1.02 × dense length.
            assert!(
                (cand.length as f64) <= (dense.length as f64) * 1.02,
                "{} n={n}: candidate {} vs dense {} exceeds the 2 % gap",
                inst.name(),
                cand.length,
                dense.length
            );
        }
    }
}

#[test]
fn clustered_descents_certify_local_minima_past_dense_reach() {
    // Clustered geometry at the sizes where only the candidate family
    // is affordable: validity + certified candidate-local minimum.
    for n in [3073usize, 7000] {
        let inst = clustered(n);
        let sol = descend(&inst, Strategy::CandidateResident { k: K });
        assert_valid_permutation(&sol.tour, n);
        assert!(sol.length <= sol.initial_length, "n={n}");
        let cl = CandidateLists::build(&inst, K);
        assert_eq!(cl.best_candidate_move(&inst, &sol.tour), None, "n={n}");
    }
}

#[test]
fn dont_look_state_is_deterministic_and_fully_asleep_at_the_minimum() {
    let n = 300;
    let inst = clustered(n);
    let run = |strategy| {
        let mut engine = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
        let mut tour = multiple_fragment(&inst);
        let stats = optimize(&mut engine, &inst, &mut tour, SearchOptions::new()).unwrap();
        let dlb = engine
            .candidate_dont_look()
            .expect("candidate state must exist after a candidate run")
            .to_vec();
        (tour, stats.final_length, dlb)
    };
    for strategy in [
        Strategy::Candidate { k: K },
        Strategy::CandidateResident { k: K },
    ] {
        let (tour_a, len_a, dlb_a) = run(strategy);
        let (tour_b, len_b, dlb_b) = run(strategy);
        // Identical runs leave identical DLB state behind — the bits
        // are part of the deterministic replay surface.
        assert_eq!(tour_a.as_slice(), tour_b.as_slice(), "{strategy:?}");
        assert_eq!(len_a, len_b, "{strategy:?}");
        assert_eq!(dlb_a, dlb_b, "{strategy:?}");
        // The final certifying sweep saw every city fail to improve,
        // so the local minimum leaves *all* don't-look bits set.
        assert_eq!(dlb_a.len(), n, "{strategy:?}");
        assert!(dlb_a.iter().all(|&bit| bit), "{strategy:?}");
    }
}

#[test]
fn candidate_ils_replays_bit_identically_with_rng_checkpoints() {
    let inst = clustered(96);
    for strategy in [
        Strategy::Candidate { k: 10 },
        Strategy::CandidateResident { k: 10 },
    ] {
        let build = || {
            Solver::builder()
                .construction(Construction::MultipleFragment)
                .strategy(strategy)
                .ils(
                    IlsOptions::default()
                        .with_max_iterations(5u64)
                        .with_seed(29),
                )
        };
        let flight = FlightRecorder::attached();
        let solver = build().record(flight).build();
        let ran = solver.run(&inst).unwrap();
        let recording = solver.recording(&inst).unwrap();

        // Kick and Acceptance events each carry an xoshiro256++
        // checkpoint; the clean replay below re-verifies every one.
        let checkpoints = recording
            .chain_events(0)
            .iter()
            .filter(|e| e.rng_state().is_some())
            .count();
        assert_eq!(checkpoints as u64, 2 * ran.iterations, "{strategy:?}");

        let (solution, report) = build().build().replay(&inst, &recording).unwrap();
        assert!(report.is_clean(), "{strategy:?}:\n{report}");
        assert_eq!(report.events_checked, recording.len(), "{strategy:?}");
        assert_eq!(
            solution.tour.as_slice(),
            ran.tour.as_slice(),
            "{strategy:?}"
        );
        assert_eq!(solution.length, ran.length, "{strategy:?}");
        assert_eq!(
            solution.modeled_seconds().to_bits(),
            ran.modeled_seconds().to_bits(),
            "{strategy:?}"
        );
    }
}
