//! Property tests for the k-nearest-neighbour candidate-list builder
//! ([`CandidateLists`]): list shape, true-nearest contents against an
//! independent brute force, symmetric-closure consistency, and
//! no-panic behaviour on degenerate geometry (duplicate coordinates,
//! collinear fields, n ≤ k).

use proptest::prelude::*;
use tsp_2opt::CandidateLists;
use tsp_core::{Instance, Metric, Point, Tour};

fn instance_from(coords: Vec<(i32, i32)>) -> Instance {
    let pts: Vec<Point> = coords
        .into_iter()
        .map(|(x, y)| Point::new(x as f32, y as f32))
        .collect();
    Instance::new("prop", Metric::Euc2d, pts).unwrap()
}

/// n in [4, 80) points on a `max`×`max` integer grid — small grids
/// force duplicate coordinates and massive distance ties.
fn arb_coords(max: i32) -> impl Strategy<Value = Vec<(i32, i32)>> {
    (4usize..80).prop_flat_map(move |n| proptest::collection::vec((0i32..max, 0i32..max), n))
}

/// The builder's documented ordering, recomputed from scratch: rounded
/// distance ascending, city id as the tie-break, self excluded.
fn brute_neighbors(inst: &Instance, c: usize, k: usize) -> Vec<u32> {
    let mut d: Vec<(i32, u32)> = (0..inst.len())
        .filter(|&o| o != c)
        .map(|o| (inst.dist(c, o), o as u32))
        .collect();
    d.sort_unstable();
    d.truncate(k);
    d.into_iter().map(|(_, o)| o).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_city_gets_exactly_the_true_k_nearest(
        coords in arb_coords(1000),
        k in 1usize..=20,
    ) {
        let inst = instance_from(coords);
        let n = inst.len();
        let cl = CandidateLists::build(&inst, k);
        let kk = k.min(n - 1);
        prop_assert_eq!(cl.k(), kk);
        prop_assert_eq!(cl.len(), n);
        prop_assert_eq!(cl.flat().len(), n * kk);
        for c in 0..n {
            let got = cl.neighbors(c);
            prop_assert_eq!(got.len(), kk, "city {}", c);
            // Bit-exact against the independent brute force, ties and
            // all — this is what pins the grid path's ring-termination
            // margin.
            let want = brute_neighbors(&inst, c, kk);
            prop_assert_eq!(got, want.as_slice(), "city {}", c);
        }
    }

    #[test]
    fn the_closure_is_symmetric_sorted_and_covers_the_lists(
        coords in arb_coords(300),
        k in 1usize..=12,
    ) {
        let inst = instance_from(coords);
        let n = inst.len();
        let cl = CandidateLists::build(&inst, k);
        for a in 0..n {
            let row = cl.closure(a);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row {} not strictly sorted", a);
            prop_assert!(!row.contains(&(a as u32)), "row {} contains itself", a);
            // Every k-NN entry appears, and membership is mutual.
            for &b in cl.neighbors(a) {
                prop_assert!(row.contains(&b), "{} missing neighbour {}", a, b);
            }
            for &b in row {
                prop_assert!(
                    cl.closure(b as usize).contains(&(a as u32)),
                    "{} in closure({}) but not vice versa", b, a
                );
            }
        }
    }

    #[test]
    fn degenerate_geometry_never_panics(
        coords in arb_coords(3),
        k in 1usize..=30,
    ) {
        // A 3×3 palette guarantees duplicate points (n ≥ 10 forces
        // them by pigeonhole) and k regularly exceeds n - 1.
        let inst = instance_from(coords);
        let n = inst.len();
        let cl = CandidateLists::build(&inst, k);
        prop_assert_eq!(cl.k(), k.min(n - 1));
        // The sweep mirror stays well-defined on the degenerate field.
        let mv = cl.best_candidate_move(&inst, &Tour::identity(n));
        if let Some(m) = mv {
            prop_assert!(m.improves());
        }
    }

    #[test]
    fn collinear_fields_never_panic(
        xs in proptest::collection::vec(0i32..500, 4..60),
        k in 1usize..=10,
    ) {
        // All points on y = 0: every grid cell in one row, maximal ties.
        let inst = instance_from(xs.into_iter().map(|x| (x, 0)).collect());
        let n = inst.len();
        let cl = CandidateLists::build(&inst, k);
        let kk = k.min(n - 1);
        for c in 0..n {
            let want = brute_neighbors(&inst, c, kk);
            prop_assert_eq!(cl.neighbors(c), want.as_slice());
        }
    }
}
