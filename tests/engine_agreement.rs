//! Property tests: every engine returns the same best move as the
//! sequential reference, on arbitrary instances and tours.

use gpu_sim::spec;
use proptest::prelude::*;
use tsp_2opt::{
    CpuParallelTwoOpt, GpuTwoOpt, SequentialTwoOpt, Strategy as GpuStrategy, TwoOptEngine,
};
use tsp_core::{Instance, Metric, Point, Tour};

/// An arbitrary instance: n in [4, 60], coordinates on a grid (integral
/// f32 so distance rounding is stable).
fn arb_instance() -> impl Strategy<Value = Instance> {
    (4usize..60)
        .prop_flat_map(|n| proptest::collection::vec((0i32..2000, 0i32..2000), n))
        .prop_map(|coords| {
            let pts: Vec<Point> = coords
                .into_iter()
                .map(|(x, y)| Point::new(x as f32, y as f32))
                .collect();
            Instance::new("prop", Metric::Euc2d, pts).unwrap()
        })
}

fn arb_tour(n: usize) -> impl Strategy<Value = Tour> {
    Just(()).prop_perturb(move |_, mut rng| {
        use rand::Rng;
        let mut order: Vec<u32> = (0..n as u32).collect();
        // Fisher-Yates with proptest's rng for shrinking stability.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        Tour::new(order).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_engines_agree_on_the_best_move(
        inst in arb_instance(),
        seed in any::<u64>(),
    ) {
        let n = inst.len();
        let tour = {
            use rand::SeedableRng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            Tour::random(n, &mut rng)
        };
        let mut seq = SequentialTwoOpt::new();
        let (expected, seq_prof) = seq.best_move(&inst, &tour).unwrap();

        let mut cpu = CpuParallelTwoOpt::new().with_chunks(5);
        let (got_cpu, cpu_prof) = cpu.best_move(&inst, &tour).unwrap();
        prop_assert_eq!(got_cpu, expected);
        prop_assert_eq!(cpu_prof.pairs_checked, seq_prof.pairs_checked);

        for strategy in [
            GpuStrategy::Shared,
            GpuStrategy::Tiled { tile: 7 },
            GpuStrategy::GlobalOnly,
            GpuStrategy::Unordered,
        ] {
            let mut gpu = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
            let (got, _) = gpu.best_move(&inst, &tour).unwrap();
            prop_assert_eq!(got, expected, "strategy {:?}", strategy);
        }
    }

    #[test]
    fn applying_the_best_move_never_lengthens(
        inst in arb_instance(),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut tour = Tour::random(inst.len(), &mut rng);
        let mut gpu = GpuTwoOpt::new(spec::gtx_680_cuda());
        for _ in 0..5 {
            let before = tour.length(&inst);
            let (mv, _) = gpu.best_move(&inst, &tour).unwrap();
            match mv {
                None => break,
                Some(m) => {
                    tour.apply_two_opt(m.i as usize, m.j as usize);
                    let after = tour.length(&inst);
                    prop_assert_eq!(after - before, m.delta as i64);
                    prop_assert!(after < before);
                    tour.validate().unwrap();
                }
            }
        }
    }

    #[test]
    fn tours_stay_permutations_under_random_move_sequences(
        n in 8usize..50,
        moves in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<u8>()), 1..30),
    ) {
        let mut tour = Tour::identity(n);
        for (a, b, kind) in moves {
            let i = a as usize % (n - 2);
            let j = i + 1 + (b as usize % (n - 1 - i));
            match kind % 3 {
                0 => tour.apply_two_opt(i, j.min(n - 1)),
                1 => tour.reverse_segment(i, j.min(n - 1)),
                _ => {
                    use rand::SeedableRng;
                    let mut rng = rand::rngs::SmallRng::seed_from_u64(u64::from(a) << 16 | u64::from(b));
                    tour.double_bridge(&mut rng);
                }
            }
            tour.validate().unwrap();
        }
    }
}

#[test]
fn arb_tour_strategy_compiles_and_runs() {
    // Keep the helper exercised even though the main properties build
    // tours from seeds.
    use proptest::strategy::{Strategy as _, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::default();
    let t = arb_tour(12).new_tree(&mut runner).unwrap().current();
    t.validate().unwrap();
    assert_eq!(t.len(), 12);
}
