//! Cross-crate tests for the §VII future-work extensions: 2.5-opt,
//! 3-opt, Or-opt (CPU and GPU kernels), VND, don't-look bits, pruning,
//! and the multi-device engine — all driven through generated instances
//! and verified against the exhaustive checker.

use gpu_sim::spec;
use tsp_2opt::gpu::oropt_kernel::GpuOrOpt;
use tsp_2opt::verify::is_two_opt_minimum;
use tsp_2opt::{dlb, oropt, threeopt, twohopt, vnd, MultiGpuTwoOpt};
use tsp_construction::multiple_fragment;
use tsp_core::Tour;
use tsp_tsplib::{generate, Style};

#[test]
fn extension_ladder_improves_quality_monotonically_in_aggregate() {
    // 2-opt minimum >= 2.5-opt minimum >= VND(2-opt+Or-opt) in total
    // length across seeds (each richer neighbourhood can only help).
    let (mut sum2, mut sum25, mut sumv) = (0i64, 0i64, 0i64);
    for seed in 0..4 {
        let inst = generate("ladder", 90, Style::Uniform, seed);
        let start = multiple_fragment(&inst);

        let mut t2 = start.clone();
        let mut seq = tsp_2opt::SequentialTwoOpt::new();
        tsp_2opt::optimize(&mut seq, &inst, &mut t2, Default::default()).unwrap();
        sum2 += t2.length(&inst);

        let mut t25 = start.clone();
        twohopt::optimize(&inst, &mut t25);
        sum25 += t25.length(&inst);

        let mut tv = start;
        vnd::optimize_vnd_cpu(&inst, &mut tv);
        sumv += tv.length(&inst);
    }
    assert!(sum25 <= sum2, "2.5-opt {sum25} vs 2-opt {sum2}");
    assert!(sumv <= sum2, "VND {sumv} vs 2-opt {sum2}");
}

#[test]
fn three_opt_polishes_a_vnd_minimum_or_confirms_it() {
    let inst = generate("polish", 60, Style::Clustered { clusters: 4 }, 2);
    let mut tour = multiple_fragment(&inst);
    vnd::optimize_vnd_cpu(&inst, &mut tour);
    let at_vnd = tour.length(&inst);
    threeopt::optimize(&inst, &mut tour);
    assert!(tour.length(&inst) <= at_vnd);
    tour.validate().unwrap();
    assert!(is_two_opt_minimum(&inst, &tour));
}

#[test]
fn gpu_oropt_and_cpu_oropt_descend_identically() {
    let inst = generate("oropt-xcheck", 50, Style::Uniform, 3);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(4);
    let start = Tour::random(50, &mut rng);

    let mut cpu_tour = start.clone();
    while let (Some(m), _) = oropt::best_move(&inst, &cpu_tour, 3) {
        oropt::apply(&mut cpu_tour, &m);
    }

    let mut gpu_tour = start;
    let mut gpu = GpuOrOpt::new(spec::gtx_680_cuda());
    while let (Some(m), _) = gpu.best_move(&inst, &gpu_tour).unwrap() {
        oropt::apply(&mut gpu_tour, &m);
    }
    assert_eq!(cpu_tour.as_slice(), gpu_tour.as_slice());
}

#[test]
fn dlb_and_multi_gpu_work_on_catalog_instances() {
    let entry = tsp_tsplib::catalog::by_name("ch130").unwrap();
    let inst = entry.instance();
    let mut tour = multiple_fragment(&inst);
    let before = tour.length(&inst);
    let stats = dlb::optimize(&inst, &mut tour, 129); // complete lists
    assert!(tour.length(&inst) <= before);
    assert!(stats.checks > 0);

    // Multi-device agrees with the verifier: no improving pair remains
    // once the fleet reports a local minimum.
    let mut fleet = MultiGpuTwoOpt::homogeneous(spec::gtx_680_cuda(), 3);
    let mut t2 = multiple_fragment(&inst);
    tsp_2opt::optimize(&mut fleet, &inst, &mut t2, Default::default()).unwrap();
    assert!(is_two_opt_minimum(&inst, &t2));
}

#[test]
fn tour_file_round_trips_a_solved_tour() {
    let inst = generate("tourfile", 40, Style::Uniform, 5);
    let mut tour = multiple_fragment(&inst);
    let mut eng = tsp_2opt::GpuTwoOpt::new(spec::gtx_680_cuda());
    tsp_2opt::optimize(&mut eng, &inst, &mut tour, Default::default()).unwrap();
    let text = tsp_tsplib::write_tour(inst.name(), &tour);
    let back = tsp_tsplib::parse_tour(&text).unwrap();
    assert_eq!(back.as_slice(), tour.as_slice());
    assert_eq!(back.length(&inst), tour.length(&inst));
}

#[test]
fn timeline_observes_a_whole_vnd_run() {
    let inst = generate("timeline", 80, Style::Uniform, 6);
    let timeline = gpu_sim::Timeline::new();
    let mut two = tsp_2opt::GpuTwoOpt::new(spec::gtx_680_cuda()).with_timeline(timeline.clone());
    let mut or = GpuOrOpt::new(spec::gtx_680_cuda());
    let mut tour = multiple_fragment(&inst);
    let stats = vnd::optimize_vnd(&mut two, &mut or, &inst, &mut tour).unwrap();
    // Every 2-opt sweep produced one kernel + two transfers.
    let events = timeline.events();
    let kernels = events
        .iter()
        .filter(|e| matches!(e, gpu_sim::Event::Kernel { .. }))
        .count();
    assert!(kernels as u64 >= stats.two_opt_moves);
    assert_eq!(events.len(), kernels * 3);
    assert!(timeline.total_seconds() > 0.0);
}
