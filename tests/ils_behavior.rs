//! Cross-crate behavioural tests of the ILS layer (Algorithm 1).

use gpu_sim::spec;
use tsp_2opt::{GpuTwoOpt, SequentialTwoOpt};
use tsp_core::Tour;
use tsp_ils::{iterated_local_search, Acceptance, IlsOptions, Perturbation};
use tsp_tsplib::{generate, Style};

fn opts(iters: u64, seed: u64) -> IlsOptions {
    IlsOptions::new().with_max_iterations(iters).with_seed(seed)
}

#[test]
fn gpu_and_cpu_ils_follow_identical_quality_trajectories() {
    // Same seed + bit-identical local searches => identical sequences of
    // tours; only the modeled time axis differs. This is the invariant
    // behind Fig. 11's comparison.
    let inst = generate("ils-traj", 150, Style::Uniform, 5);
    let start = Tour::identity(150);

    let mut gpu = GpuTwoOpt::new(spec::gtx_680_cuda());
    let a = iterated_local_search(&mut gpu, &inst, start.clone(), opts(25, 77)).unwrap();
    let mut cpu = SequentialTwoOpt::new();
    let b = iterated_local_search(&mut cpu, &inst, start, opts(25, 77)).unwrap();

    assert_eq!(a.best_length, b.best_length);
    assert_eq!(a.best.as_slice(), b.best.as_slice());
    assert_eq!(a.accepted, b.accepted);
    assert_eq!(a.trace.len(), b.trace.len());
    for (pa, pb) in a.trace.iter().zip(&b.trace) {
        assert_eq!(pa.iteration, pb.iteration);
        assert_eq!(pa.best_length, pb.best_length);
    }
    // The modeled GPU timeline runs faster than the sequential one.
    assert!(
        a.profile.modeled_seconds() < b.profile.modeled_seconds(),
        "gpu {} vs cpu {}",
        a.profile.modeled_seconds(),
        b.profile.modeled_seconds()
    );
}

#[test]
fn acceptance_criteria_order_by_final_quality_sanely() {
    let inst = generate("ils-accept", 120, Style::Uniform, 8);
    let start = Tour::identity(120);
    let run = |acceptance| {
        let mut eng = SequentialTwoOpt::new();
        iterated_local_search(
            &mut eng,
            &inst,
            start.clone(),
            IlsOptions::new()
                .with_max_iterations(40u64)
                .with_acceptance(acceptance)
                .with_seed(3),
        )
        .unwrap()
    };
    let better = run(Acceptance::Better);
    let always = run(Acceptance::Always);
    // Elitist acceptance must not lose to a pure random walk here, and
    // both must at least reach a 2-opt local minimum's quality.
    assert!(better.best_length <= always.best_length + always.best_length / 20);
    assert!(better.accepted <= better.iterations);
    assert_eq!(always.accepted, always.iterations);
}

#[test]
fn perturbation_strength_affects_exploration() {
    let inst = generate("ils-perturb", 100, Style::Uniform, 2);
    let start = Tour::identity(100);
    for perturbation in [
        Perturbation::DoubleBridge,
        Perturbation::MultiBridge { count: 4 },
        Perturbation::RandomReversal,
    ] {
        let mut eng = SequentialTwoOpt::new();
        let out = iterated_local_search(
            &mut eng,
            &inst,
            start.clone(),
            IlsOptions::new()
                .with_max_iterations(15u64)
                .with_perturbation(perturbation),
        )
        .unwrap();
        out.best.validate().unwrap();
        assert!(out.iterations == 15);
        assert!(!out.trace.is_empty());
    }
}

#[test]
fn stagnation_restart_recovers_a_random_walk() {
    // Under Always-acceptance the incumbent random-walks away from the
    // best; stagnation restarts snap it back, so the restarted run never
    // ends with an incumbent-driven best worse than the plain walk's.
    let inst = generate("ils-restart", 120, Style::Uniform, 12);
    let start = Tour::identity(120);
    let run = |restart| {
        let mut eng = SequentialTwoOpt::new();
        iterated_local_search(
            &mut eng,
            &inst,
            start.clone(),
            IlsOptions::new()
                .with_max_iterations(40u64)
                .with_acceptance(Acceptance::Always)
                .with_stagnation_restart(restart)
                .with_seed(9),
        )
        .unwrap()
    };
    let without = run(None);
    let with = run(Some(4));
    assert_eq!(without.restarts, 0);
    assert!(with.restarts > 0, "no restart triggered");
    // Both remain valid and tracked.
    with.best.validate().unwrap();
    assert!(with.best_length <= with.trace.first().unwrap().best_length);
}

#[test]
fn parallel_multistart_runs_gpu_chains() {
    use tsp_ils::parallel_multistart;
    let inst = generate("ils-ms", 100, Style::Uniform, 14);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(15);
    let starts: Vec<Tour> = (0..3).map(|_| Tour::random(100, &mut rng)).collect();
    let (best, all) = parallel_multistart(
        || GpuTwoOpt::new(spec::gtx_680_cuda()),
        &inst,
        starts,
        IlsOptions::new().with_max_iterations(8u64),
    )
    .unwrap();
    assert_eq!(all.len(), 3);
    for o in &all {
        assert!(best.best_length <= o.best_length);
        o.best.validate().unwrap();
    }
}

#[test]
fn budget_termination_works_under_each_engine() {
    let inst = generate("ils-budget", 200, Style::Uniform, 6);
    let start = Tour::identity(200);
    let mut gpu = GpuTwoOpt::new(spec::gtx_680_cuda());
    let out = iterated_local_search(
        &mut gpu,
        &inst,
        start,
        IlsOptions::new()
            .with_max_iterations(None)
            .with_max_modeled_seconds(0.01)
            .with_seed(1),
    )
    .unwrap();
    assert!(out.profile.modeled_seconds() >= 0.01);
    // It must have stopped shortly after the budget, not run forever.
    assert!(out.profile.modeled_seconds() < 0.1);
}
