//! The reproduction certificate: one integration test per published
//! claim, driven through the same public harness API the binaries use.
//! If this file is green, the paper's evaluation section regenerates.

use tsp_bench::{fig10, fig11, fig9, table1, table2};

#[test]
fn table1_memory_rows_match_the_paper() {
    let rows = table1::compute();
    assert_eq!(rows.len(), 12);
    let row = |name: &str| rows.iter().find(|r| r.name == name).unwrap();
    // Paper Table I extremes.
    assert!((row("kroE100").lut_mib - 0.04).abs() < 0.01);
    assert!((row("kroE100").coord_kib - 0.78).abs() < 0.02);
    assert!((row("fnl4461").lut_mib - 75.9).abs() < 1.0);
    assert!((row("fnl4461").coord_kib - 34.9).abs() < 0.5);
    // §IV capacity bounds.
    assert_eq!(tsp_core::lut::max_cities_in_shared(48 * 1024), 6144);
    assert_eq!(tsp_core::lut::max_tile_in_shared(48 * 1024), 3072);
}

#[test]
fn table2_single_run_shape_matches_the_paper() {
    // Functional rows up to 250 cities; everything else analytic.
    let rows = table2::compute(250);
    assert_eq!(rows.len(), 27, "all Table II instances present");

    let row = |name: &str| rows.iter().find(|r| r.name.contains(name)).unwrap();
    // berlin52 total ~81 us in the paper.
    let b = row("berlin52");
    assert!(
        (40e-6..200e-6).contains(&b.total_s),
        "berlin52 {}",
        b.total_s
    );
    // usa13509 total ~4.8 ms in the paper.
    let u = row("usa13509");
    assert!((2e-3..12e-3).contains(&u.total_s), "usa13509 {}", u.total_s);
    // lrb744710 kernel ~13 s in the paper.
    let l = row("lrb744710");
    assert!(
        (5.0..30.0).contains(&l.kernel_s),
        "lrb744710 {}",
        l.kernel_s
    );
    // checks/s saturates near the paper's ~21,652 M/s.
    assert!(
        (18_000.0..24_000.0).contains(&l.mchecks_per_s),
        "checks/s plateau {}",
        l.mchecks_per_s
    );
    // Transfer share monotone decline (§V).
    let first_share = (b.h2d_s + b.d2h_s) / b.total_s;
    let last_share = (l.h2d_s + l.d2h_s) / l.total_s;
    assert!(first_share > 0.5 && last_share < 0.01);
}

#[test]
fn fig9_gflops_match_the_papers_observations() {
    let curves = fig9::compute();
    let peak = |pat: &str| {
        curves
            .iter()
            .find(|c| c.device.contains(pat))
            .unwrap()
            .gflops
            .last()
            .copied()
            .unwrap()
    };
    // §V: "peak GPU performance of 680 GFLOP/s (GeForce using CUDA) and
    // 830 GFLOP/s (Radeon in OpenCL)".
    assert!((600.0..760.0).contains(&peak("GTX 680 (CUDA)")));
    assert!((740.0..920.0).contains(&peak("Radeon HD 7970 (OpenCL)")));
    // CPUs flat and low.
    assert!(peak("Xeon") < 25.0);
}

#[test]
fn fig10_speedup_claims_hold() {
    let (lo, hi) = fig10::claim_5_to_45x();
    // Abstract: "decreased approximately 5 to 45 times compared to a
    // corresponding parallel CPU code implementation using 6 cores" —
    // the top of the band must be reached; the bottom of the sweep is
    // transfer-bound (the paper's own small-instance caveat).
    assert!((30.0..55.0).contains(&hi), "upper speedup {hi}");
    assert!(lo < hi / 5.0, "speedup must grow across the sweep");
    // §I: "converges from up to 300 times faster compared to the
    // sequential CPU version".
    let seq = fig10::claim_up_to_300x();
    assert!((150.0..400.0).contains(&seq), "sequential ratio {seq}");
}

#[test]
fn fig11_convergence_separates_gpu_from_cpu() {
    // Functional mini-version of the sw24978 experiment.
    let c = fig11::compute(300, 10, 0x2013);
    // Same quality trajectory, different time axis.
    assert_eq!(
        c.gpu.last().unwrap().best_length,
        c.cpu.last().unwrap().best_length
    );
    assert!(
        c.speedup_to_quality > 5.0,
        "speedup {}",
        c.speedup_to_quality
    );
    // §V: no substantial advantage below ~200 cities.
    let small = fig11::compute(80, 6, 0x2013);
    assert!(small.speedup_to_quality < c.speedup_to_quality);
}

#[test]
fn worked_example_pr2392_striding() {
    // §IV.A: "For a 28 x 1024 configuration (CUDA blocks x threads) and
    // pr2392 problem, ceil(...) = 100 iterations will be necessary".
    let pairs = tsp_2opt::indexing::pair_count(2392);
    assert_eq!(
        tsp_2opt::indexing::iterations_per_thread(pairs, 28 * 1024),
        100
    );
    // §IV: kroE100's 4851 candidate swaps.
    assert_eq!(tsp_2opt::indexing::pair_count(100), 4851);
}
