//! End-to-end pipeline tests spanning every crate: instance generation →
//! construction → 2-opt descent (all engines) → ILS.

use gpu_sim::spec;
use tsp_2opt::{optimize, CpuParallelTwoOpt, GpuTwoOpt, SearchOptions, SequentialTwoOpt};
use tsp_construction::{multiple_fragment, nearest_neighbor, space_filling};
use tsp_core::Tour;
use tsp_ils::{iterated_local_search, IlsOptions};
use tsp_tsplib::{generate, Style};

#[test]
fn full_pipeline_on_every_backend_agrees() {
    let inst = generate("pipe", 300, Style::Clustered { clusters: 6 }, 11);
    let start = multiple_fragment(&inst);
    let initial_len = start.length(&inst);

    let mut results = Vec::new();
    {
        let mut t = start.clone();
        let mut e = SequentialTwoOpt::new();
        let s = optimize(&mut e, &inst, &mut t, SearchOptions::default()).unwrap();
        results.push((t, s));
    }
    {
        let mut t = start.clone();
        let mut e = CpuParallelTwoOpt::new();
        let s = optimize(&mut e, &inst, &mut t, SearchOptions::default()).unwrap();
        results.push((t, s));
    }
    for dev in [spec::gtx_680_cuda(), spec::radeon_7970()] {
        let mut t = start.clone();
        let mut e = GpuTwoOpt::new(dev);
        let s = optimize(&mut e, &inst, &mut t, SearchOptions::default()).unwrap();
        results.push((t, s));
    }

    let (ref_tour, ref_stats) = &results[0];
    for (t, s) in &results[1..] {
        assert_eq!(t.as_slice(), ref_tour.as_slice());
        assert_eq!(s.final_length, ref_stats.final_length);
        assert_eq!(s.sweeps, ref_stats.sweeps);
    }
    assert!(ref_stats.final_length < initial_len);
    assert!(ref_stats.reached_local_minimum);
    ref_tour.validate().unwrap();
}

#[test]
fn every_construction_feeds_the_descent() {
    let inst = generate("constructions", 200, Style::Uniform, 4);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(2);
    let starts = vec![
        ("mf", multiple_fragment(&inst)),
        ("nn", nearest_neighbor(&inst, 0)),
        ("hilbert", space_filling(&inst)),
        ("random", Tour::random(200, &mut rng)),
    ];
    let mut final_lengths = Vec::new();
    for (name, mut tour) in starts {
        let mut e = GpuTwoOpt::new(spec::gtx_680_cuda());
        let s = optimize(&mut e, &inst, &mut tour, SearchOptions::default()).unwrap();
        assert!(s.reached_local_minimum, "{name}");
        tour.validate().unwrap();
        final_lengths.push((name, s.initial_length, s.final_length));
    }
    // All local minima land in a sane band: within 20% of each other.
    let best = final_lengths.iter().map(|&(_, _, f)| f).min().unwrap();
    for (name, initial, fin) in &final_lengths {
        assert!(fin <= initial, "{name}");
        assert!(
            (*fin - best) as f64 / best as f64 <= 0.20,
            "{name}: {fin} vs best {best}"
        );
    }
}

#[test]
fn ils_with_gpu_engine_beats_plain_descent() {
    let inst = generate("ils-pipe", 250, Style::Uniform, 9);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(1);
    let start = Tour::random(250, &mut rng);

    let mut plain = start.clone();
    let mut e = GpuTwoOpt::new(spec::gtx_680_cuda());
    let plain_stats = optimize(&mut e, &inst, &mut plain, SearchOptions::default()).unwrap();

    let out = iterated_local_search(
        &mut e,
        &inst,
        start,
        IlsOptions::new().with_max_iterations(50u64),
    )
    .unwrap();
    assert!(
        out.best_length <= plain_stats.final_length,
        "ILS {} vs plain {}",
        out.best_length,
        plain_stats.final_length
    );
    out.best.validate().unwrap();
}

#[test]
fn explicit_matrix_instances_run_on_the_sequential_engine() {
    // Build a small explicit instance from generated coordinates, then
    // check the LUT path agrees with the coordinate path.
    let coord_inst = generate("explicit-src", 60, Style::Uniform, 3);
    let n = coord_inst.len();
    let mut w = vec![0i32; n * n];
    for i in 0..n {
        for j in 0..n {
            w[i * n + j] = coord_inst.dist(i, j);
        }
    }
    let matrix = tsp_core::ExplicitMatrix::from_full(n, w).unwrap();
    let explicit_inst = tsp_core::Instance::from_matrix("explicit", matrix, None).unwrap();

    let start = multiple_fragment(&coord_inst);
    let mut t1 = start.clone();
    let mut t2 = start;
    let mut e = SequentialTwoOpt::new();
    let s1 = optimize(&mut e, &coord_inst, &mut t1, SearchOptions::default()).unwrap();
    let s2 = optimize(&mut e, &explicit_inst, &mut t2, SearchOptions::default()).unwrap();
    assert_eq!(s1.final_length, s2.final_length);
    assert_eq!(t1.as_slice(), t2.as_slice());
}
