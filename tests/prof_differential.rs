//! Differential suite for the span profiler and device-memory ledger.
//!
//! The profiler is an observer: attaching one must not change a single
//! bit of any solve — tours, lengths, modeled clocks — across every
//! kernel strategy, for plain descents and for full ILS runs. The
//! ledger side is pinned against closed forms derived from the dense
//! and device-resident pipelines' buffer lifecycles (DESIGN.md §13):
//!
//! * dense re-upload pipelines allocate `coords` (8n bytes) plus the
//!   8-byte `best_out` word every sweep, so the device peak is exactly
//!   `8n + 8` and the `coords` allocation count equals the sweep count;
//! * the device-resident pipeline uploads `resident_coords` exactly
//!   once and reverses in place, with the same `8n + 8` peak;
//! * whatever mix of strategies runs, every allocation is freed by the
//!   time the engines drop (proptest over arbitrary solve sequences).

use proptest::prelude::*;
// `tsp_2opt::Strategy` collides with proptest's `Strategy` trait, so the
// kernel enum gets a local alias.
use tsp::prelude::*;
use tsp::twoopt::Strategy as Kernel;
use tsp_core::Point;
use tsp_tsplib::{generate, Style};

fn solver_for(strategy: Kernel, prof: Profiler, ils: Option<IlsOptions>) -> Solver {
    let mut b = Solver::builder()
        .construction(Construction::Identity)
        .strategy(strategy)
        .profiler(prof);
    if let Some(opts) = ils {
        b = b.ils(opts);
    }
    b.build()
}

fn ils_opts() -> IlsOptions {
    let mut opts = IlsOptions::default();
    opts.max_iterations = Some(4);
    opts.seed = 0xd1ff;
    opts
}

/// Run the same solve detached and attached and demand bit identity.
fn assert_inert(inst: &tsp_core::Instance, strategy: Kernel, ils: Option<IlsOptions>) {
    let plain = solver_for(strategy, Profiler::detached(), ils.clone())
        .run(inst)
        .expect("unprofiled solve succeeds");
    let prof = Profiler::attached();
    let profiled = solver_for(strategy, prof.clone(), ils)
        .run(inst)
        .expect("profiled solve succeeds");

    assert_eq!(plain.tour.as_slice(), profiled.tour.as_slice());
    assert_eq!(plain.length, profiled.length);
    assert_eq!(plain.initial_length, profiled.initial_length);
    assert_eq!(plain.iterations, profiled.iterations);
    // Modeled clocks are deterministic; compare exact bits, not "close".
    assert_eq!(
        plain.modeled_seconds().to_bits(),
        profiled.modeled_seconds().to_bits(),
        "profiling changed the modeled clock for {strategy:?}"
    );
    assert_eq!(plain.profile.pairs_checked, profiled.profile.pairs_checked);
    // The attached run actually observed something…
    assert!(prof.span_count() > 0, "no spans recorded for {strategy:?}");
    // …and the detached run left nothing behind.
    assert!(plain.prof.report().spans.is_empty());
    assert!(plain.memory.peak_bytes(0).is_none());
}

#[test]
fn profiling_is_bit_inert_for_descent_across_all_strategies() {
    let inst = generate("prof-diff", 96, Style::Uniform, 0x2013);
    for strategy in tsp::all_strategies(32, 8) {
        assert_inert(&inst, strategy, None);
    }
}

#[test]
fn profiling_is_bit_inert_for_ils_across_all_strategies() {
    let inst = generate("prof-diff-ils", 72, Style::Clustered { clusters: 6 }, 11);
    for strategy in tsp::all_strategies(32, 8) {
        assert_inert(&inst, strategy, Some(ils_opts()));
    }
}

/// Dense pipeline ledger: peak `8n + 8`, one `coords` upload per sweep.
#[test]
fn dense_ledger_matches_the_closed_form() {
    let n = 96;
    let inst = generate("prof-dense", n, Style::Uniform, 0x2013);
    let prof = Profiler::attached();
    solver_for(Kernel::Shared, prof.clone(), None)
        .run(&inst)
        .expect("solve succeeds");

    let report = prof.report();
    assert!(
        report.memory.balanced(),
        "engine dropped, ledger must balance"
    );
    let expected_peak = (Point::DEVICE_BYTES * n + 8) as u64;
    assert_eq!(report.memory.peak_bytes(0), Some(expected_peak));

    // The dense pipeline re-uploads the coordinate buffer every sweep,
    // so `coords` allocations must equal the sweep count in the span
    // tree — the ledger and the profiler describe the same run.
    let sweeps = report
        .spans
        .iter()
        .find(|s| s.path == "solve;descent;sweep")
        .expect("descent sweeps were spanned")
        .count;
    let coords = report.memory.label(0, "coords").expect("coords journaled");
    assert_eq!(coords.allocs, sweeps);
    assert_eq!(
        coords.alloc_bytes,
        sweeps * (Point::DEVICE_BYTES * n) as u64
    );
    assert_eq!(coords.upload_bytes, coords.alloc_bytes);
}

/// Device-resident ledger: same peak, but exactly one upload.
#[test]
fn resident_ledger_matches_the_closed_form() {
    let n = 96;
    let inst = generate("prof-resident", n, Style::Uniform, 0x2013);
    let prof = Profiler::attached();
    solver_for(Kernel::DeviceResident, prof.clone(), None)
        .run(&inst)
        .expect("solve succeeds");

    let report = prof.report();
    assert!(
        report.memory.balanced(),
        "engine dropped, ledger must balance"
    );
    let expected_peak = (Point::DEVICE_BYTES * n + 8) as u64;
    assert_eq!(report.memory.peak_bytes(0), Some(expected_peak));

    let resident = report
        .memory
        .label(0, "resident_coords")
        .expect("resident_coords journaled");
    assert_eq!(resident.allocs, 1, "resident coords upload exactly once");
    assert_eq!(resident.alloc_bytes, (Point::DEVICE_BYTES * n) as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary sequences of solves against one shared profiler: no
    /// interleaving of strategies, sizes, or ILS leaves a byte live or
    /// a free unmatched once the engines are gone.
    #[test]
    fn arbitrary_solve_sequences_balance_the_ledger(
        runs in proptest::collection::vec((8usize..48, 0usize..8, any::<bool>()), 1..5)
    ) {
        let prof = Profiler::attached();
        for (n, strategy_idx, use_ils) in runs {
            let inst = generate("prof-prop", n, Style::Uniform, n as u64);
            let strategy = tsp::all_strategies(16, 4)[strategy_idx];
            let ils = use_ils.then(ils_opts);
            solver_for(strategy, prof.clone(), ils)
                .run(&inst)
                .expect("solve succeeds");
        }
        let memory = prof.memory_report();
        prop_assert_eq!(memory.live_bytes(), 0);
        prop_assert!(memory.balanced());
    }
}
