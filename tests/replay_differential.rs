//! Differential suite for the flight-recorder subsystem, mirroring
//! `telemetry_differential.rs`: an attached [`FlightRecorder`] must
//! never change what a run computes, and a packaged recording must
//! replay bit-for-bit — identical tours, bit-identical modeled seconds,
//! a clean event-stream comparison — on every kernel strategy, for both
//! plain descents and ILS, and across sharded multistart chains. The
//! divergence bisector must pin an injected fault to exactly its event.

use tsp::prelude::*;
use tsp_replay::ReplayEvent;
use tsp_tsplib::{generate, Style};

/// Every strategy (including the inexact candidate family — replay
/// demands bit-identical re-execution, not dense-equal answers), from
/// the facade helper so new strategies cannot be silently skipped.
fn strategies() -> Vec<Strategy> {
    all_strategies(64, 12)
}

fn builder(strategy: Strategy) -> SolverBuilder {
    Solver::builder()
        .strategy(strategy)
        .construction(Construction::Random(5))
}

fn ils_opts() -> IlsOptions {
    IlsOptions::default()
        .with_max_iterations(4u64)
        .with_seed(13)
}

#[test]
fn descent_replays_bit_identically_on_every_strategy() {
    let inst = generate("rep-descent", 128, Style::Uniform, 3);
    for strategy in strategies() {
        let flight = FlightRecorder::attached();
        let solver = builder(strategy).record(flight).build();
        let ran = solver.run(&inst).unwrap();
        let recording = solver.recording(&inst).unwrap();
        // A plain descent records Start, the applied moves, DescentEnd,
        // Final.
        assert!(recording.len() >= 3, "{strategy:?}");

        let fresh = builder(strategy).build();
        let (solution, report) = fresh.replay(&inst, &recording).unwrap();
        assert!(report.is_clean(), "{strategy:?}:\n{report}");
        assert_eq!(report.events_checked, recording.len(), "{strategy:?}");
        assert_eq!(
            solution.tour.as_slice(),
            ran.tour.as_slice(),
            "{strategy:?}"
        );
        assert_eq!(
            solution.modeled_seconds().to_bits(),
            ran.modeled_seconds().to_bits(),
            "{strategy:?}"
        );
    }
}

#[test]
fn ils_replays_bit_identically_on_every_strategy() {
    let inst = generate("rep-ils", 96, Style::Clustered { clusters: 4 }, 7);
    for strategy in strategies() {
        let flight = FlightRecorder::attached();
        let solver = builder(strategy).ils(ils_opts()).record(flight).build();
        let ran = solver.run(&inst).unwrap();
        let recording = solver.recording(&inst).unwrap();
        // Every iteration logged its kick and its acceptance verdict.
        let events = recording.chain_events(0);
        let kicks = events
            .iter()
            .filter(|e| matches!(e, ReplayEvent::Kick { .. }))
            .count();
        let verdicts = events
            .iter()
            .filter(|e| matches!(e, ReplayEvent::Acceptance { .. }))
            .count();
        assert_eq!(kicks as u64, ran.iterations, "{strategy:?}");
        assert_eq!(verdicts as u64, ran.iterations, "{strategy:?}");

        let fresh = builder(strategy).ils(ils_opts()).build();
        let (solution, report) = fresh.replay(&inst, &recording).unwrap();
        assert!(report.is_clean(), "{strategy:?}:\n{report}");
        assert_eq!(
            solution.tour.as_slice(),
            ran.tour.as_slice(),
            "{strategy:?}"
        );
        assert_eq!(solution.length, ran.length, "{strategy:?}");
        assert_eq!(
            solution.modeled_seconds().to_bits(),
            ran.modeled_seconds().to_bits(),
            "{strategy:?}"
        );
    }
}

#[test]
fn recording_is_invisible_to_the_run() {
    // Attached vs detached flight recorder: identical tour, length,
    // iterations, and bit-identical modeled seconds.
    let inst = generate("rep-inv", 144, Style::Uniform, 8);
    for strategy in [
        Strategy::Auto,
        Strategy::DeviceResident,
        Strategy::Candidate { k: 12 },
    ] {
        let plain = builder(strategy)
            .ils(ils_opts())
            .build()
            .run(&inst)
            .unwrap();
        let recorded = builder(strategy)
            .ils(ils_opts())
            .record(FlightRecorder::attached())
            .build()
            .run(&inst)
            .unwrap();
        assert_eq!(
            plain.tour.as_slice(),
            recorded.tour.as_slice(),
            "{strategy:?}"
        );
        assert_eq!(plain.length, recorded.length, "{strategy:?}");
        assert_eq!(plain.iterations, recorded.iterations, "{strategy:?}");
        assert_eq!(
            plain.modeled_seconds().to_bits(),
            recorded.modeled_seconds().to_bits(),
            "{strategy:?}"
        );
    }
}

#[test]
fn sharded_multistart_replays_chain_stamped_sublogs() {
    let inst = generate("rep-shard", 80, Style::Uniform, 12);
    let build = || {
        Solver::builder()
            .construction(Construction::Random(2))
            .devices(2)
            .streams(2)
            .restarts(4)
            .ils(ils_opts())
    };
    let flight = FlightRecorder::attached();
    let solver = build().record(flight).build();
    let ran = solver.run(&inst).unwrap();
    assert_eq!(ran.chains, 4);
    let recording = solver.recording(&inst).unwrap();

    // Every chain owns a complete, chain-stamped sub-log.
    assert_eq!(recording.chains(), vec![0, 1, 2, 3]);
    for chain in recording.chains() {
        let events = recording.chain_events(chain);
        assert!(
            matches!(events.first(), Some(ReplayEvent::Start { .. })),
            "chain {chain} missing Start"
        );
        assert!(
            matches!(events.last(), Some(ReplayEvent::Final { .. })),
            "chain {chain} missing Final"
        );
    }

    let fresh = build().build();
    let (solution, report) = fresh.replay(&inst, &recording).unwrap();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.chains, 4);
    assert_eq!(solution.tour.as_slice(), ran.tour.as_slice());
    assert_eq!(
        solution.modeled_seconds().to_bits(),
        ran.modeled_seconds().to_bits()
    );
}

#[test]
fn bisector_localizes_a_flipped_acceptance_to_its_event() {
    let inst = generate("rep-bisect", 96, Style::Uniform, 19);
    let build = || {
        builder(Strategy::Auto).ils(
            IlsOptions::default()
                .with_max_iterations(6u64)
                .with_seed(23),
        )
    };
    let flight = FlightRecorder::attached();
    let solver = build().record(flight).build();
    solver.run(&inst).unwrap();
    let recording = solver.recording(&inst).unwrap();
    let fresh = build().build();

    // Flip each acceptance verdict in turn; the bisector must land on
    // exactly that event every time.
    let faults: Vec<usize> = recording
        .entries
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.event, ReplayEvent::Acceptance { .. }))
        .map(|(idx, _)| idx)
        .collect();
    assert!(faults.len() >= 2, "need several acceptance decisions");
    for fault in faults {
        let mut tampered = recording.clone();
        if let ReplayEvent::Acceptance { accepted, .. } = &mut tampered.entries[fault].event {
            *accepted = !*accepted;
        }
        let chain_index = tampered.entries[..fault]
            .iter()
            .filter(|e| e.chain == tampered.entries[fault].chain)
            .count();

        let (_, report) = fresh.replay(&inst, &tampered).unwrap();
        let divergence = report.divergence.expect("tampering must diverge");
        assert_eq!(divergence.chain, tampered.entries[fault].chain);
        assert_eq!(
            divergence.index, chain_index,
            "fault injected at entry {fault}"
        );
        // The diagnosis carries both sides of the disagreement.
        assert!(matches!(
            divergence.expected,
            Some(ReplayEvent::Acceptance { .. })
        ));
        assert!(matches!(
            divergence.actual,
            Some(ReplayEvent::Acceptance { .. })
        ));
    }
}
