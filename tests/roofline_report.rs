//! Roofline classification pinned against hand-computed arithmetic-
//! intensity thresholds for two real device specs (the paper's GTX 680
//! and the Radeon 7970), using synthetic kernels placed deliberately
//! on each side of each device's ridge point.
//!
//! Ridge point = sustained GFLOP/s ÷ global GB/s (FLOPs per byte). A
//! kernel with AI below the ridge is bandwidth-bound with attainable
//! rate `AI × bandwidth`; above it, compute-bound at the sustained
//! rate. Running the *same* two kernels against both specs shows the
//! classification move with the hardware, not the workload.

use gpu_sim::spec::{self, DeviceSpec};
use tsp_trace::{Bound, KernelCounters, RooflineReport, TraceEvent};

fn kernel(label: &str, flops: u64, global_bytes: u64) -> TraceEvent {
    TraceEvent::Kernel {
        label: label.into(),
        seconds: 1e-3,
        grid_dim: 28,
        block_dim: 1024,
        counters: KernelCounters {
            flops,
            global_read_bytes: global_bytes,
            ..Default::default()
        },
    }
}

/// Run the two probe kernels against `spec` and return the report.
fn probe(spec: &DeviceSpec) -> RooflineReport {
    let events = vec![
        TraceEvent::Device(spec.trace_info()),
        // AI = 2 FLOPs/byte: below both devices' ridge points.
        kernel("streaming", 2_000_000, 1_000_000),
        // AI = 1000 FLOPs/byte: far above both ridge points.
        kernel("on-chip", 1_000_000_000, 1_000_000),
    ];
    RooflineReport::from_events(&events).expect("device event present")
}

#[test]
fn gtx_680_ridge_and_classification_match_hand_computation() {
    let spec = spec::gtx_680_cuda();
    let report = probe(&spec);

    // Hand-computed ridge: sustained / 192 GB/s.
    let ridge = spec.sustained_gflops() / spec.global_bandwidth_gbs;
    assert!((report.ridge_intensity - ridge).abs() < 1e-12);
    assert!(
        ridge > 2.0 && ridge < 1000.0,
        "probe kernels must straddle the ridge ({ridge})"
    );

    let streaming = report.kernel("streaming").unwrap();
    assert_eq!(streaming.bound, Bound::Bandwidth);
    // Attainable = AI × bandwidth = 2 × 192 = 384 GFLOP/s.
    assert!((streaming.attainable_gflops - 2.0 * spec.global_bandwidth_gbs).abs() < 1e-9);

    let on_chip = report.kernel("on-chip").unwrap();
    assert_eq!(on_chip.bound, Bound::Compute);
    assert!((on_chip.attainable_gflops - spec.sustained_gflops()).abs() < 1e-9);
    // Achieved: 1e9 FLOPs in 1 ms = 1000 GFLOP/s, above the GTX 680's
    // sustained roof — efficiency > 1 flags a mis-modeled kernel.
    assert!((on_chip.achieved_gflops - 1000.0).abs() < 1e-9);
    assert!(on_chip.efficiency() > 1.0);
}

#[test]
fn radeon_7970_moves_the_ridge_but_not_the_verdicts() {
    let gtx = probe(&spec::gtx_680_cuda());
    let radeon_spec = spec::radeon_7970();
    let radeon = probe(&radeon_spec);

    // Different hardware, different ridge…
    let ridge = radeon_spec.sustained_gflops() / radeon_spec.global_bandwidth_gbs;
    assert!((radeon.ridge_intensity - ridge).abs() < 1e-12);
    assert!((radeon.ridge_intensity - gtx.ridge_intensity).abs() > 1e-6);

    // …and a different bandwidth roof over the same streaming kernel
    // (2 FLOPs/byte × 264 GB/s vs × 192 GB/s).
    let streaming = radeon.kernel("streaming").unwrap();
    assert_eq!(streaming.bound, Bound::Bandwidth);
    assert!((streaming.attainable_gflops - 2.0 * radeon_spec.global_bandwidth_gbs).abs() < 1e-9);
    assert!(
        streaming.attainable_gflops > gtx.kernel("streaming").unwrap().attainable_gflops,
        "the 7970's wider bus must raise the bandwidth roof"
    );

    // The verdicts themselves are stable: 2 FLOPs/byte is below and
    // 1000 FLOPs/byte above the ridge on both devices.
    let on_chip = radeon.kernel("on-chip").unwrap();
    assert_eq!(on_chip.bound, Bound::Compute);
    assert!((on_chip.attainable_gflops - radeon_spec.sustained_gflops()).abs() < 1e-9);
}

#[test]
fn real_shared_kernel_sits_compute_bound_on_the_gtx_680() {
    // The paper's locality argument, quantified: one real shared-memory
    // sweep on the GTX 680 must classify as compute-bound (that is the
    // point of Optimizations 1 & 2).
    use tsp_2opt::{GpuTwoOpt, Strategy, TwoOptEngine};
    use tsp_core::Tour;
    use tsp_trace::Recorder;

    let inst = tsp_tsplib::generate("roofline", 512, tsp_tsplib::Style::Uniform, 3);
    let recorder = Recorder::enabled();
    let mut engine = GpuTwoOpt::new(spec::gtx_680_cuda())
        .with_strategy(Strategy::Shared)
        .with_recorder(recorder.clone());
    engine.best_move(&inst, &Tour::identity(512)).unwrap();

    let report = RooflineReport::from_events(&recorder.events()).unwrap();
    let shared = report.kernel("2opt-eval-shared").expect("kernel recorded");
    assert_eq!(shared.bound, Bound::Compute);
    assert!(
        shared.arithmetic_intensity > report.ridge_intensity,
        "shared kernel AI {} must clear the ridge {}",
        shared.arithmetic_intensity,
        report.ridge_intensity
    );
}
