//! Cross-crate differential suite for the sharded multistart driver:
//! sharding ILS chains over a device pool (any devices × streams shape)
//! must be *bit-identical* to the host-threaded `parallel_multistart`
//! under equal per-chain seeds, for every kernel strategy — and the
//! stream scheduler must actually buy modeled wall time on a
//! transfer-bound instance.

use gpu_sim::{spec, DevicePool};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tsp_2opt::{GpuTwoOpt, Strategy};
use tsp_core::Tour;
use tsp_ils::{parallel_multistart, IlsOptions, ShardedMultistart};
use tsp_telemetry::{Journal, JournalEvent};
use tsp_tsplib::{generate, Style};

fn random_starts(n: usize, count: usize, seed: u64) -> Vec<Tour> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count).map(|_| Tour::random(n, &mut rng)).collect()
}

#[test]
fn sharded_is_bit_identical_to_host_threads_for_every_strategy() {
    let n = 128;
    let inst = generate("shard-diff", n, Style::Clustered { clusters: 6 }, 2);
    let starts = random_starts(n, 6, 0x5eed);
    let opts = IlsOptions::new().with_max_iterations(4u64).with_seed(0x77);
    let tile = (n / 8).clamp(3, 3071);

    for strategy in [
        Strategy::Auto,
        Strategy::Shared,
        Strategy::Tiled { tile },
        Strategy::GlobalOnly,
        Strategy::Unordered,
        Strategy::DeviceResident,
    ] {
        let (host_best, host_all) = parallel_multistart(
            || GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy),
            &inst,
            starts.clone(),
            opts.clone(),
        )
        .unwrap();

        // 2 devices × 3 streams: chains wrap around the 6 lanes.
        let pool = DevicePool::homogeneous(spec::gtx_680_cuda(), 2, 3);
        let sharded = ShardedMultistart::new(pool)
            .run(
                |device, stream| {
                    GpuTwoOpt::on_stream(device.clone(), stream).with_strategy(strategy)
                },
                &inst,
                starts.clone(),
                opts.clone(),
            )
            .unwrap();

        assert_eq!(sharded.chains.len(), host_all.len(), "{strategy:?}");
        for (i, (h, s)) in host_all.iter().zip(&sharded.chains).enumerate() {
            assert_eq!(h.best_length, s.best_length, "{strategy:?} chain {i}");
            assert_eq!(
                h.best.as_slice(),
                s.best.as_slice(),
                "{strategy:?} chain {i}"
            );
            assert_eq!(h.iterations, s.iterations, "{strategy:?} chain {i}");
            assert_eq!(h.accepted, s.accepted, "{strategy:?} chain {i}");
            assert_eq!(
                h.profile, s.profile,
                "{strategy:?} chain {i}: modeled sweep costs"
            );
        }
        assert_eq!(
            sharded.best.best_length, host_best.best_length,
            "{strategy:?}"
        );
        assert_eq!(
            sharded.best.best.as_slice(),
            host_best.best.as_slice(),
            "{strategy:?}: reduction must break ties like parallel_multistart"
        );
    }
}

#[test]
fn pool_shape_never_changes_the_reduced_best() {
    // The same chains reduced over 1x1, 1x4, 3x2 and 4x1 pools must
    // produce the same winner — scheduling is timing-only.
    let n = 96;
    let inst = generate("shard-shapes", n, Style::Uniform, 5);
    let starts = random_starts(n, 8, 0xbeef);
    let opts = IlsOptions::new().with_max_iterations(3u64).with_seed(1);

    let mut winners = Vec::new();
    for (devices, streams) in [(1, 1), (1, 4), (3, 2), (4, 1)] {
        let pool = DevicePool::homogeneous(spec::gtx_680_cuda(), devices, streams);
        let out = ShardedMultistart::new(pool)
            .run(
                |device, stream| GpuTwoOpt::on_stream(device.clone(), stream),
                &inst,
                starts.clone(),
                opts.clone(),
            )
            .unwrap();
        assert_eq!(out.reports.len(), devices);
        winners.push((out.best.best_length, out.best.best.as_slice().to_vec()));
    }
    for w in &winners[1..] {
        assert_eq!(w, &winners[0]);
    }
}

#[test]
fn second_stream_strictly_reduces_modeled_wall_time_when_transfer_bound() {
    // n = 96 on the GTX 680 is transfer-bound (PCIe latency dominates
    // the tiny kernel), so overlapping one chain's copies with
    // another's kernels must strictly shrink the device makespan.
    let n = 96;
    let inst = generate("shard-streams", n, Style::Uniform, 9);
    let starts = random_starts(n, 8, 0xfeed);
    let opts = IlsOptions::new().with_max_iterations(2u64).with_seed(4);

    let run = |streams: usize| {
        let pool = DevicePool::homogeneous(spec::gtx_680_cuda(), 1, streams);
        ShardedMultistart::new(pool)
            .run(
                |device, stream| GpuTwoOpt::on_stream(device.clone(), stream),
                &inst,
                starts.clone(),
                opts.clone(),
            )
            .unwrap()
    };
    let serial = run(1);
    let dual = run(2);

    assert_eq!(serial.overlap(), 0.0, "one stream cannot overlap");
    assert!(dual.overlap() > 0.0, "two streams must overlap");
    assert!(
        dual.wall_seconds() < serial.wall_seconds(),
        "2 streams ({}) must beat 1 stream ({})",
        dual.wall_seconds(),
        serial.wall_seconds()
    );
    // Identical chains => identical total submitted work.
    let rel = (dual.busy_seconds() - serial.busy_seconds()).abs() / serial.busy_seconds();
    assert!(rel < 1e-9, "busy time must not change with streams");
}

#[test]
fn journal_chain_ids_stay_dense_with_more_chains_than_lanes() {
    // 10 chains over a 2×2 pool: every lane hosts several chains in
    // turn, and `Journal::for_chain` must stamp each chain's records
    // with its own id — dense (0..chains, no gaps) and collision-free
    // (no record from chain a carrying chain b's id), regardless of
    // which lane the chain landed on.
    let n = 64;
    let chains = 10usize;
    let iterations = 3u64;
    let inst = generate("shard-journal", n, Style::Uniform, 21);
    let starts = random_starts(n, chains, 0xcafe);
    let journal = Journal::attached();
    let opts = IlsOptions::new()
        .with_max_iterations(iterations)
        .with_seed(0x91)
        .with_journal(journal.clone());

    let pool = DevicePool::homogeneous(spec::gtx_680_cuda(), 2, 2);
    let out = ShardedMultistart::new(pool)
        .run(
            |device, stream| GpuTwoOpt::on_stream(device.clone(), stream),
            &inst,
            starts,
            opts,
        )
        .unwrap();
    assert_eq!(out.chains.len(), chains);

    let records = journal.records();
    let mut seen: Vec<u64> = records.iter().map(|r| r.chain).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen,
        (0..chains as u64).collect::<Vec<u64>>(),
        "chain ids must be exactly 0..{chains}, dense and collision-free"
    );

    for chain in 0..chains as u64 {
        let chain_records: Vec<_> = records.iter().filter(|r| r.chain == chain).collect();
        let count = |event: JournalEvent| chain_records.iter().filter(|r| r.event == event).count();
        assert_eq!(count(JournalEvent::Initial), 1, "chain {chain}");
        assert_eq!(count(JournalEvent::Final), 1, "chain {chain}");
        let verdicts = chain_records
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    JournalEvent::Improved | JournalEvent::Accepted | JournalEvent::Rejected
                )
            })
            .count();
        assert_eq!(
            verdicts as u64, iterations,
            "chain {chain}: one verdict per iteration"
        );
        // A chain's records appear in its own iteration order even
        // though lanes interleave appends into the shared buffer.
        let iters: Vec<u64> = chain_records.iter().map(|r| r.iteration).collect();
        let mut sorted = iters.clone();
        sorted.sort_unstable();
        assert_eq!(iters, sorted, "chain {chain}: iterations in order");
    }
}
