//! Failure-injection tests for the simulated device: the limits that
//! shape the paper's design must actually bite.

use gpu_sim::{spec, Device, SimError};
use tsp_2opt::{GpuTwoOpt, SearchOptions, Strategy, TwoOptEngine};
use tsp_core::Tour;
use tsp_tsplib::{generate, Style};

#[test]
fn shared_memory_limit_forces_the_division_scheme() {
    // 6145 cities do not fit 48 kB as a single range (the paper's
    // 6144-city bound)...
    let n = 6145;
    let inst = generate("limit", n, Style::Uniform, 1);
    let tour = Tour::identity(n);
    let mut forced_shared = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(Strategy::Shared);
    match forced_shared.best_move(&inst, &tour) {
        Err(tsp_2opt::EngineError::Sim(SimError::SharedMemExceeded { requested, limit })) => {
            assert_eq!(requested, n * 8);
            assert_eq!(limit, 48 * 1024);
        }
        other => panic!("expected SharedMemExceeded, got {other:?}"),
    }
    // ...while Auto falls over to the tiled kernel and succeeds.
    let mut auto = GpuTwoOpt::new(spec::gtx_680_cuda());
    let (mv, prof) = auto.best_move(&inst, &tour).unwrap();
    assert!(mv.is_some());
    assert_eq!(prof.pairs_checked, tsp_2opt::indexing::pair_count(n));
}

#[test]
fn device_memory_capacity_is_enforced() {
    let mut s = spec::gtx_680_cuda();
    s.global_mem_bytes = 1024; // a 1 kB "GPU"
    let dev = Device::new(s);
    let err = dev.alloc(vec![0u64; 1024]).unwrap_err();
    assert!(matches!(err, SimError::OutOfMemory { .. }));
    // Accounting is restored after failures and drops.
    assert_eq!(dev.allocated_bytes(), 0);
    let buf = dev.alloc(vec![0u8; 1000]).unwrap();
    assert_eq!(dev.allocated_bytes(), 1000);
    drop(buf);
    assert_eq!(dev.allocated_bytes(), 0);
}

#[test]
fn engine_allocations_are_released_every_sweep() {
    let inst = generate("leak", 500, Style::Uniform, 2);
    let mut tour = Tour::identity(500);
    let mut engine = GpuTwoOpt::new(spec::gtx_680_cuda());
    tsp_2opt::optimize(
        &mut engine,
        &inst,
        &mut tour,
        SearchOptions::new().with_max_sweeps(10u64),
    )
    .unwrap();
    // No buffers may survive between sweeps.
    assert_eq!(engine.device().allocated_bytes(), 0);
}

#[test]
fn tiny_and_degenerate_instances_are_safe() {
    // n = 4 instance with all-identical points: zero deltas everywhere,
    // engine reports a local minimum immediately.
    let inst = tsp_core::Instance::new(
        "degenerate",
        tsp_core::Metric::Euc2d,
        vec![tsp_core::Point::new(5.0, 5.0); 4],
    )
    .unwrap();
    let mut tour = Tour::identity(4);
    let mut engine = GpuTwoOpt::new(spec::gtx_680_cuda());
    let stats =
        tsp_2opt::optimize(&mut engine, &inst, &mut tour, SearchOptions::default()).unwrap();
    assert!(stats.reached_local_minimum);
    assert_eq!(stats.improving_moves, 0);
    assert_eq!(stats.final_length, 0);
}

#[test]
fn zero_and_oversized_launches_are_rejected() {
    use gpu_sim::{Kernel, LaunchConfig, ThreadCtx};
    struct Nop;
    impl Kernel for Nop {
        type Shared = ();
        fn shared_bytes(&self) -> usize {
            0
        }
        fn make_shared(&self) {}
        fn num_phases(&self) -> usize {
            1
        }
        fn run(&self, _: usize, _: &mut ThreadCtx<'_>, _: &mut ()) {}
    }
    let dev = Device::new(spec::gtx_680_cuda());
    assert!(matches!(
        dev.launch(LaunchConfig::new(0, 1), &Nop),
        Err(SimError::InvalidLaunch(_))
    ));
    assert!(matches!(
        dev.launch(LaunchConfig::new(1, 0), &Nop),
        Err(SimError::InvalidLaunch(_))
    ));
    assert!(matches!(
        dev.launch(LaunchConfig::new(1, 100_000), &Nop),
        Err(SimError::InvalidLaunch(_))
    ));
    assert!(dev.launch(LaunchConfig::new(1, 32), &Nop).is_ok());
}

#[test]
fn modeled_times_are_deterministic_across_runs() {
    let inst = generate("det-sim", 800, Style::Uniform, 6);
    let tour = Tour::identity(800);
    let mut a = GpuTwoOpt::new(spec::gtx_680_cuda());
    let mut b = GpuTwoOpt::new(spec::gtx_680_cuda());
    let (mv_a, pa) = a.best_move(&inst, &tour).unwrap();
    let (mv_b, pb) = b.best_move(&inst, &tour).unwrap();
    assert_eq!(mv_a, mv_b);
    assert_eq!(pa, pb, "profiles must be bit-identical");
}
