//! Differential suite across every kernel strategy.
//!
//! All dense pipelines — the serial re-upload ones (`Auto`, `Shared`,
//! `Tiled`, `GlobalOnly`, `Unordered`) and the device-resident one —
//! implement the *same* best-improvement 2-opt semantics, so on any
//! instance they must return the identical packed best move. The
//! candidate family answers the best move *within its k-nearest
//! neighbourhood*: with complete lists (k = n - 1) that is the dense
//! move bit-for-bit, and with truncated lists it must match the
//! host-side mirror [`CandidateLists::best_candidate_move`]. This suite
//! pins both contracts across spatial structure (uniform and clustered
//! fields) and across the size ladder the kernels specialize over: tiny
//! (n = 8), the paper's berlin52, a mid shared-memory size (512), the
//! largest size that still fits every shared variant (3073), and one
//! past both the `Shared` (6144 points) and `Unordered` (4096 points)
//! capacities (7000), where the capacity-limited strategies must error
//! instead of answering wrongly.
//!
//! The strategy lists all derive from [`tsp::all_strategies`], so a
//! freshly added strategy cannot be silently skipped here.

use gpu_sim::{spec, SimError};
use tsp::all_strategies;
use tsp_2opt::{
    optimize, BestMove, CandidateLists, EngineError, GpuTwoOpt, SearchOptions, SequentialTwoOpt,
    Strategy, TwoOptEngine,
};
use tsp_core::{Instance, Tour};
use tsp_tsplib::{generate, Style};

/// Tour used for every differential check: deterministic and decidedly
/// non-optimal, so an improving move exists at every size.
fn scrambled_tour(n: usize) -> Tour {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(0x5eed ^ n as u64);
    Tour::random(n, &mut rng)
}

/// A tile size valid at every n (capacity 3071) that still produces a
/// multi-tile decomposition for all but the smallest instances.
fn tile_for(n: usize) -> usize {
    (n / 8).clamp(3, 3071)
}

fn reference_move(inst: &Instance, tour: &Tour) -> Option<BestMove> {
    let mut seq = SequentialTwoOpt::new();
    let (mv, _) = seq.best_move(inst, tour).unwrap();
    mv
}

fn strategy_move(inst: &Instance, tour: &Tour, strategy: Strategy) -> Option<BestMove> {
    let mut gpu = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
    let (mv, _) = gpu.best_move(inst, tour).unwrap();
    mv
}

fn instances_of(n: usize) -> Vec<Instance> {
    vec![
        generate("diff-uniform", n, Style::Uniform, 7),
        generate("diff-clustered", n, Style::Clustered { clusters: 5 }, 7),
    ]
}

/// Run every strategy at instance size `n` with candidate lists of `k`
/// neighbours. The dense strategies must reproduce the sequential best
/// move exactly; the candidate family must reproduce it too when its
/// lists are complete (`k = n - 1`), and otherwise must match the
/// host-side candidate-neighbourhood mirror.
fn assert_all_strategies_agree(n: usize, k: usize) {
    for inst in instances_of(n) {
        let tour = scrambled_tour(n);
        let dense = reference_move(&inst, &tour);
        let sparse = if k + 1 < n {
            CandidateLists::build(&inst, k).best_candidate_move(&inst, &tour)
        } else {
            dense
        };
        for strategy in all_strategies(tile_for(n), k) {
            let expected = match strategy {
                Strategy::Candidate { .. } | Strategy::CandidateResident { .. } => sparse,
                _ => dense,
            };
            let got = strategy_move(&inst, &tour, strategy);
            assert_eq!(got, expected, "{} n={n} {strategy:?}", inst.name());
        }
    }
}

#[test]
fn all_strategies_agree_tiny() {
    assert_all_strategies_agree(8, 7);
}

#[test]
fn all_strategies_agree_berlin52_sized() {
    assert_all_strategies_agree(52, 51);
}

#[test]
fn all_strategies_agree_mid_shared() {
    assert_all_strategies_agree(512, 511);
}

#[test]
fn all_strategies_agree_at_shared_variant_capacity() {
    // 3073 * 8 B = 24.6 kB (ordered) and 3073 * 12 B = 36.9 kB
    // (unordered) both fit the 48 kB limit; past the 3071-position tile
    // capacity, so the tiled path genuinely decomposes. Complete
    // candidate lists cost O(n² log n) host work at this size, so the
    // candidate family runs at a realistic k = 16 and is checked against
    // its host mirror instead of the dense move.
    assert_all_strategies_agree(3073, 16);
}

#[test]
fn capable_strategies_agree_past_shared_capacity() {
    let n = 7000;
    let k = 16;
    for inst in instances_of(n) {
        let tour = scrambled_tour(n);
        let dense = reference_move(&inst, &tour);
        let sparse = CandidateLists::build(&inst, k).best_candidate_move(&inst, &tour);
        assert!(sparse.is_some(), "a scrambled tour must have k-NN moves");
        for strategy in all_strategies(tile_for(n), k) {
            // The capacity-limited variants refuse at this size; the
            // companion test below pins the exact error they raise.
            if matches!(strategy, Strategy::Shared | Strategy::Unordered) {
                continue;
            }
            let expected = match strategy {
                Strategy::Candidate { .. } | Strategy::CandidateResident { .. } => sparse,
                _ => dense,
            };
            let got = strategy_move(&inst, &tour, strategy);
            assert_eq!(got, expected, "{} n={n} {strategy:?}", inst.name());
        }
    }
}

#[test]
fn capacity_limited_strategies_error_past_shared_capacity() {
    // 7000 points: 56 kB ordered (> 48 kB) and 84 kB unordered — both
    // forced variants must refuse, not truncate.
    let n = 7000;
    let inst = generate("diff-uniform", n, Style::Uniform, 7);
    let tour = scrambled_tour(n);
    for strategy in [Strategy::Shared, Strategy::Unordered] {
        let mut gpu = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
        assert!(
            matches!(
                gpu.best_move(&inst, &tour),
                Err(EngineError::Sim(SimError::SharedMemExceeded { .. }))
            ),
            "{strategy:?} must exceed shared memory at n={n}"
        );
    }
}

#[test]
fn device_resident_descent_tracks_serial_descent() {
    // Beyond single sweeps: a capped descent (reversal kernel active
    // from sweep 2 on) stays move-for-move identical to the serial
    // Algorithm-2 pipeline.
    let n = 512;
    let inst = generate("diff-descent", n, Style::Clustered { clusters: 5 }, 3);
    let opts = SearchOptions::new().with_max_sweeps(10u64);

    let mut t_serial = scrambled_tour(n);
    let mut serial = GpuTwoOpt::new(spec::gtx_680_cuda());
    let a = optimize(&mut serial, &inst, &mut t_serial, opts).unwrap();

    let mut t_resident = scrambled_tour(n);
    let mut resident = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(Strategy::DeviceResident);
    let b = optimize(&mut resident, &inst, &mut t_resident, opts).unwrap();

    assert_eq!(t_serial.as_slice(), t_resident.as_slice());
    assert_eq!(a.final_length, b.final_length);
    assert_eq!(a.sweeps, b.sweeps);
    // The resident pipeline paid one upload and n-1 reversals; the
    // serial one paid n uploads and no reversals.
    assert!(b.profile.reversal_seconds > 0.0);
    assert_eq!(a.profile.reversal_seconds, 0.0);
    assert!(b.profile.h2d_seconds < a.profile.h2d_seconds);
}
