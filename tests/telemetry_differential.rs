//! Differential suite for the live-telemetry subsystem, mirroring
//! `trace_differential.rs`: an attached [`Telemetry`] registry (and
//! [`Journal`]) must never change what the engines compute — identical
//! moves and tours, bit-identical modeled times — and the registry's
//! histograms must agree *exactly* with the [`MetricsSnapshot`]
//! aggregates computed from a recorder watching the same run, because
//! both fold the same f64 observations in the same order.

use gpu_sim::spec;
use tsp_2opt::{optimize, optimize_observed, GpuTwoOpt, SearchOptions, Strategy, TwoOptEngine};
use tsp_core::Tour;
use tsp_ils::{iterated_local_search, IlsOptions};
use tsp_telemetry::{parse_text, Journal, Telemetry};
use tsp_trace::{MetricsSnapshot, Recorder};
use tsp_tsplib::{generate, Style};

fn scrambled_tour(n: usize) -> Tour {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(0x7e1e ^ n as u64);
    Tour::random(n, &mut rng)
}

const ALL_STRATEGIES: [Strategy; 6] = [
    Strategy::Auto,
    Strategy::Shared,
    Strategy::Tiled { tile: 64 },
    Strategy::GlobalOnly,
    Strategy::Unordered,
    Strategy::DeviceResident,
];

#[test]
fn telemetry_is_invisible_to_every_strategy() {
    // Same instance, same tour: best_move with an attached registry
    // must return the identical move and a bit-identical cost profile
    // for all six kernel strategies.
    let n = 256;
    let inst = generate("tel-diff", n, Style::Clustered { clusters: 5 }, 11);
    let tour = scrambled_tour(n);
    for strategy in ALL_STRATEGIES {
        let mut plain = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
        let (mv_plain, p_plain) = plain.best_move(&inst, &tour).unwrap();

        let telemetry = Telemetry::attached();
        let mut observed = GpuTwoOpt::new(spec::gtx_680_cuda())
            .with_strategy(strategy)
            .with_telemetry(&telemetry);
        let (mv_observed, p_observed) = observed.best_move(&inst, &tour).unwrap();

        assert_eq!(mv_plain, mv_observed, "{strategy:?}");
        assert_eq!(p_plain, p_observed, "{strategy:?}");
        assert_eq!(
            p_plain.modeled_seconds().to_bits(),
            p_observed.modeled_seconds().to_bits(),
            "{strategy:?}"
        );
        let launches = telemetry
            .registry()
            .unwrap()
            .counter_value_with("tsp_gpu_kernel_launches_total", &[("device", "0")])
            .unwrap_or(0.0);
        assert!(launches >= 1.0, "{strategy:?} counted no kernel launches");
    }
}

#[test]
fn telemetry_is_invisible_to_a_full_descent() {
    let n = 300;
    let inst = generate("tel-descent", n, Style::Uniform, 4);

    let mut t_plain = scrambled_tour(n);
    let mut plain = GpuTwoOpt::new(spec::gtx_680_cuda());
    let a = optimize(&mut plain, &inst, &mut t_plain, SearchOptions::default()).unwrap();

    let telemetry = Telemetry::attached();
    let mut t_observed = scrambled_tour(n);
    let mut observed = GpuTwoOpt::new(spec::gtx_680_cuda()).with_telemetry(&telemetry);
    let b = optimize_observed(
        &mut observed,
        &inst,
        &mut t_observed,
        SearchOptions::default(),
        &Recorder::disabled(),
        &telemetry,
    )
    .unwrap();

    assert_eq!(t_plain.as_slice(), t_observed.as_slice());
    assert_eq!(a.sweeps, b.sweeps);
    assert_eq!(a.final_length, b.final_length);
    assert_eq!(a.modeled_seconds().to_bits(), b.modeled_seconds().to_bits());
    let reg = telemetry.registry().unwrap();
    assert_eq!(
        reg.counter_value("tsp_search_sweeps_total"),
        Some(b.sweeps as f64)
    );
}

#[test]
fn telemetry_is_invisible_to_ils_on_every_strategy() {
    let n = 120;
    let inst = generate("tel-ils", n, Style::Clustered { clusters: 4 }, 9);
    let start = scrambled_tour(n);
    let opts = IlsOptions::new().with_max_iterations(4u64).with_seed(9);

    for strategy in ALL_STRATEGIES {
        let mut plain = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
        let a = iterated_local_search(&mut plain, &inst, start.clone(), opts.clone()).unwrap();

        let telemetry = Telemetry::attached();
        let journal = Journal::attached();
        let mut observed = GpuTwoOpt::new(spec::gtx_680_cuda())
            .with_strategy(strategy)
            .with_telemetry(&telemetry);
        let observed_opts = opts
            .clone()
            .with_telemetry(telemetry.clone())
            .with_journal(journal.clone());
        let b = iterated_local_search(&mut observed, &inst, start.clone(), observed_opts).unwrap();

        assert_eq!(a.best_length, b.best_length, "{strategy:?}");
        assert_eq!(a.best.as_slice(), b.best.as_slice(), "{strategy:?}");
        assert_eq!(a.accepted, b.accepted, "{strategy:?}");
        assert_eq!(
            a.profile.modeled_seconds().to_bits(),
            b.profile.modeled_seconds().to_bits(),
            "{strategy:?}"
        );
        assert!(!journal.is_empty(), "{strategy:?} journaled nothing");
    }
}

#[test]
fn histograms_agree_exactly_with_the_metrics_snapshot() {
    // Watch the same serial-path run with both observability systems:
    // a Recorder (event stream -> MetricsSnapshot fold) and a Telemetry
    // registry (atomic histograms). Both accumulate the identical f64
    // sequence in submission order, so sums match to the bit and
    // counts match exactly.
    let n = 200;
    let inst = generate("tel-exact", n, Style::Uniform, 6);
    let recorder = Recorder::enabled();
    let telemetry = Telemetry::attached();
    let mut engine = GpuTwoOpt::new(spec::gtx_680_cuda())
        .with_recorder(recorder.clone())
        .with_telemetry(&telemetry);
    let mut tour = scrambled_tour(n);
    optimize_observed(
        &mut engine,
        &inst,
        &mut tour,
        SearchOptions::default(),
        &recorder,
        &telemetry,
    )
    .unwrap();

    let snapshot = MetricsSnapshot::from_events(&recorder.events());
    let reg = telemetry.registry().unwrap();
    let device = [("device", "0")];

    let (kernel_sum, kernel_count) = reg
        .histogram_totals_with("tsp_gpu_kernel_seconds", &device)
        .expect("kernel histogram present");
    let snapshot_calls: u64 = snapshot.kernels.iter().map(|k| k.calls).sum();
    assert_eq!(kernel_count, snapshot_calls);
    assert_eq!(kernel_sum.to_bits(), snapshot.kernel_seconds().to_bits());

    let (h2d_sum, h2d_count) = reg
        .histogram_totals_with("tsp_gpu_h2d_seconds", &device)
        .expect("h2d histogram present");
    assert_eq!(h2d_count, snapshot.h2d.calls);
    assert_eq!(h2d_sum.to_bits(), snapshot.h2d.seconds.to_bits());
    assert_eq!(
        reg.counter_value_with("tsp_gpu_h2d_bytes_total", &device),
        Some(snapshot.h2d.bytes as f64)
    );

    let (d2h_sum, d2h_count) = reg
        .histogram_totals_with("tsp_gpu_d2h_seconds", &device)
        .expect("d2h histogram present");
    assert_eq!(d2h_count, snapshot.d2h.calls);
    assert_eq!(d2h_sum.to_bits(), snapshot.d2h.seconds.to_bits());

    assert_eq!(
        reg.counter_value("tsp_search_sweeps_total"),
        Some(snapshot.sweeps as f64)
    );

    // And the full registry exposes as valid Prometheus text format.
    let families = parse_text(&telemetry.expose()).expect("valid exposition");
    assert!(families.iter().any(|f| f.name == "tsp_gpu_kernel_seconds"));
}
