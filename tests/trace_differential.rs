//! Differential suite for the tracing subsystem: an attached
//! [`Recorder`] must never change what the engines compute — identical
//! moves, bit-identical modeled times — and the metrics derived from
//! the event stream must agree bit-for-bit with the analytic model.

use gpu_sim::spec;
use tsp_2opt::gpu::model::{model_auto_sweep, ModeledSweep};
use tsp_2opt::{
    optimize, optimize_with_recorder, GpuTwoOpt, SearchOptions, Strategy, TwoOptEngine,
};
use tsp_construction::multiple_fragment;
use tsp_core::Tour;
use tsp_ils::{iterated_local_search, IlsOptions};
use tsp_trace::{chrome_trace, json, MetricsSnapshot, Recorder, TraceEvent};
use tsp_tsplib::{generate, Style};

fn scrambled_tour(n: usize) -> Tour {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(0x7ace ^ n as u64);
    Tour::random(n, &mut rng)
}

#[test]
fn tracing_is_invisible_to_every_strategy() {
    // Same instance, same tour: best_move with an enabled recorder must
    // return the identical move and a bit-identical cost profile for
    // all six kernel strategies.
    let n = 256;
    let inst = generate("trace-diff", n, Style::Clustered { clusters: 5 }, 11);
    let tour = scrambled_tour(n);
    for strategy in [
        Strategy::Auto,
        Strategy::Shared,
        Strategy::Tiled { tile: 64 },
        Strategy::GlobalOnly,
        Strategy::Unordered,
        Strategy::DeviceResident,
    ] {
        let mut plain = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
        let (mv_plain, p_plain) = plain.best_move(&inst, &tour).unwrap();

        let recorder = Recorder::enabled();
        let mut traced = GpuTwoOpt::new(spec::gtx_680_cuda())
            .with_strategy(strategy)
            .with_recorder(recorder.clone());
        let (mv_traced, p_traced) = traced.best_move(&inst, &tour).unwrap();

        assert_eq!(mv_plain, mv_traced, "{strategy:?}");
        assert_eq!(p_plain, p_traced, "{strategy:?}");
        assert_eq!(
            p_plain.modeled_seconds().to_bits(),
            p_traced.modeled_seconds().to_bits(),
            "{strategy:?}"
        );
        assert!(
            recorder
                .events()
                .iter()
                .any(|e| matches!(e, TraceEvent::Kernel { .. })),
            "{strategy:?} recorded no kernel"
        );
    }
}

#[test]
fn tracing_is_invisible_to_a_full_descent() {
    let n = 300;
    let inst = generate("trace-descent", n, Style::Uniform, 4);

    let mut t_plain = scrambled_tour(n);
    let mut plain = GpuTwoOpt::new(spec::gtx_680_cuda());
    let a = optimize(&mut plain, &inst, &mut t_plain, SearchOptions::default()).unwrap();

    let recorder = Recorder::enabled();
    let mut t_traced = scrambled_tour(n);
    let mut traced = GpuTwoOpt::new(spec::gtx_680_cuda()).with_recorder(recorder.clone());
    let b = optimize_with_recorder(
        &mut traced,
        &inst,
        &mut t_traced,
        SearchOptions::default(),
        &recorder,
    )
    .unwrap();

    assert_eq!(t_plain.as_slice(), t_traced.as_slice());
    assert_eq!(a.sweeps, b.sweeps);
    assert_eq!(a.final_length, b.final_length);
    assert_eq!(a.modeled_seconds().to_bits(), b.modeled_seconds().to_bits());
    // One SweepBegin/SweepEnd pair per sweep was recorded.
    let begins = recorder
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::SweepBegin { .. }))
        .count();
    assert_eq!(begins as u64, b.sweeps);
}

#[test]
fn tracing_is_invisible_to_ils() {
    let n = 120;
    let inst = generate("trace-ils", n, Style::Clustered { clusters: 4 }, 9);
    let start = scrambled_tour(n);
    let opts = IlsOptions::new().with_max_iterations(4u64).with_seed(9);

    let mut plain = GpuTwoOpt::new(spec::gtx_680_cuda());
    let a = iterated_local_search(&mut plain, &inst, start.clone(), opts.clone()).unwrap();

    let recorder = Recorder::enabled();
    let mut traced = GpuTwoOpt::new(spec::gtx_680_cuda()).with_recorder(recorder.clone());
    let traced_opts = opts.with_recorder(recorder.clone());
    let b = iterated_local_search(&mut traced, &inst, start, traced_opts).unwrap();

    assert_eq!(a.best_length, b.best_length);
    assert_eq!(a.best.as_slice(), b.best.as_slice());
    assert_eq!(a.accepted, b.accepted);
    assert_eq!(
        a.profile.modeled_seconds().to_bits(),
        b.profile.modeled_seconds().to_bits()
    );
}

#[test]
fn metrics_gflops_matches_the_analytic_model_bit_for_bit() {
    // One Shared-strategy sweep: the GFLOP/s the metrics snapshot
    // derives from the recorded kernel event must equal both the
    // engine's profile and the closed-form model, bit for bit.
    let n = 512;
    let inst = generate("trace-gflops", n, Style::Uniform, 2);
    let tour = Tour::identity(n);

    let recorder = Recorder::enabled();
    let mut engine = GpuTwoOpt::new(spec::gtx_680_cuda())
        .with_strategy(Strategy::Shared)
        .with_recorder(recorder.clone());
    let (_, profile) = engine.best_move(&inst, &tour).unwrap();

    let snapshot = MetricsSnapshot::from_events(&recorder.events());
    let stats = snapshot
        .kernel("2opt-eval-shared")
        .expect("shared kernel recorded");
    assert_eq!(stats.calls, 1);

    let from_profile = ModeledSweep {
        pairs: profile.pairs_checked,
        flops: profile.flops,
        kernel_seconds: profile.kernel_seconds,
        reversal_seconds: profile.reversal_seconds,
        h2d_seconds: profile.h2d_seconds,
        d2h_seconds: profile.d2h_seconds,
    };
    assert_eq!(
        stats.gflops().to_bits(),
        from_profile.gflops().to_bits(),
        "snapshot {} vs profile {}",
        stats.gflops(),
        from_profile.gflops()
    );
    // The analytic model is exact for these kernels, so the chain
    // closes: recorded events == functional profile == closed form.
    let modeled = model_auto_sweep(&spec::gtx_680_cuda(), n);
    assert_eq!(stats.gflops().to_bits(), modeled.gflops().to_bits());
}

#[test]
fn thousand_city_ils_trace_covers_every_event_kind_and_exports() {
    let n = 1000;
    let recorder = Recorder::enabled();
    let inst = generate("trace-1000", n, Style::Clustered { clusters: 8 }, 5);
    let start = multiple_fragment(&inst);
    let mut engine = GpuTwoOpt::new(spec::gtx_680_cuda()).with_recorder(recorder.clone());
    let opts = IlsOptions::new()
        .with_max_iterations(2u64)
        .with_seed(5)
        .with_recorder(recorder.clone());
    iterated_local_search(&mut engine, &inst, start, opts).unwrap();

    let events = recorder.events();
    let has = |f: fn(&TraceEvent) -> bool| events.iter().any(f);
    assert!(has(|e| matches!(e, TraceEvent::Device { .. })));
    assert!(has(|e| matches!(e, TraceEvent::Kernel { .. })));
    assert!(has(|e| matches!(e, TraceEvent::H2d { .. })));
    assert!(has(|e| matches!(e, TraceEvent::D2h { .. })));
    assert!(has(|e| matches!(e, TraceEvent::DescentBegin { .. })));
    assert!(has(|e| matches!(e, TraceEvent::SweepBegin { .. })));
    assert!(has(|e| matches!(e, TraceEvent::SweepEnd { .. })));
    assert!(has(|e| matches!(e, TraceEvent::DescentEnd { .. })));
    assert!(has(|e| matches!(e, TraceEvent::IterationBegin { .. })));
    assert!(has(|e| matches!(e, TraceEvent::Perturbation { .. })));
    assert!(has(|e| matches!(e, TraceEvent::IterationEnd { .. })));

    // The Chrome export of the full run re-parses as JSON with one
    // entry per exported event.
    let text = chrome_trace(&events);
    let parsed = json::parse(&text).expect("valid JSON");
    let n_entries = parsed
        .get("traceEvents")
        .and_then(json::Json::as_array)
        .map(<[json::Json]>::len)
        .unwrap_or(0);
    assert!(n_entries > events.len() / 2, "{n_entries} entries");
}
