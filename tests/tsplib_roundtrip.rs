//! Property tests for TSPLIB I/O: writer → parser is the identity on
//! the distance function.

use proptest::prelude::*;
use tsp_core::{ExplicitMatrix, Instance, Metric, Point};
use tsp_tsplib::{parse, write};

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((-5000i32..5000, -5000i32..5000), 3..40).prop_map(|v| {
        v.into_iter()
            .map(|(x, y)| Point::new(x as f32, y as f32))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coordinate_round_trip_preserves_distances(pts in arb_points()) {
        let n = pts.len();
        let inst = Instance::new("prop-rt", Metric::Euc2d, pts).unwrap();
        let back = parse(&write(&inst)).unwrap();
        prop_assert_eq!(back.len(), n);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(back.dist(i, j), inst.dist(i, j), "({}, {})", i, j);
            }
        }
    }

    #[test]
    fn explicit_round_trip_preserves_distances(
        n in 3usize..15,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let vals: Vec<i32> = (0..n * (n - 1) / 2).map(|_| rng.gen_range(1..10_000)).collect();
        let m = ExplicitMatrix::from_upper_row(n, &vals).unwrap();
        let inst = Instance::from_matrix("prop-em", m, None).unwrap();
        let back = parse(&write(&inst)).unwrap();
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(back.dist(i, j), inst.dist(i, j));
            }
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "\\PC{0,400}") {
        // Outcome may be Ok or Err; it must not panic.
        let _ = parse(&text);
    }

    #[test]
    fn parser_never_panics_on_structured_garbage(
        dim in 0usize..20,
        body in proptest::collection::vec((0usize..25, -1000.0f64..1000.0, -1000.0f64..1000.0), 0..25),
    ) {
        let mut text = format!(
            "NAME: garbage\nTYPE: TSP\nDIMENSION: {dim}\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n"
        );
        for (id, x, y) in body {
            text.push_str(&format!("{id} {x} {y}\n"));
        }
        text.push_str("EOF\n");
        let _ = parse(&text);
    }
}

#[test]
fn all_supported_metrics_round_trip() {
    for metric in [
        Metric::Euc2d,
        Metric::Ceil2d,
        Metric::Man2d,
        Metric::Max2d,
        Metric::Att,
        Metric::Geo,
    ] {
        let pts = vec![
            Point::new(10.25, 20.5),
            Point::new(30.0, 4.0),
            Point::new(18.5, 19.25),
            Point::new(2.0, 40.75),
        ];
        let inst = Instance::new("metric-rt", metric, pts).unwrap();
        let back = parse(&write(&inst)).unwrap();
        assert_eq!(back.metric(), metric);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(back.dist(i, j), inst.dist(i, j), "{metric:?} ({i},{j})");
            }
        }
    }
}
